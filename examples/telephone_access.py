"""Telephone access to the multimedia data bank.

Section 1 of the paper: voice "allows users to access information using
telephones."  A telephone has only a keypad and an earpiece, so the
interface drives a browsing session entirely through audio:

* the dictated radiology report plays directly, with keypad control
  over interrupt/resume, voice pages, and pause-based rewind;
* the office document — a *visual* object — is read aloud page by page
  by the same speech synthesizer that models dictation, the symmetric
  trick the paper's thesis enables.

    python examples/telephone_access.py
"""

from repro.core.telephone import KEYPAD, TelephoneSession
from repro.scenarios import build_audio_mode_report, build_office_document
from repro.trace import EventKind
from repro.workstation.station import Workstation


def call_dictation() -> None:
    print("=== Calling the dictated radiology report ===")
    workstation = Workstation()
    call = TelephoneSession(build_audio_mode_report(), workstation)
    call.answer()
    workstation.clock.advance(8.0)  # listen for 8 seconds
    call.press("5")  # interrupt
    print(f"listened to {workstation.clock.now:.1f}s, pressed 5 (interrupt)")
    call.press("4")  # replay from one long pause back
    print("pressed 4: replaying from one long pause back")
    workstation.clock.advance(3.0)
    call.press("5")
    call.press("3")  # next voice page
    print("pressed 3: jumped to the next voice page")
    events = workstation.trace.of_kind(
        EventKind.PLAY_VOICE, EventKind.SEEK_VOICE
    )
    print(f"{len(events)} audio events on the phone line")


def call_document() -> None:
    print("\n=== Calling the office document (visual object, read aloud) ===")
    workstation = Workstation()
    call = TelephoneSession(build_office_document(), workstation)
    call.answer()
    print(f"page 1 read aloud; call time {workstation.clock.now:.0f}s")
    call.press("3")
    print(f"pressed 3: page 2 read aloud; call time {workstation.clock.now:.0f}s")
    call.press("9")
    print(f"pressed 9: next chapter; call time {workstation.clock.now:.0f}s")


def main() -> None:
    print("keypad layout:")
    for key, action in sorted(KEYPAD.items()):
        print(f"  {key}: {action}")
    print()
    call_dictation()
    call_document()


if __name__ == "__main__":
    main()
