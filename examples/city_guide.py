"""The tourist-information scenarios of Figures 7-10.

1. Figures 7-8 — a subway map with relevant-object indicators; selecting
   "Hospitals" superimposes the hospital overlay on the map, and an
   explicit *return* re-establishes the parent's browsing mode.
2. Figures 9-10 — a guided city walk as a process simulation: overwrite
   pages blank the route walked so far, each with a voice message.
3. A designer tour: the view window jumps across the map automatically,
   playing the guide's voice at each stop; the user interrupts it and
   moves the window freely.

    python examples/city_guide.py
"""

from repro import (
    BrowseCommand,
    EventKind,
    LocalStore,
    PresentationManager,
    Workstation,
)
from repro.scenarios import (
    build_city_walk_simulation,
    build_map_tour_object,
    build_subway_map_with_relevants,
)


def relevant_objects() -> None:
    print("=== Figures 7-8: relevant objects on the subway map ===")
    workstation = Workstation()
    store = LocalStore()
    parent, overlays = build_subway_map_with_relevants()
    store.add(parent)
    for overlay in overlays:
        store.add(overlay)

    manager = PresentationManager(store, workstation)
    session = manager.open(parent.object_id)
    indicators = session.visible_indicators()
    print("indicators:", ", ".join(i["label"] for i in indicators))

    hospitals = next(i for i in indicators if i["label"] == "Hospitals")
    child = session.execute(
        BrowseCommand.SELECT_RELEVANT, indicator=hospitals["indicator"]
    )
    print(
        "selected 'Hospitals' -> overlay superimposed "
        f"(depth {workstation.screen.transparency_depth}), "
        f"nesting depth {manager.nesting_depth}"
    )
    child.execute(BrowseCommand.RETURN_FROM_RELEVANT)
    print(f"returned to the map (nesting depth {manager.nesting_depth})")


def city_walk() -> None:
    print("\n=== Figures 9-10: guided walk as process simulation ===")
    workstation = Workstation()
    store = LocalStore()
    walk = build_city_walk_simulation(interval_s=1.0)
    store.add(walk)
    manager = PresentationManager(store, workstation)
    session = manager.open(walk.object_id)

    started = workstation.clock.now
    session.execute(BrowseCommand.NEXT_PAGE)  # turning into the simulation runs it
    sim_pages = workstation.trace.of_kind(EventKind.SIM_PAGE)
    messages = workstation.trace.of_kind(EventKind.PLAY_MESSAGE)
    print(
        f"simulation ran {len(sim_pages)} overwrite pages with "
        f"{len(messages)} voice messages in "
        f"{workstation.clock.now - started:.1f}s of simulated time"
    )

    # Run it again faster: the user may alter the speed.
    session.goto_page(1)
    session.set_simulation_speed(4.0)
    started = workstation.clock.now
    session.run_simulation(group=1)
    print(f"at 4x speed (voice messages still gate): "
          f"{workstation.clock.now - started:.1f}s")


def map_tour() -> None:
    print("\n=== A designer tour over the map ===")
    workstation = Workstation()
    store = LocalStore()
    tour_object = build_map_tour_object()
    store.add(tour_object)
    manager = PresentationManager(store, workstation)
    session = manager.open(tour_object.object_id)

    controller = session.execute(BrowseCommand.START_TOUR)
    controller.step()
    controller.step()
    print("visited 2 stops; interrupting the tour...")
    view = session.interrupt_tour()
    view.move(40, 0)
    print(
        "user moved the window freely; tour stops on trace: "
        f"{len(workstation.trace.of_kind(EventKind.TOUR_STOP))}, "
        f"voice messages: "
        f"{len(workstation.trace.of_kind(EventKind.PLAY_MESSAGE))}"
    )


def main() -> None:
    relevant_objects()
    city_walk()
    map_tour()


if __name__ == "__main__":
    main()
