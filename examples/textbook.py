"""A computer-resident textbook chapter.

Section 3: "Logical voice messages may be associated with each
transparency to simulate this act [an active speaker superimposing
transparencies].  This is a much more effective way of presentation of
information than just reading sequential text...  This capability is
also desirable for future, computer resident, textbooks."

The chapter teaches a measurement experiment: the base page shows the
empty axes, then three transparencies add one result curve each while
the narrator's voice message explains it — followed by a process
simulation animating the apparatus ("an easy way to 'program' some
forms of animation... used by non programmer multimedia object
designers").

    python examples/textbook.py
"""

from repro.audio.signal import synthesize_speech
from repro.core.manager import LocalStore, PresentationManager
from repro.ids import IdGenerator
from repro.images.bitmap import Bitmap
from repro.images.geometry import Point, PolyLine
from repro.images.graphics import GraphicsObject, Label, LabelKind
from repro.images.image import Image
from repro.objects import (
    DrivingMode,
    ImagePage,
    MultimediaObject,
    PresentationSpec,
    ProcessSimulation,
    SimStep,
    SimStepKind,
    TextFlow,
    TextSegment,
    TransparencySet,
    VoiceMessage,
)
from repro.objects.anchors import ImageAnchor
from repro.objects.attributes import AttributeSet
from repro.trace import EventKind
from repro.workstation.stats import summarize
from repro.workstation.station import Workstation

WIDTH, HEIGHT = 480, 320


def axes_image(generator):
    """The empty measurement axes."""
    return Image(
        image_id=generator.image_id(),
        width=WIDTH,
        height=HEIGHT,
        bitmap=Bitmap.blank(WIDTH, HEIGHT, fill=8),
        graphics=[
            GraphicsObject(
                "x-axis", PolyLine([Point(40, 280), Point(440, 280)]), intensity=200
            ),
            GraphicsObject(
                "y-axis", PolyLine([Point(40, 280), Point(40, 40)]), intensity=200
            ),
        ],
    )


def curve_overlay(generator, run: int):
    """One experiment run's result curve, as a transparency."""
    points = [
        Point(40 + x, 280 - (x ** 1.1) / (3.0 - run * 0.6))
        for x in range(0, 400, 20)
    ]
    return Image(
        image_id=generator.image_id(),
        width=WIDTH,
        height=HEIGHT,
        graphics=[
            GraphicsObject(
                f"curve-run-{run}",
                PolyLine(points),
                intensity=150 + run * 35,
                label=Label(
                    LabelKind.TEXT, f"run {run}", Point(430, points[-1].y)
                ),
            )
        ],
    )


def build_chapter():
    generator = IdGenerator("textbook")
    obj = MultimediaObject(
        object_id=generator.object_id(),
        driving_mode=DrivingMode.VISUAL,
        attributes=AttributeSet.of(kind="textbook", chapter=3),
    )

    text = TextSegment(
        segment_id=generator.segment_id(),
        markup=(
            "@title{Chapter 3: Measuring Transfer Rates}\n"
            "@chapter{The Experiment}\n"
            "Three runs of the experiment measured transfer rate against "
            "load. Turn the page to project each run's curve on the same "
            "axes, as a lecturer would superimpose transparencies.\n"
        ),
    )
    obj.add_text_segment(text)

    axes = axes_image(generator)
    obj.add_image(axes)

    overlays = []
    narration = [
        "the first run shows linear growth at light load",
        "the second run bends as the device saturates",
        "the third run with the cache stays nearly linear",
    ]
    steps = []
    for run, script in enumerate(narration, start=1):
        overlay = curve_overlay(generator, run)
        obj.add_image(overlay)
        overlays.append(overlay.image_id)
        message = VoiceMessage(
            message_id=generator.message_id(),
            recording=synthesize_speech(script, seed=100 + run),
            anchors=[ImageAnchor(overlay.image_id)],
        )
        obj.attach_voice_message(message)
        steps.append(
            SimStep(
                image_id=overlay.image_id,
                kind=SimStepKind.TRANSPARENCY,
                message_id=message.message_id,
            )
        )

    obj.presentation = PresentationSpec(
        items=[
            TextFlow(text.segment_id),
            ImagePage(axes.image_id),
            TransparencySet(overlays),
            ProcessSimulation(steps, interval_s=1.5),
        ]
    )
    return obj.archive()


def main() -> None:
    chapter = build_chapter()
    workstation = Workstation()
    store = LocalStore()
    store.add(chapter)
    session = PresentationManager(store, workstation).open(chapter.object_id)

    print(f"textbook chapter: {session.page_count} pages")
    print("reading the introduction, then projecting the curves...")
    session.next_page()  # the axes
    for turn in range(3):
        session.next_page()
        print(
            f"  transparency {turn + 1}: depth "
            f"{workstation.screen.transparency_depth}, narration played: "
            f"{len(workstation.trace.of_kind(EventKind.PLAY_MESSAGE))}"
        )

    print("\nreplaying the same material as an animated lecture "
          "(process simulation)...")
    t0 = workstation.clock.now
    session.next_page()  # enters the simulation group, which auto-runs
    print(
        f"  animation took {workstation.clock.now - t0:.1f}s simulated, "
        f"{len(workstation.trace.of_kind(EventKind.SIM_PAGE))} auto pages"
    )

    stats = summarize(workstation.trace)
    print(
        f"\nsession totals: {stats.media_events} media events, "
        f"{stats.voice_seconds:.1f}s of narration, "
        f"{stats.bandwidth_events_per_minute:.1f} events/min"
    )


if __name__ == "__main__":
    main()
