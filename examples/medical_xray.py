"""The medical information system scenarios of Figures 3-6.

Demonstrates the paper's symmetry argument end to end:

1. A *visual mode* radiology report where the x-ray is a visual logical
   message pinned to the top of the screen while the related findings
   text pages through the lower region (Figures 3-4) — the image is
   stored once, not once per page.
2. Transparencies superimposed over the x-ray, each pinpointing a
   finding with a circle and caption (Figures 5-6).
3. The *audio mode* twin: the doctor dictates, and the x-ray appears on
   screen exactly while the related stretch of speech plays; browsing
   by recognized utterances ("fracture") and pause-based rewind work
   like text search and re-reading.

    python examples/medical_xray.py
"""

from repro import (
    BrowseCommand,
    EventKind,
    LocalStore,
    PresentationManager,
    Workstation,
)
from repro.scenarios import (
    build_audio_mode_report,
    build_visual_report_with_xray,
    build_xray_transparency_object,
)


def visual_report() -> None:
    print("=== Figures 3-4: x-ray pinned over related text ===")
    workstation = Workstation()
    store = LocalStore()
    report = build_visual_report_with_xray()
    store.add(report)
    manager = PresentationManager(store, workstation)
    session = manager.open(report.object_id)

    pinned = [p.number for p in session.program.pages if p.pinned_message_id]
    print(f"pages: {session.page_count}; related text spans pages {pinned}")
    for number in range(1, session.page_count + 1):
        session.goto_page(number)
        state = "x-ray pinned" if workstation.screen.pinned else "text only"
        print(f"  page {number}: {state}")
    print("the x-ray bitmap is stored once within the object; "
          f"{len(pinned)} pages display it")


def transparencies() -> None:
    print("\n=== Figures 5-6: transparencies over the x-ray ===")
    workstation = Workstation()
    store = LocalStore()
    obj = build_xray_transparency_object(overlays=3)
    store.add(obj)
    manager = PresentationManager(store, workstation)
    session = manager.open(obj.object_id)

    print("page 1: the x-ray bitmap")
    for _ in range(3):
        session.execute(BrowseCommand.NEXT_PAGE)
        print(
            f"  next page -> {workstation.screen.transparency_depth} "
            "transparencies superimposed"
        )
    # The user overrides the designer's order: only overlays 0 and 2.
    session.execute(BrowseCommand.SELECT_TRANSPARENCIES, positions=[0, 2])
    print(
        "user-selected subset [0, 2] -> depth "
        f"{workstation.screen.transparency_depth}"
    )


def audio_report() -> None:
    print("\n=== The audio-mode twin ===")
    workstation = Workstation()
    store = LocalStore()
    obj = build_audio_mode_report()
    store.add(obj)
    manager = PresentationManager(store, workstation)
    session = manager.open(obj.object_id)
    print(f"dictation: {session.duration:.1f}s, {session.page_count} voice pages")

    # Let the dictation play into the related section: the x-ray
    # appears exactly when the related speech starts.
    session.play_for(seconds=session.duration * 0.45)
    session.interrupt()
    print(
        f"at {session.position:.1f}s the screen shows: "
        f"{'x-ray' if workstation.screen.pinned else 'nothing'}"
    )

    # Symmetric pattern search: the recognizer indexed 'fracture' at
    # insertion time, so browsing needs no recognition hardware.  Seek
    # back to the start first so the next occurrence lies ahead.
    session.goto_page(1)
    session.interrupt()
    page = session.find_pattern("fracture")
    print(f"find 'fracture' -> voice page {page}")

    # Symmetric re-reading: rewind one long pause (≈ one paragraph).
    session.interrupt()
    position = session.rewind_long_pauses(1)
    print(f"replay from one long pause back -> {position:.1f}s")

    played = workstation.trace.of_kind(EventKind.PLAY_VOICE, EventKind.SEEK_VOICE)
    print(f"{len(played)} playback events on the trace")


def main() -> None:
    visual_report()
    transparencies()
    audio_report()


if __name__ == "__main__":
    main()
