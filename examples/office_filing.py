"""The office filing environment: formation, archiving, query, browsing.

Walks the full Section 4 + Section 5 pipeline:

1. Interactive object formation with a synthesis file (live miniature
   preview, data directory, final-form checks).
2. Archiving onto the optical-disk server and content indexing.
3. A content query whose results arrive as a miniature stream.
4. Selecting a miniature and browsing the object (Figures 1-2 style),
   while the presentation manager ships only the needed bytes.
5. Mailing an object outside the organization (archiver pointers are
   resolved into a self-contained composition file).

    python examples/office_filing.py
"""

from repro import PresentationManager, Workstation
from repro.formatter import SynthesisFile, mail_outside, rebuild_object
from repro.ids import IdGenerator
from repro.images.bitmap import Bitmap
from repro.images.image import Image
from repro.scenarios import build_object_library
from repro.server import Archiver

MEMO = """@title{Budget Memo Q3}
@abstract
Spending on optical storage exceeded the projection.

@chapter{Numbers}
The archive group requested two additional optical platters this
quarter. The projected budget covered one.

@image{IMAGE_TAG}

@chapter{Action}
Approve the revised budget or defer the second platter purchase.
"""


def main() -> None:
    generator = IdGenerator("office-ex")

    # 1. Interactive formation: synthesis file + live miniature preview.
    synthesis = SynthesisFile(generator.object_id())
    chart = Image(
        image_id=generator.image_id(),
        width=200,
        height=120,
        bitmap=Bitmap.from_function(200, 120, lambda x, y: (x * 2 + y) % 256),
    )
    synthesis.register_image(chart.image_id.value, chart)
    synthesis.update_markup(MEMO.replace("IMAGE_TAG", chart.image_id.value))
    preview = synthesis.miniature_pages()
    print(f"miniature preview: {len(preview)} pages "
          f"(rebuilds so far: {synthesis.rebuild_count})")

    memo = synthesis.build_object().archive()

    # 2. Archive a small library plus the memo onto the server.
    archiver = Archiver()
    build_object_library(archiver, visual_count=5, audio_count=2)
    archiver.store(memo)
    print(f"archiver holds {len(archiver)} objects, "
          f"{archiver.disk.used_bytes:,} bytes on optical disk")

    # 3. Query by content; results arrive as a miniature stream.
    workstation = Workstation()
    manager = PresentationManager(archiver, workstation)
    print("\nquery: objects mentioning 'budget'")
    cards = list(manager.browse_by_content(terms=["budget"]))
    for card in cards:
        print(
            f"  miniature of {card.object_id} [{card.driving_mode}] "
            f"{card.nbytes}B, on screen at t={card.available_at_s:.3f}s"
        )

    # 4. Select the memo's miniature and browse it.
    target = next(c for c in cards if c.object_id == memo.object_id)
    session = manager.open(target.object_id)
    print(f"\nopened {target.object_id}: {session.page_count} pages, "
          f"menu: {', '.join(session.menu.commands[:6])}, ...")
    session.next_page()

    # 5. Mail the memo outside the organization.
    result = archiver.fetch(memo.object_id)
    mailed_descriptor, mailed_composition = mail_outside(
        result.descriptor,
        result.composition,
        lambda offset, length: archiver.read_absolute(offset, length)[0],
    )
    print(
        f"\nmailed object: {len(mailed_composition):,}B composition, "
        f"{len(mailed_descriptor.archiver_tags())} archiver pointers remain"
    )
    rebuilt = rebuild_object(mailed_descriptor, mailed_composition)
    print(f"recipient rebuilt object with {len(rebuilt.text_segments)} text "
          f"segment(s) and {len(rebuilt.images)} image(s)")


if __name__ == "__main__":
    main()
