"""Quickstart: build, archive, and browse one multimedia object.

Runs in seconds and prints the workstation trace, which is the
observable surface of the presentation manager ("what the user saw and
heard", stamped with simulated time).

    python examples/quickstart.py
"""

from repro import (
    BrowseCommand,
    LocalStore,
    PresentationManager,
    Workstation,
)
from repro.audio import VocabularyRecognizer, synthesize_speech
from repro.ids import IdGenerator
from repro.objects import (
    AttributeSet,
    DrivingMode,
    MultimediaObject,
    PresentationSpec,
    TextFlow,
    TextSegment,
)
from repro.objects.parts import VoiceSegment

MARKUP = """@title{A First MINOS Object}
@abstract
A multimedia object combines attributes, text, voice and images.

@chapter{Symmetric Browsing}
Text and voice present just two alternative ways of representing the
same information. The presentation manager therefore offers matching
capabilities for both: pages, logical units, and pattern matching.

This second paragraph exists so the chapter spans real content and the
pattern search below has something to find. The keyword optical occurs
exactly here.

@chapter{What Happens Next}
Archive the object, open it through the presentation manager, and
drive it with menu commands.

Every observable action lands on the workstation trace with a
simulated timestamp. Tests and benchmarks in this repository assert
against that trace, because the screen and the speaker are the only
outputs a presentation manager has.

The server side is equally simulated: an optical disk archiver with
seek and transfer timing, a magnetic staging cache, content indexes
over text terms and recognized voice utterances, and an Ethernet-era
network link between the workstation and the server.

Voice browsing gets the symmetric treatment. Audio pages partition a
dictation into constant-length units, pause detection recovers word
and paragraph boundaries from the waveform itself, and recognized
utterances collected at insertion time make speech searchable with
the same index structure that serves text.

This final paragraph pads the document past one visual page so the
page navigation commands appear on the menu, exactly as the adaptive
menus of the paper would offer them only when they are meaningful.
"""


def main() -> None:
    generator = IdGenerator("quickstart")

    # 1. Build an object: one text segment plus one dictated note.
    obj = MultimediaObject(
        object_id=generator.object_id(),
        driving_mode=DrivingMode.VISUAL,
        attributes=AttributeSet.of(author="you", kind="demo"),
    )
    text = TextSegment(segment_id=generator.segment_id(), markup=MARKUP)
    obj.add_text_segment(text)

    recording = synthesize_speech(
        "remember to review the optical disk budget", seed=1
    )
    recognizer = VocabularyRecognizer(["optical", "budget"], seed=1)
    obj.add_voice_segment(
        VoiceSegment(
            segment_id=generator.segment_id(),
            recording=recording,
            utterances=recognizer.recognize(recording),
        )
    )
    obj.presentation = PresentationSpec(items=[TextFlow(text.segment_id)])

    # 2. Archive it (objects must be archived before presentation).
    obj.archive()

    # 3. Present it on a workstation.
    workstation = Workstation()
    store = LocalStore()
    store.add(obj)
    manager = PresentationManager(store, workstation)
    session = manager.open(obj.object_id)

    print(f"object has {session.page_count} visual pages")
    print("menu:", ", ".join(session.menu.commands))

    # 4. Browse: pages, logical units, pattern search.
    session.execute(BrowseCommand.NEXT_PAGE)
    session.execute(BrowseCommand.PREVIOUS_PAGE)
    session.execute(BrowseCommand.NEXT_CHAPTER)
    hit_page = session.execute(BrowseCommand.FIND_PATTERN, pattern="optical")
    print(f"pattern 'optical' found on page {hit_page}")

    # 5. The trace is what the user saw and heard.
    print("\n--- workstation trace ---")
    print(workstation.trace.dump())


if __name__ == "__main__":
    main()
