"""Critical-path analysis over one span tree.

Answers "where did the 114ms go": walks a request's span tree to find
the longest blocking chain, computes per-span *self time* (duration
minus the union of child intervals — the time a layer spent that no
deeper layer accounts for), and aggregates self time by layer.

Hedged losers and cancelled work ran in parallel with the winner and
never gated the request, so they are excluded from the blocking chain
and from attribution; everything else (including failed attempts the
request retried past, which *did* delay it) counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.spans import Span, SpanKind, SpanRecorder, SpanStatus

#: Statuses that ran in parallel without gating request completion.
_NON_BLOCKING = (SpanStatus.HEDGED_LOSER, SpanStatus.CANCELLED)


@dataclass(frozen=True, slots=True)
class LayerTime:
    """Self time attributed to one span kind within a trace."""

    kind: SpanKind
    seconds: float
    fraction: float


def _union_length(
    intervals: list[tuple[float, float]], lo: float, hi: float
) -> float:
    """Total length of ``intervals`` clipped to ``[lo, hi]``."""
    clipped = sorted(
        (max(start, lo), min(end, hi))
        for start, end in intervals
        if min(end, hi) > max(start, lo)
    )
    total = 0.0
    cursor = lo
    for start, end in clipped:
        start = max(start, cursor)
        if end > start:
            total += end - start
            cursor = end
    return total


class CriticalPath:
    """Analyzer for the span tree of a single trace."""

    def __init__(self, spans: list[Span], trace_id: int | None = None):
        if trace_id is None:
            roots = [s for s in spans if s.parent_id is None]
            if not roots:
                raise ValueError("no root span in trace")
            trace_id = min(root.trace_id for root in roots)
        self.trace_id = trace_id
        self.spans = [s for s in spans if s.trace_id == trace_id]
        if not self.spans:
            raise ValueError(f"trace {trace_id} has no spans")
        self._by_id = {s.span_id: s for s in self.spans}
        self._children: dict[int, list[Span]] = {}
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in self._by_id:
                self._children.setdefault(span.parent_id, []).append(span)
        for children in self._children.values():
            children.sort(key=lambda s: (s.start_s, s.span_id))
        roots = [s for s in self.spans if s.parent_id is None]
        if not roots:
            raise ValueError(f"trace {trace_id} has no root span")
        roots.sort(key=lambda s: (s.start_s, s.span_id))
        self.root = roots[0]

    @classmethod
    def from_recorder(
        cls, recorder: SpanRecorder, trace_id: int | None = None
    ) -> "CriticalPath":
        return cls(recorder.spans(), trace_id)

    @property
    def end_to_end_s(self) -> float:
        """The request's latency as seen by the user: the root span."""
        return self.root.duration_s

    def children(self, span: Span) -> list[Span]:
        return self._children.get(span.span_id, [])

    def _blocking_children(self, span: Span) -> list[Span]:
        return [
            child
            for child in self.children(span)
            if child.status not in _NON_BLOCKING
        ]

    def chain(self) -> list[Span]:
        """Longest blocking chain: root down through last-finishing kids."""
        chain = [self.root]
        node = self.root
        while True:
            blocking = self._blocking_children(node)
            if not blocking:
                return chain
            # The child that finishes last gates the parent's completion;
            # ties resolve to the later start, then the higher span id,
            # so seeded replays pick the same chain every run.
            node = max(
                blocking, key=lambda s: (s.end_s, s.start_s, s.span_id)
            )
            chain.append(node)

    def self_time_s(self, span: Span) -> float:
        """Span duration not covered by any blocking child interval."""
        intervals = [
            (child.start_s, child.end_s)
            for child in self._blocking_children(span)
        ]
        covered = _union_length(intervals, span.start_s, span.end_s)
        return max(span.duration_s - covered, 0.0)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of the root window covered by deeper spans.

        1.0 means every instant of user-visible latency is explained by
        some child layer; the remainder is root self time (workstation
        work the instrumentation does not break down further).
        """
        if self.root.duration_s <= 0.0:
            return 1.0
        descendants: list[tuple[float, float]] = []
        stack = list(self._blocking_children(self.root))
        while stack:
            span = stack.pop()
            descendants.append((span.start_s, span.end_s))
            stack.extend(self._blocking_children(span))
        covered = _union_length(
            descendants, self.root.start_s, self.root.end_s
        )
        return covered / self.root.duration_s

    def layer_breakdown(self) -> list[LayerTime]:
        """Self time per span kind, largest share first."""
        totals: dict[SpanKind, float] = {}
        for span in self.spans:
            if span.status in _NON_BLOCKING:
                continue
            totals[span.kind] = totals.get(span.kind, 0.0) + (
                self.self_time_s(span)
            )
        grand = sum(totals.values())
        return sorted(
            (
                LayerTime(
                    kind, seconds, seconds / grand if grand > 0 else 0.0
                )
                for kind, seconds in totals.items()
            ),
            key=lambda item: (-item.seconds, item.kind.value),
        )

    def report(self) -> str:
        """Deterministic "where did the time go" text report."""
        lines = [
            f"trace {self.trace_id}: {self.root.name} "
            f"end-to-end {self.end_to_end_s * 1000:.2f}ms "
            f"(attributed {self.attributed_fraction:.0%})",
            "critical path:",
        ]
        for depth, span in enumerate(self.chain()):
            lines.append(
                f"{'  ' * (depth + 1)}{span.name} [{span.kind.value}] "
                f"{span.duration_s * 1000:.2f}ms "
                f"(self {self.self_time_s(span) * 1000:.2f}ms, "
                f"{span.status.value})"
            )
        lines.append("by layer (self time):")
        for item in self.layer_breakdown():
            lines.append(
                f"  {item.kind.value:<10} {item.seconds * 1000:9.2f}ms "
                f"{item.fraction:6.1%}"
            )
        return "\n".join(lines)
