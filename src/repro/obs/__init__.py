"""Causal tracing, critical-path analysis, and SLO monitoring.

``repro.trace.Trace`` is the paper's observable surface: a flat,
time-stamped event log of what reached the screen and speaker.  The
system around it has grown into a multi-workstation, replicated,
compressed, deadline-scheduled stack, and a flat log cannot answer
"why was this page turn 114ms?".  ``repro.obs`` layers *causal*
structure on top:

* :class:`SpanContext` — immutable (trace id, span id, parent id,
  baggage) token propagated through every layer boundary, either
  explicitly (``ctx=`` keyword) or ambiently (:func:`bind` /
  :func:`current`).
* :class:`Span` / :class:`SpanRecorder` — typed, statused intervals
  collected thread-safely into one span tree per user-visible request.
* :class:`CriticalPath` — longest blocking chain, per-layer self-time,
  "where did the time go" reports.
* :mod:`repro.obs.export` — Chrome-trace-format JSON (load in
  ``chrome://tracing`` / Perfetto) and a deterministic text renderer.
* :class:`SLOMonitor` — declarative objectives with error-budget burn,
  evaluated identically over DES replays and real-thread runs.

See docs/OBSERVABILITY.md for the span model and propagation rules.
"""

from repro.obs.context import bind, current
from repro.obs.critical_path import CriticalPath, LayerTime
from repro.obs.export import (
    from_chrome_trace,
    render_text,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.slo import SLO, SLOMonitor, SLOResult
from repro.obs.spans import (
    ActiveSpan,
    Span,
    SpanContext,
    SpanKind,
    SpanRecorder,
    SpanStatus,
)

__all__ = [
    "ActiveSpan",
    "CriticalPath",
    "LayerTime",
    "SLO",
    "SLOMonitor",
    "SLOResult",
    "Span",
    "SpanContext",
    "SpanKind",
    "SpanRecorder",
    "SpanStatus",
    "bind",
    "current",
    "from_chrome_trace",
    "render_text",
    "to_chrome_trace",
    "write_chrome_trace",
]
