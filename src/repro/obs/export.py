"""Span exporters: Chrome trace format JSON and deterministic text.

:func:`to_chrome_trace` emits the Trace Event Format consumed by
``chrome://tracing`` and Perfetto — "X" (complete) events with
microsecond ``ts``/``dur``, one ``pid`` per trace id and one ``tid``
per station, so concurrent stations render as parallel rows.  The
``args`` payload carries every span field verbatim (raw seconds
included), which is what makes :func:`from_chrome_trace` an exact
inverse: round-tripping through ``json.dumps``/``loads`` reproduces
the span list bit-for-bit.

:func:`render_text` is the diff-friendly renderer tests assert on.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.spans import Span, SpanContext, SpanKind, SpanStatus


def _tid(span: Span) -> str:
    return span.context.item("station", "main") or "main"


def to_chrome_trace(spans: list[Span]) -> dict:
    """Spans as a Chrome-trace-format object (JSON-serialisable)."""
    events = []
    for span in sorted(spans, key=lambda s: (s.trace_id, s.span_id)):
        events.append(
            {
                "name": span.name,
                "cat": span.kind.value,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": span.trace_id,
                "tid": _tid(span),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "status": span.status.value,
                    "kind": span.kind.value,
                    "start_s": span.start_s,
                    "end_s": span.end_s,
                    "links": list(span.links),
                    "baggage": [list(pair) for pair in span.context.baggage],
                    "attrs": dict(span.attrs),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome_trace(payload: dict) -> list[Span]:
    """Exact inverse of :func:`to_chrome_trace`."""
    spans = []
    for event in payload["traceEvents"]:
        args = event["args"]
        context = SpanContext(
            trace_id=args["trace_id"],
            span_id=args["span_id"],
            parent_id=args["parent_id"],
            baggage=tuple(
                (key, value) for key, value in args["baggage"]
            ),
        )
        spans.append(
            Span(
                context=context,
                name=event["name"],
                kind=SpanKind(args["kind"]),
                start_s=args["start_s"],
                end_s=args["end_s"],
                status=SpanStatus(args["status"]),
                attrs=dict(args["attrs"]),
                links=tuple(args["links"]),
            )
        )
    return spans


def write_chrome_trace(path: str | pathlib.Path, spans: list[Span]) -> None:
    payload = to_chrome_trace(spans)
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def render_text(spans: list[Span]) -> str:
    """Deterministic indented tree, one trace after another."""
    by_trace: dict[int, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    lines: list[str] = []
    for trace_id in sorted(by_trace):
        members = by_trace[trace_id]
        by_id = {span.span_id: span for span in members}
        children: dict[int | None, list[Span]] = {}
        for span in members:
            parent = (
                span.parent_id if span.parent_id in by_id else None
            )
            children.setdefault(parent, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: (s.start_s, s.span_id))
        lines.append(f"trace {trace_id}")

        def walk(span: Span, depth: int) -> None:
            extra = ""
            if span.links:
                extra = " ->" + ",".join(str(link) for link in span.links)
            lines.append(
                f"{'  ' * depth}- {span.name} [{span.kind.value}] "
                f"{span.start_s * 1000:.3f}..{span.end_s * 1000:.3f}ms "
                f"{span.status.value}{extra}"
            )
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        for root in children.get(None, []):
            walk(root, 1)
    return "\n".join(lines)
