"""Declarative service-level objectives evaluated over span streams.

An :class:`SLO` states an objective over a named span population —
either a latency bound ("p95 of ``page_turn`` spans <= 120ms") or a
count bound ("0 ``underrun`` spans").  The :class:`SLOMonitor`
consumes finished spans — streamed live via
``SpanRecorder.add_listener`` or fed in bulk after a run — and
evaluates every objective plus its *error-budget burn*: the fraction
of the allowed badness already spent (1.0 = budget exactly exhausted,
>1.0 = objective violated).

The same monitor works over DES replays (simulated seconds) and
real-thread runs (wall seconds) because spans carry whichever clock
their layer runs on; objectives never read a clock themselves.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.obs.spans import Span, SpanKind, SpanStatus


@dataclass(frozen=True)
class SLO:
    """One objective over spans named ``span_name``.

    Exactly one objective form must be set:

    * latency — ``percentile`` + ``threshold_s``: the p-th percentile
      of matching span durations must not exceed the threshold.  The
      implied error budget is the ``(100 - percentile) / 100`` slowest
      fraction; burn is the observed over-threshold fraction divided
      by that allowance.
    * count — ``max_count`` (optionally with ``statuses`` to count
      only, say, errors): at most ``max_count`` matching spans.  Burn
      is ``count / max_count``; with ``max_count == 0`` any hit burns
      infinitely.
    """

    name: str
    span_name: str
    percentile: float | None = None
    threshold_s: float | None = None
    max_count: int | None = None
    statuses: tuple[SpanStatus, ...] | None = None
    kind: SpanKind | None = None
    description: str = ""

    def __post_init__(self) -> None:
        latency = self.percentile is not None or self.threshold_s is not None
        count = self.max_count is not None
        if latency and count:
            raise ValueError(f"SLO {self.name!r}: choose latency OR count")
        if latency and (self.percentile is None or self.threshold_s is None):
            raise ValueError(
                f"SLO {self.name!r}: latency objectives need both "
                "percentile and threshold_s"
            )
        if not latency and not count:
            raise ValueError(f"SLO {self.name!r}: no objective set")
        if self.percentile is not None and not 0 < self.percentile < 100:
            raise ValueError(f"SLO {self.name!r}: percentile out of (0,100)")

    def matches(self, span: Span) -> bool:
        if span.name != self.span_name:
            return False
        if self.kind is not None and span.kind is not self.kind:
            return False
        if self.statuses is not None and span.status not in self.statuses:
            return False
        return True

    def evaluate(self, samples: list[Span]) -> "SLOResult":
        if self.max_count is not None:
            count = len(samples)
            if self.max_count > 0:
                burn = count / self.max_count
            else:
                burn = 0.0 if count == 0 else math.inf
            return SLOResult(
                slo=self,
                ok=count <= self.max_count,
                measured=float(count),
                sample_count=count,
                burn_rate=burn,
            )
        from repro.server.metrics import percentile as _percentile

        durations = [span.duration_s for span in samples]
        assert self.percentile is not None and self.threshold_s is not None
        if not durations:
            return SLOResult(self, True, 0.0, 0, 0.0)
        measured = _percentile(durations, self.percentile)
        allowed_fraction = (100.0 - self.percentile) / 100.0
        over = sum(1 for d in durations if d > self.threshold_s)
        over_fraction = over / len(durations)
        if allowed_fraction > 0:
            burn = over_fraction / allowed_fraction
        else:
            burn = 0.0 if over == 0 else math.inf
        return SLOResult(
            slo=self,
            ok=measured <= self.threshold_s,
            measured=measured,
            sample_count=len(durations),
            burn_rate=burn,
        )


@dataclass(frozen=True)
class SLOResult:
    slo: SLO
    ok: bool
    measured: float
    sample_count: int
    burn_rate: float

    def line(self) -> str:
        if self.slo.max_count is not None:
            body = (
                f"count {self.measured:.0f} <= {self.slo.max_count}"
            )
        else:
            body = (
                f"p{self.slo.percentile:g} "
                f"{self.measured * 1000:.2f}ms <= "
                f"{self.slo.threshold_s * 1000:.2f}ms"
            )
        verdict = "OK " if self.ok else "MISS"
        return (
            f"{verdict} {self.slo.name}: {body} "
            f"({self.sample_count} samples, burn {self.burn_rate:.2f})"
        )


class SLOMonitor:
    """Collects matching spans and evaluates every objective."""

    def __init__(self, slos: list[SLO]) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO names")
        self.slos = list(slos)
        self._lock = threading.Lock()
        self._samples: dict[str, list[Span]] = {
            slo.name: [] for slo in self.slos
        }

    def observe(self, span: Span) -> None:
        """Feed one finished span (safe from any thread)."""
        with self._lock:
            for slo in self.slos:
                if slo.matches(span):
                    self._samples[slo.name].append(span)

    def attach(self, recorder) -> "SLOMonitor":
        """Stream every span the recorder finishes from now on."""
        recorder.add_listener(self.observe)
        return self

    def consume(self, spans) -> "SLOMonitor":
        """Feed an iterable of spans (e.g. ``recorder.spans()``)."""
        for span in spans:
            self.observe(span)
        return self

    def evaluate(self) -> list[SLOResult]:
        with self._lock:
            samples = {
                name: list(spans) for name, spans in self._samples.items()
            }
        return [slo.evaluate(samples[slo.name]) for slo in self.slos]

    @property
    def healthy(self) -> bool:
        return all(result.ok for result in self.evaluate())

    def report(self) -> str:
        return "\n".join(result.line() for result in self.evaluate())
