"""Ambient span-context propagation.

The propagation rule (docs/OBSERVABILITY.md) is two-tier:

* **Explicit** at layer boundaries that already carry request state:
  ``ServerFrontend.submit(..., ctx=)``, ``ClusterRouter.request(...,
  ctx=)``, ``ServerRequest.ctx``.  Explicit beats ambient.
* **Ambient** for deep leaf sites whose signatures must not grow a
  tracing parameter (codec decode inside ``Archiver``, staging-cache
  reads inside ``CachingArchiver``): the enclosing layer binds its
  span context here and the leaf picks it up with :func:`current`.

``contextvars`` gives each thread (and each DES callback chain, which
is single-threaded) its own binding, so frontend workers never see
each other's contexts.  Thread-pool fan-out (index shard lookups)
crosses threads, so those call sites pass the parent explicitly.
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Optional

from repro.obs.spans import SpanContext

_CURRENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current() -> SpanContext | None:
    """The ambient span context bound in this thread, if any."""
    return _CURRENT.get()


def reset() -> None:
    """Clear the ambient binding unconditionally (test isolation).

    :class:`bind` restores the previous binding on exit, so production
    code never needs this — but a test that crashes mid-``bind`` (or a
    suite that drives spans without the context manager) would leak its
    context into the next test.  Fixtures call this between tests.
    """
    _CURRENT.set(None)


class bind:
    """Bind ``ctx`` as the ambient context for the enclosed block.

    A hand-rolled context manager rather than ``@contextmanager``:
    binds sit on the traced hot path (every open/navigate/fetch), and
    the generator machinery costs more than the bind itself.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: SpanContext | None) -> None:
        self._ctx = ctx

    def __enter__(self) -> SpanContext | None:
        self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info: object) -> None:
        _CURRENT.reset(self._token)
