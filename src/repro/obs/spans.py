"""Span model: contexts, kinds, statuses, and the thread-safe recorder.

A *span* is a named, typed interval attributed to one layer of the
stack.  Spans form trees: each span carries a :class:`SpanContext`
whose ``parent_id`` points at the span that caused it, and every span
in one user-visible request shares a ``trace_id``.  Ids are small
sequential integers handed out by the :class:`SpanRecorder`, so runs
with a seeded workload produce byte-identical traces.

Two clocks flow through here, mirroring the repo-wide two-clock
contract (docs/SERVER.md): span times are *simulated* seconds wherever
the caller has a simulated clock (DES replays, device models) and
wall-clock seconds only where the caller itself runs on wall clock.
The recorder never reads a clock behind the caller's back — every
``start_s``/``end_s`` is passed in explicitly, with :meth:`SpanRecorder.now`
as an escape hatch for leaf sites that have no clock of their own.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping


class SpanKind(enum.Enum):
    """Which layer of the stack a span's time belongs to."""

    REQUEST = "request"  # user-visible workstation request (tree root)
    SERVER = "server"  # frontend admission + worker service
    QUEUE = "queue"  # waiting for a worker / admission slot
    CACHE = "cache"  # staging-cache hit or single-flight piggyback
    DEVICE = "device"  # optical / magnetic device occupancy
    NETWORK = "network"  # link transfer time
    CLUSTER = "cluster"  # router read / quorum write / replica attempt
    MIGRATE = "migrate"  # rebalancer migration step
    DELIVERY = "delivery"  # chunk scheduling, streams, prefetch
    INDEX = "index"  # index query + per-shard fan-out
    COMPRESS = "compress"  # media codec encode / decode


class SpanStatus(enum.Enum):
    """How a span's work ended."""

    OK = "ok"
    ERROR = "error"
    RETRIED = "retried"  # failed here, but the request failed over
    HEDGED_LOSER = "hedged_loser"  # finished after the hedge winner
    CANCELLED = "cancelled"  # abandoned (e.g. wasted prefetch)


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Immutable causal token propagated across layer boundaries."""

    trace_id: int
    span_id: int
    parent_id: int | None = None
    #: Sorted (key, value) pairs riding along the whole trace, e.g.
    #: ``(("object", "42"), ("station", "ws-3"))``.
    baggage: tuple[tuple[str, str], ...] = ()

    def item(self, key: str, default: str | None = None) -> str | None:
        for name, value in self.baggage:
            if name == key:
                return value
        return default

    def child_of(self, span_id: int) -> "SpanContext":
        """Context for a new span parented on ``span_id`` in this trace."""
        return SpanContext(self.trace_id, span_id, self.span_id, self.baggage)


@dataclass(frozen=True, slots=True)
class Span:
    """One finished interval in a span tree."""

    context: SpanContext
    name: str
    kind: SpanKind
    start_s: float
    end_s: float
    status: SpanStatus = SpanStatus.OK
    attrs: Mapping[str, object] = field(default_factory=dict)
    #: Span ids this span is causally linked to without being parented
    #: on them — e.g. a single-flight joiner links to the flight leader.
    links: tuple[int, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def parent_id(self) -> int | None:
        return self.context.parent_id


class ActiveSpan:
    """An open span: a context plus the recorder that will finish it."""

    __slots__ = ("context", "name", "kind", "start_s", "_attrs", "_recorder")

    def __init__(self, recorder, context, name, kind, start_s, attrs):
        self._recorder = recorder
        self.context = context
        self.name = name
        self.kind = kind
        self.start_s = start_s
        self._attrs = attrs

    def annotate(self, **attrs: object) -> None:
        self._attrs.update(attrs)

    def finish(
        self,
        end_s: float,
        *,
        status: SpanStatus = SpanStatus.OK,
        start_s: float | None = None,
        links: tuple[int, ...] = (),
        **attrs: object,
    ) -> Span:
        """Record the finished span; ``start_s`` may correct the start."""
        if start_s is not None:
            self.start_s = start_s
        self._attrs.update(attrs)
        span = Span(
            context=self.context,
            name=self.name,
            kind=self.kind,
            start_s=self.start_s,
            end_s=end_s,
            status=status,
            attrs=dict(self._attrs),
            links=links,
        )
        self._recorder._record(span)
        return span


class SpanRecorder:
    """Thread-safe collector of spans with deterministic ids.

    One recorder spans (sic) all layers of one scenario: the
    workstation manager, frontend workers, cluster nodes, DES replays.
    Components hold an optional reference and skip all work when it is
    ``None`` — that is the zero-overhead "tracing disabled" mode the
    C-TRACE benchmark measures against.

    ``clock`` supplies :meth:`now` for leaf emit sites that have no
    clock parameter of their own (e.g. codec decode inside the
    archiver).  Layers that own a simulated clock wire it in so all
    spans of a scenario share one timeline.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_trace = 1
        self._next_span = 1
        self._listeners: list[Callable[[Span], None]] = []
        self.clock = clock

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Call ``listener(span)`` for every finished span (streaming)."""
        with self._lock:
            self._listeners.append(listener)

    def start(
        self,
        parent: SpanContext | None,
        name: str,
        kind: SpanKind,
        start_s: float,
        *,
        baggage: Mapping[str, str] | None = None,
        **attrs: object,
    ) -> ActiveSpan:
        """Open a span under ``parent`` (``None`` starts a new trace)."""
        context = self._open_context(parent, baggage)
        return ActiveSpan(self, context, name, kind, start_s, attrs)

    def emit(
        self,
        parent: SpanContext | None,
        name: str,
        kind: SpanKind,
        start_s: float,
        end_s: float,
        *,
        status: SpanStatus = SpanStatus.OK,
        links: tuple[int, ...] = (),
        baggage: Mapping[str, str] | None = None,
        **attrs: object,
    ) -> Span:
        """One-shot ``start`` + ``finish`` for already-measured work.

        The hot path for already-timed leaves (device reads, decode
        markers): one lock round-trip, no :class:`ActiveSpan`, and
        ``attrs`` recorded as-is (``**attrs`` is a fresh dict).
        """
        with self._lock:
            context = self._open_context_locked(parent, baggage)
            span = Span(
                context=context,
                name=name,
                kind=kind,
                start_s=start_s,
                end_s=end_s,
                status=status,
                attrs=attrs,
                links=links,
            )
            self._spans.append(span)
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(span)
        return span

    def _open_context(
        self,
        parent: SpanContext | None,
        baggage: Mapping[str, str] | None,
    ) -> SpanContext:
        with self._lock:
            return self._open_context_locked(parent, baggage)

    def _open_context_locked(
        self,
        parent: SpanContext | None,
        baggage: Mapping[str, str] | None,
    ) -> SpanContext:
        span_id = self._next_span
        self._next_span += 1
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            bag = tuple(sorted((baggage or {}).items()))
            return SpanContext(trace_id, span_id, None, bag)
        bag = parent.baggage
        if baggage:
            merged = dict(parent.baggage)
            merged.update(baggage)
            bag = tuple(sorted(merged.items()))
        return SpanContext(parent.trace_id, span_id, parent.span_id, bag)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in recording order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace_ids(self) -> list[int]:
        return sorted(self.traces())

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())
