"""Identifier types for multimedia objects and their components.

The paper requires that "a unique object identifier is associated with
each multimedia object".  We implement deterministic, process-local
identifier generation so that scenarios, tests and benchmarks are fully
reproducible: an :class:`IdGenerator` seeded the same way always yields
the same sequence of identifiers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ObjectId:
    """Unique identifier of a multimedia object."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class SegmentId:
    """Identifier of a text or voice segment within an object."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class ImageId:
    """Identifier of an image within an object."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class MessageId:
    """Identifier of a voice or visual logical message."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class IndicatorId:
    """Identifier of a relevant-object indicator on the screen."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass
class IdGenerator:
    """Deterministic identifier factory.

    Parameters
    ----------
    prefix:
        A namespace prefix embedded in every generated identifier, so
        that identifiers from different generators never collide.
    """

    prefix: str = "minos"
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def _next(self, kind: str) -> str:
        return f"{self.prefix}-{kind}-{next(self._counter):06d}"

    def object_id(self) -> ObjectId:
        """Return a fresh object identifier."""
        return ObjectId(self._next("obj"))

    def segment_id(self) -> SegmentId:
        """Return a fresh segment identifier."""
        return SegmentId(self._next("seg"))

    def image_id(self) -> ImageId:
        """Return a fresh image identifier."""
        return ImageId(self._next("img"))

    def message_id(self) -> MessageId:
        """Return a fresh logical-message identifier."""
        return MessageId(self._next("msg"))

    def indicator_id(self) -> IndicatorId:
        """Return a fresh relevant-object indicator identifier."""
        return IndicatorId(self._next("ind"))
