"""Reproduction of the MINOS multimedia object presentation manager.

S. Christodoulakis, F. Ho, M. Theodoridou: "The Multimedia Object
Presentation Manager of MINOS: A Symmetric Approach", SIGMOD 1986.

Public API tour
---------------
* Build objects with :mod:`repro.objects` (parts, messages, links,
  presentation specs) or interactively with
  :class:`repro.formatter.SynthesisFile`.
* Synthesize voice with :func:`repro.audio.synthesize_speech`; run
  insertion-time recognition with
  :class:`repro.audio.VocabularyRecognizer`.
* Archive objects into a :class:`repro.server.Archiver` (optical-disk
  backed) and query them with :class:`repro.server.QueryInterface`.
* Present and browse with :class:`repro.core.PresentationManager` on a
  :class:`repro.workstation.Workstation`; assert on the workstation
  trace.
"""

from repro.clock import SimClock
from repro.trace import EventKind, Trace, TraceEvent
from repro.ids import IdGenerator, ObjectId
from repro.core import (
    AudioSession,
    BrowseCommand,
    LocalStore,
    PresentationManager,
    VisualSession,
)
from repro.objects import DrivingMode, MultimediaObject, ObjectState
from repro.server import Archiver, NetworkLink, QueryInterface
from repro.workstation import Workstation

__version__ = "1.0.0"

__all__ = [
    "Archiver",
    "AudioSession",
    "BrowseCommand",
    "DrivingMode",
    "EventKind",
    "IdGenerator",
    "LocalStore",
    "MultimediaObject",
    "NetworkLink",
    "ObjectId",
    "ObjectState",
    "PresentationManager",
    "QueryInterface",
    "SimClock",
    "Trace",
    "TraceEvent",
    "VisualSession",
    "Workstation",
    "__version__",
]
