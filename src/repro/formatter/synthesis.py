"""The synthesis file: interactive, declarative object formation.

"The object formation process starts when the user creates the
synthesis file.  The synthesis file contains information about the
presentation form of the multimedia object, tags with the names of
various data files, and possibly text."

"When the user inserts information in the synthesis file for visual
mode objects a miniature of the current page of the formatted object is
displayed...  This way the user can immediately see the results of his
formatting actions."  :meth:`SynthesisFile.miniature_pages` is that
live preview; every markup change invalidates the derived composition
("part of the descriptor file and the composition file may have to be
deleted and recreated"), which :attr:`SynthesisFile.rebuild_count`
makes observable.
"""

from __future__ import annotations

from repro.audio.signal import Recording
from repro.errors import FormationError
from repro.formatter.datadir import DataDirectory, DataEntry, DataStatus
from repro.ids import ObjectId, SegmentId
from repro.images.image import Image
from repro.objects.descriptor import DataKind
from repro.objects.model import DrivingMode, MultimediaObject
from repro.objects.parts import TextSegment, VoiceSegment
from repro.objects.presentation import PresentationSpec, TextFlow
from repro.text.formatter import TextFormatter
from repro.text.markup import parse_markup
from repro.text.pagination import Paginator, VisualPage


class SynthesisFile:
    """One object under interactive formation.

    The user edits markup (with ``@image{tag}`` references), registers
    the referenced data files, previews the miniature, and finally
    builds the :class:`~repro.objects.model.MultimediaObject` in the
    editing state.
    """

    def __init__(
        self,
        object_id: ObjectId,
        driving_mode: DrivingMode = DrivingMode.VISUAL,
    ) -> None:
        self._object_id = object_id
        self._driving_mode = driving_mode
        self._markup = ""
        self._images: dict[str, Image] = {}
        self._voices: dict[str, Recording] = {}
        self.data_directory = DataDirectory()
        self.rebuild_count = 0

    @property
    def markup(self) -> str:
        """Current synthesis text."""
        return self._markup

    def update_markup(self, markup: str) -> None:
        """Replace the synthesis text, invalidating derived artefacts."""
        self._markup = markup
        self.rebuild_count += 1
        # Drop cached derived state so the next preview re-derives it.
        self.__dict__.pop("_derived_pages", None)

    def register_image(self, tag: str, image: Image) -> None:
        """Register an image data file under ``tag``."""
        self._images[tag] = image
        self.data_directory.register(
            DataEntry(
                name=tag,
                kind=DataKind.IMAGE,
                location=f"file:{tag}",
                length=image.nbytes,
                status=DataStatus.FINAL,
            )
        )

    def register_voice(self, tag: str, recording: Recording) -> None:
        """Register a voice data file under ``tag``."""
        self._voices[tag] = recording
        self.data_directory.register(
            DataEntry(
                name=tag,
                kind=DataKind.VOICE,
                location=f"file:{tag}",
                length=recording.nbytes,
                status=DataStatus.FINAL,
            )
        )

    # ------------------------------------------------------------------
    # live preview
    # ------------------------------------------------------------------

    def miniature_pages(
        self, width: int = 36, page_height: int = 20
    ) -> list[VisualPage]:
        """The miniature preview of the formatted object.

        A reduced-size rendition ("displayed in the right hand side of
        the screen, below the menu options") through which the user can
        navigate while editing.
        """
        document = parse_markup(self._markup)
        for tag in document.image_tags():
            if tag not in self._images:
                raise FormationError(
                    f"synthesis file references unregistered image tag {tag!r}"
                )
        lines = TextFormatter(width=width).format(document)
        return Paginator(page_height=page_height, image_lines=lambda _t: 4).paginate(
            lines
        )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def build_object(self) -> MultimediaObject:
        """Assemble the multimedia object (editing state).

        Raises
        ------
        FormationError
            If the markup references unregistered data tags.
        DataDirectoryError
            If any registered data piece is not in final form.
        """
        self.data_directory.require_all_final()
        obj = MultimediaObject(
            object_id=self._object_id, driving_mode=self._driving_mode
        )
        presentation = PresentationSpec()

        if self._markup.strip():
            segment_id = SegmentId(f"{self._object_id}-text-0")
            document = parse_markup(self._markup)
            for tag in document.image_tags():
                if tag not in self._images:
                    raise FormationError(
                        f"synthesis file references unregistered image tag {tag!r}"
                    )
            obj.add_text_segment(
                TextSegment(segment_id=segment_id, markup=self._markup)
            )
            presentation.items.append(TextFlow(segment_id))

        for tag, image in self._images.items():
            obj.add_image(image)
        for tag, recording in self._voices.items():
            segment = VoiceSegment(
                segment_id=SegmentId(f"{self._object_id}-voice-{tag}"),
                recording=recording,
            )
            obj.add_voice_segment(segment)
            if self._driving_mode is DrivingMode.AUDIO:
                presentation.audio_order.append(segment.segment_id)

        obj.presentation = presentation
        return obj
