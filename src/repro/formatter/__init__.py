"""Multimedia object formation (Section 4 of the paper).

"The multimedia object formatter is responsible for the creation of
the multimedia object descriptor.  The formatter is declarative and
interactive."  This package turns an in-memory
:class:`~repro.objects.model.MultimediaObject` into its storable form —
an object descriptor plus a composition file — and back, and implements
the archive and mail pipelines with their offset-rebasing and
archiver-pointer-resolution rules.
"""

from repro.formatter.composition import BlobRegistry, CompositionFile
from repro.formatter.datadir import DataDirectory, DataEntry, DataStatus
from repro.formatter.synthesis import SynthesisFile
from repro.formatter.builder import ObjectFormatter, rebuild_object
from repro.formatter.archive import (
    ArchivedObjectBytes,
    mail_outside,
    pack_archived,
    unpack_archived,
)

__all__ = [
    "ArchivedObjectBytes",
    "BlobRegistry",
    "CompositionFile",
    "DataDirectory",
    "DataEntry",
    "DataStatus",
    "ObjectFormatter",
    "SynthesisFile",
    "mail_outside",
    "pack_archived",
    "rebuild_object",
    "unpack_archived",
]
