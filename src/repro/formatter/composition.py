"""The composition file.

"The composition file is the concatenation of several data files each
one of which contains a certain part of the multimedia object (text
parts, images, etc.).  The object descriptor indicates how these parts
are presented in the physical object."

:class:`BlobRegistry` collects binary data pieces during formation;
:class:`CompositionFile` concatenates them and hands out the
:class:`~repro.objects.descriptor.DataLocation` entries the descriptor
records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormationError
from repro.objects.descriptor import DataKind, DataLocation, DataSource

_KIND_BY_NAME = {
    "text": DataKind.TEXT,
    "voice": DataKind.VOICE,
    "image": DataKind.IMAGE,
    "message_voice": DataKind.MESSAGE_VOICE,
    "label_voice": DataKind.MESSAGE_VOICE,
    "meta": DataKind.META,
}


@dataclass
class _Blob:
    tag: str
    kind: DataKind
    data: bytes


class BlobRegistry:
    """Collects the binary data pieces of an object under formation."""

    def __init__(self) -> None:
        self._blobs: list[_Blob] = []
        self._tags: set[str] = set()

    def add(self, tag: str, kind: str, data: bytes) -> None:
        """Register one data piece.

        Raises
        ------
        FormationError
            On duplicate tags or unknown piece kinds.
        """
        if tag in self._tags:
            raise FormationError(f"duplicate data tag {tag!r}")
        data_kind = _KIND_BY_NAME.get(kind)
        if data_kind is None:
            raise FormationError(f"unknown data piece kind {kind!r}")
        self._tags.add(tag)
        self._blobs.append(_Blob(tag=tag, kind=data_kind, data=data))

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, tag: str) -> bool:
        return tag in self._tags

    def blobs(self) -> list[tuple[str, DataKind, bytes]]:
        """All registered pieces, in registration order."""
        return [(b.tag, b.kind, b.data) for b in self._blobs]


class CompositionFile:
    """Concatenation of data pieces, with per-piece locations."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._locations: list[DataLocation] = []
        self._offset = 0
        self._by_tag: dict[str, DataLocation] = {}

    @classmethod
    def from_registry(cls, registry: BlobRegistry) -> "CompositionFile":
        """Build a composition file from every registered piece."""
        composition = cls()
        for tag, kind, data in registry.blobs():
            composition.append(tag, kind, data)
        return composition

    def append(self, tag: str, kind: DataKind, data: bytes) -> DataLocation:
        """Append one piece; returns its location within the file."""
        if tag in self._by_tag:
            raise FormationError(f"duplicate composition tag {tag!r}")
        location = DataLocation(
            tag=tag,
            kind=kind,
            source=DataSource.COMPOSITION,
            offset=self._offset,
            length=len(data),
        )
        self._chunks.append(data)
        self._locations.append(location)
        self._by_tag[tag] = location
        self._offset += len(data)
        return location

    @property
    def locations(self) -> list[DataLocation]:
        """Locations of all pieces, in file order."""
        return list(self._locations)

    @property
    def size(self) -> int:
        """Total size in bytes."""
        return self._offset

    def to_bytes(self) -> bytes:
        """The complete composition file."""
        return b"".join(self._chunks)

    def read(self, tag: str) -> bytes:
        """Read one piece back by tag.

        Raises
        ------
        FormationError
            If no piece has that tag.
        """
        location = self._by_tag.get(tag)
        if location is None:
            raise FormationError(f"composition file has no tag {tag!r}")
        index = self._locations.index(location)
        return self._chunks[index]


def composition_reader(data: bytes, locations: list[DataLocation]):
    """A ``BlobSource`` reading pieces out of serialized composition bytes.

    Only COMPOSITION-source locations can be resolved; ARCHIVER-source
    pointers need the archiver itself (see the server package).
    """
    by_tag = {loc.tag: loc for loc in locations}

    def read(tag: str) -> bytes:
        location = by_tag.get(tag)
        if location is None:
            raise FormationError(f"no data location for tag {tag!r}")
        if location.source is not DataSource.COMPOSITION:
            raise FormationError(
                f"tag {tag!r} points into the archiver; resolve it there"
            )
        return data[location.offset : location.offset + location.length]

    return read
