"""The object formatter: objects to descriptor + composition, and back.

"The object formation process starts when the user creates the
synthesis file...  In parallel the composition file is also created by
concatenating the information in the synthesis file with the data of
those data files which have been referred to by a tag in the synthesis
file.  The object descriptor is updated automatically to indicate the
location in the physical object where the data of the composition file
is displayed.  In the case that a data tag in the synthesis file refers
to data which exist in the archiver, the object descriptor is updated
with a pointer to the location within the archiver...  Thus the object
descriptor points either to offsets within the composition file or to
offsets within the archiver."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.compress import PieceStats, encode_piece, maybe_decode
from repro.errors import FormationError
from repro.formatter import serialize
from repro.formatter.composition import (
    BlobRegistry,
    CompositionFile,
    composition_reader,
)
from repro.ids import SegmentId
from repro.objects.attributes import AttributeSet
from repro.objects.descriptor import DataLocation, DataSource, Descriptor
from repro.objects.model import DrivingMode, MultimediaObject, ObjectState
from repro.objects.parts import TextSegment


@dataclass
class FormedObject:
    """Output of formation: a descriptor and its composition file."""

    descriptor: Descriptor
    composition: bytes
    #: Per-piece compression accounting (empty when compression is off).
    pieces: list[PieceStats] = field(default_factory=list)


class ObjectFormatter:
    """Turns an in-memory object into its storable form.

    Parameters
    ----------
    shared_archiver_data:
        Optional mapping ``tag -> (offset, length)`` naming data pieces
        that already exist in the archiver.  Those pieces are *not*
        copied into the composition file; the descriptor records an
        archiver pointer instead ("so that data duplication is
        avoided").
    compression:
        When true (the default), every data piece is wrapped in a
        self-describing compressed frame (:mod:`repro.compress`) before
        it enters the composition file, so everything downstream —
        platter extents, staging cache, shared link, replication —
        moves stored bytes.  Bitmap pieces that back *windowed* reads
        (source images of a representation, addressed row-by-row via
        ``read_piece_rows``) are exempted and stay raw, preserving
        byte-offset addressing.  When false, formation is byte-identical
        to the uncompressed historical format.
    """

    def __init__(
        self,
        shared_archiver_data: dict[str, tuple[int, int]] | None = None,
        *,
        compression: bool = True,
    ) -> None:
        self._shared = dict(shared_archiver_data or {})
        self._compression = compression

    def form(self, obj: MultimediaObject) -> FormedObject:
        """Produce the descriptor and composition file for ``obj``.

        The object must pass :meth:`MultimediaObject.validate`; the
        formatter raises otherwise rather than emit a descriptor with
        dangling references.
        """
        obj.validate()
        registry = BlobRegistry()
        extra: dict = {}

        extra["text_segments"] = []
        for segment in obj.text_segments:
            tag = f"text/{segment.segment_id}"
            registry.add(tag, "text", segment.markup.encode("utf-8"))
            extra["text_segments"].append(
                {"segment_id": segment.segment_id.value, "tag": tag}
            )

        extra["voice_segments"] = [
            serialize.voice_segment_to_dict(segment, registry)
            for segment in obj.voice_segments
        ]
        extra["images"] = [
            serialize.image_to_dict(image, registry) for image in obj.images
        ]
        extra["voice_messages"] = [
            serialize.voice_message_to_dict(message, registry)
            for message in obj.voice_messages
        ]
        extra["visual_messages"] = [
            serialize.visual_message_to_dict(message)
            for message in obj.visual_messages
        ]
        extra["relevant_links"] = [
            serialize.relevant_link_to_dict(link) for link in obj.relevant_links
        ]
        extra["presentation"] = serialize.presentation_spec_to_dict(obj.presentation)

        # Bitmaps backing a representation are read row-by-row through
        # raw byte offsets (read_piece_rows / fetch_window); framing
        # them would break that addressing, so they stay stored raw.
        windowed_tags = {
            f"image/{image.source_image_id}"
            for image in obj.images
            if image.is_representation and image.source_image_id is not None
        }

        composition = CompositionFile()
        locations: list[DataLocation] = []
        pieces: list[PieceStats] = []
        for tag, kind, data in registry.blobs():
            stored = data
            if self._compression and tag not in windowed_tags:
                stored, codec = encode_piece(data, kind)
                pieces.append(
                    PieceStats(
                        tag=tag,
                        kind=str(getattr(kind, "value", kind)),
                        codec=codec,
                        raw_len=len(data),
                        stored_len=len(stored),
                    )
                )
            if tag in self._shared:
                offset, length = self._shared[tag]
                if length != len(stored):
                    raise FormationError(
                        f"shared archiver data {tag!r} has length {length}, "
                        f"but the piece is {len(stored)} bytes"
                    )
                locations.append(
                    DataLocation(
                        tag=tag,
                        kind=kind,
                        source=DataSource.ARCHIVER,
                        offset=offset,
                        length=length,
                    )
                )
            else:
                locations.append(composition.append(tag, kind, stored))

        descriptor = Descriptor(
            object_id=obj.object_id,
            driving_mode=obj.driving_mode.value,
            locations=locations,
            attributes=obj.attributes.as_dict(),
            extra=extra,
        )
        return FormedObject(
            descriptor=descriptor,
            composition=composition.to_bytes(),
            pieces=pieces,
        )


def rebuild_object(
    descriptor: Descriptor,
    composition: bytes,
    archiver_read: Callable[[int, int], bytes] | None = None,
    *,
    decoder: Callable[[bytes], bytes] | None = None,
) -> MultimediaObject:
    """Reconstruct an archived object from its stored form.

    ``archiver_read(offset, length)`` resolves ARCHIVER-source data
    pointers; it is required whenever the descriptor has any.
    ``decoder`` maps stored piece bytes back to raw media bytes; it
    defaults to :func:`repro.compress.maybe_decode`, which unwraps
    compressed frames and passes raw pieces through untouched.

    Raises
    ------
    FormationError
        If an archiver pointer exists but no reader was supplied.
    """
    decode = decoder if decoder is not None else maybe_decode
    read_composition = composition_reader(
        composition,
        [l for l in descriptor.locations if l.source is DataSource.COMPOSITION],
    )
    by_tag = {loc.tag: loc for loc in descriptor.locations}

    def source(tag: str) -> bytes:
        location = by_tag.get(tag)
        if location is None:
            raise FormationError(f"descriptor has no data tag {tag!r}")
        if location.source is DataSource.COMPOSITION:
            return decode(read_composition(tag))
        if archiver_read is None:
            raise FormationError(
                f"tag {tag!r} points into the archiver but no archiver "
                "reader was supplied"
            )
        return decode(archiver_read(location.offset, location.length))

    extra = descriptor.extra
    obj = MultimediaObject(
        object_id=descriptor.object_id,
        driving_mode=DrivingMode(descriptor.driving_mode),
        attributes=AttributeSet.of(**descriptor.attributes),
    )
    for entry in extra.get("text_segments", []):
        markup = source(entry["tag"]).decode("utf-8")
        obj.add_text_segment(
            TextSegment(segment_id=SegmentId(entry["segment_id"]), markup=markup)
        )
    for payload in extra.get("voice_segments", []):
        obj.add_voice_segment(serialize.voice_segment_from_dict(payload, source))
    for payload in extra.get("images", []):
        obj.add_image(serialize.image_from_dict(payload, source))
    for payload in extra.get("voice_messages", []):
        obj.attach_voice_message(serialize.voice_message_from_dict(payload, source))
    for payload in extra.get("visual_messages", []):
        obj.attach_visual_message(serialize.visual_message_from_dict(payload))
    for payload in extra.get("relevant_links", []):
        obj.add_relevant_link(serialize.relevant_link_from_dict(payload))
    obj.presentation = serialize.presentation_spec_from_dict(
        extra.get("presentation", {})
    )
    obj.validate()
    obj.state = ObjectState.ARCHIVED
    return obj
