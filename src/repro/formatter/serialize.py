"""JSON codecs for the structural metadata of a multimedia object.

The split follows the paper's storage architecture: *data* (text
markup, voice waveforms, image bitmaps, message recordings) lives as
byte pieces in the composition file, addressed by descriptor data
locations; *structure* (presentation spec, anchors, messages, links,
logical marks, graphics) lives as JSON inside the descriptor.  Binary
payloads are referenced from the JSON by their data tags.

Encoding registers every payload with a :class:`BlobSink`; decoding
resolves tags back to bytes through a :class:`BlobSource`.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

import numpy as np

from repro.audio.codec import mu_law_decode, mu_law_encode
from repro.audio.recognition import RecognizedUtterance
from repro.audio.signal import Recording, TimedWord
from repro.errors import DescriptorError
from repro.ids import ImageId, IndicatorId, MessageId, ObjectId, SegmentId
from repro.images.bitmap import Bitmap
from repro.images.geometry import Circle, Point, PolyLine, Polygon
from repro.images.graphics import GraphicsObject, Label, LabelKind
from repro.images.image import Image
from repro.objects.anchors import (
    Anchor,
    ImageAnchor,
    TextAnchor,
    VoiceAnchor,
    VoicePointAnchor,
)
from repro.objects.logical import LogicalIndex, LogicalUnit, LogicalUnitKind
from repro.objects.messages import VisualMessage, VisualMessageContent, VoiceMessage
from repro.objects.parts import VoiceSegment
from repro.objects.presentation import (
    ImagePage,
    OverwritePage,
    PresentationItem,
    PresentationSpec,
    ProcessSimulation,
    SimStep,
    SimStepKind,
    TextFlow,
    Tour,
    TourStop,
    TransparencyMode,
    TransparencySet,
)
from repro.objects.relationships import Relevance, RelevanceKind, RelevantLink


class BlobSink(Protocol):
    """Receives binary payloads during encoding."""

    def add(self, tag: str, kind: str, data: bytes) -> None:  # pragma: no cover
        ...


BlobSource = Callable[[str], bytes]


# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------

def shape_to_dict(shape) -> dict[str, Any]:
    """Encode a shape."""
    if isinstance(shape, Point):
        return {"type": "point", "x": shape.x, "y": shape.y}
    if isinstance(shape, Circle):
        return {
            "type": "circle",
            "cx": shape.center.x,
            "cy": shape.center.y,
            "r": shape.radius,
        }
    if isinstance(shape, Polygon):
        return {"type": "polygon", "points": [[p.x, p.y] for p in shape.points]}
    if isinstance(shape, PolyLine):
        return {"type": "polyline", "points": [[p.x, p.y] for p in shape.points]}
    raise DescriptorError(f"cannot encode shape {type(shape).__name__}")


def shape_from_dict(payload: dict[str, Any]):
    """Decode a shape."""
    kind = payload["type"]
    if kind == "point":
        return Point(payload["x"], payload["y"])
    if kind == "circle":
        return Circle(Point(payload["cx"], payload["cy"]), payload["r"])
    if kind == "polygon":
        return Polygon(Point(x, y) for x, y in payload["points"])
    if kind == "polyline":
        return PolyLine(Point(x, y) for x, y in payload["points"])
    raise DescriptorError(f"unknown shape type {kind!r}")


# ----------------------------------------------------------------------
# recordings
# ----------------------------------------------------------------------

def recording_to_dict(
    recording: Recording, tag: str, sink: BlobSink, blob_kind: str
) -> dict[str, Any]:
    """Encode a recording: waveform to a blob, annotations inline."""
    sink.add(tag, blob_kind, mu_law_encode(recording.samples))
    return {
        "tag": tag,
        "sample_rate": recording.sample_rate,
        "speaker": recording.speaker,
        "words": [[w.word, w.start, w.end] for w in recording.words],
        "sentence_ends": list(recording.sentence_ends),
        "paragraph_ends": list(recording.paragraph_ends),
    }


def recording_from_dict(
    payload: dict[str, Any], source: BlobSource, *, lazy: bool = False
) -> Recording:
    """Decode a recording from its metadata and blob.

    With ``lazy=True`` the companded bytes are kept as-is and mu-law
    expansion is deferred to the first :attr:`Recording.samples` access
    (first playback) — the blob is still *read* through ``source`` now,
    so storage accounting is unchanged; only the decode is deferred.
    """
    annotations = dict(
        sample_rate=payload["sample_rate"],
        speaker=payload.get("speaker", "unknown"),
        words=[TimedWord(w, s, e) for w, s, e in payload.get("words", [])],
        sentence_ends=list(payload.get("sentence_ends", [])),
        paragraph_ends=list(payload.get("paragraph_ends", [])),
    )
    if lazy:
        return Recording(
            encoded=source(payload["tag"]), decoder=mu_law_decode, **annotations
        )
    return Recording(samples=mu_law_decode(source(payload["tag"])), **annotations)


# ----------------------------------------------------------------------
# images
# ----------------------------------------------------------------------

def label_to_dict(
    label: Label, owner_tag: str, sink: BlobSink
) -> dict[str, Any]:
    """Encode a label; a voice label's recording becomes a blob."""
    payload: dict[str, Any] = {
        "kind": label.kind.value,
        "text": label.text,
        "px": label.position.x,
        "py": label.position.y,
    }
    if label.voice is not None:
        payload["voice"] = recording_to_dict(
            label.voice, f"{owner_tag}/voice", sink, "label_voice"
        )
    return payload


def label_from_dict(payload: dict[str, Any], source: BlobSource) -> Label:
    """Decode a label."""
    voice = None
    if "voice" in payload:
        voice = recording_from_dict(payload["voice"], source)
    return Label(
        kind=LabelKind(payload["kind"]),
        text=payload["text"],
        position=Point(payload["px"], payload["py"]),
        voice=voice,
    )


def graphics_to_dict(
    obj: GraphicsObject, owner_tag: str, sink: BlobSink
) -> dict[str, Any]:
    """Encode a graphics object."""
    payload: dict[str, Any] = {
        "name": obj.name,
        "shape": shape_to_dict(obj.shape),
        "intensity": obj.intensity,
        "filled": obj.filled,
    }
    if obj.label is not None:
        payload["label"] = label_to_dict(obj.label, f"{owner_tag}/{obj.name}", sink)
    return payload


def graphics_from_dict(payload: dict[str, Any], source: BlobSource) -> GraphicsObject:
    """Decode a graphics object."""
    label = None
    if "label" in payload:
        label = label_from_dict(payload["label"], source)
    return GraphicsObject(
        name=payload["name"],
        shape=shape_from_dict(payload["shape"]),
        label=label,
        intensity=payload.get("intensity", 255),
        filled=payload.get("filled", False),
    )


def image_to_dict(image: Image, sink: BlobSink) -> dict[str, Any]:
    """Encode an image; the bitmap (if any) becomes a blob."""
    tag = f"image/{image.image_id}"
    payload: dict[str, Any] = {
        "image_id": image.image_id.value,
        "width": image.width,
        "height": image.height,
        "graphics": [graphics_to_dict(g, tag, sink) for g in image.graphics],
        "is_representation": image.is_representation,
        "scale": image.scale,
    }
    if image.source_image_id is not None:
        payload["source_image_id"] = image.source_image_id.value
    if image.bitmap is not None:
        sink.add(tag, "image", image.bitmap.pixels.tobytes())
        payload["bitmap_tag"] = tag
    return payload


def image_from_dict(payload: dict[str, Any], source: BlobSource) -> Image:
    """Decode an image."""
    bitmap = None
    if "bitmap_tag" in payload:
        raw = np.frombuffer(source(payload["bitmap_tag"]), dtype=np.uint8)
        bitmap = Bitmap(raw.reshape(payload["height"], payload["width"]).copy())
    return Image(
        image_id=ImageId(payload["image_id"]),
        width=payload["width"],
        height=payload["height"],
        bitmap=bitmap,
        graphics=[graphics_from_dict(g, source) for g in payload.get("graphics", [])],
        is_representation=payload.get("is_representation", False),
        source_image_id=(
            ImageId(payload["source_image_id"])
            if "source_image_id" in payload
            else None
        ),
        scale=payload.get("scale", 1),
    )


# ----------------------------------------------------------------------
# logical structure
# ----------------------------------------------------------------------

def logical_unit_to_dict(unit: LogicalUnit) -> dict[str, Any]:
    """Encode one logical unit and its subtree."""
    return {
        "kind": unit.kind.value,
        "start": unit.start,
        "end": unit.end,
        "label": unit.label,
        "children": [logical_unit_to_dict(c) for c in unit.children],
    }


def logical_unit_from_dict(payload: dict[str, Any]) -> LogicalUnit:
    """Decode one logical unit and its subtree."""
    return LogicalUnit(
        kind=LogicalUnitKind(payload["kind"]),
        start=payload["start"],
        end=payload["end"],
        label=payload.get("label", ""),
        children=[logical_unit_from_dict(c) for c in payload.get("children", [])],
    )


def logical_index_to_list(index: LogicalIndex) -> list[dict[str, Any]]:
    """Encode a logical index as its root list."""
    return [logical_unit_to_dict(root) for root in index.roots]


def logical_index_from_list(payload: list[dict[str, Any]]) -> LogicalIndex:
    """Decode a logical index."""
    return LogicalIndex([logical_unit_from_dict(root) for root in payload])


# ----------------------------------------------------------------------
# anchors
# ----------------------------------------------------------------------

def anchor_to_dict(anchor: Anchor) -> dict[str, Any]:
    """Encode an anchor."""
    if isinstance(anchor, TextAnchor):
        return {
            "type": "text",
            "segment_id": anchor.segment_id.value,
            "start": anchor.start,
            "end": anchor.end,
        }
    if isinstance(anchor, ImageAnchor):
        return {"type": "image", "image_id": anchor.image_id.value}
    if isinstance(anchor, VoiceAnchor):
        return {
            "type": "voice",
            "segment_id": anchor.segment_id.value,
            "start": anchor.start,
            "end": anchor.end,
        }
    if isinstance(anchor, VoicePointAnchor):
        return {
            "type": "voice_point",
            "segment_id": anchor.segment_id.value,
            "time": anchor.time,
        }
    raise DescriptorError(f"cannot encode anchor {type(anchor).__name__}")


def anchor_from_dict(payload: dict[str, Any]) -> Anchor:
    """Decode an anchor."""
    kind = payload["type"]
    if kind == "text":
        return TextAnchor(
            SegmentId(payload["segment_id"]), payload["start"], payload["end"]
        )
    if kind == "image":
        return ImageAnchor(ImageId(payload["image_id"]))
    if kind == "voice":
        return VoiceAnchor(
            SegmentId(payload["segment_id"]), payload["start"], payload["end"]
        )
    if kind == "voice_point":
        return VoicePointAnchor(SegmentId(payload["segment_id"]), payload["time"])
    raise DescriptorError(f"unknown anchor type {kind!r}")


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------

def voice_message_to_dict(message: VoiceMessage, sink: BlobSink) -> dict[str, Any]:
    """Encode a voice logical message."""
    return {
        "message_id": message.message_id.value,
        "recording": recording_to_dict(
            message.recording, f"msg/{message.message_id}", sink, "message_voice"
        ),
        "anchors": [anchor_to_dict(a) for a in message.anchors],
    }


def voice_message_from_dict(
    payload: dict[str, Any], source: BlobSource
) -> VoiceMessage:
    """Decode a voice logical message."""
    return VoiceMessage(
        message_id=MessageId(payload["message_id"]),
        recording=recording_from_dict(payload["recording"], source),
        anchors=[anchor_from_dict(a) for a in payload["anchors"]],
    )


def visual_message_to_dict(message: VisualMessage) -> dict[str, Any]:
    """Encode a visual logical message (its images live in the image part)."""
    return {
        "message_id": message.message_id.value,
        "text": message.content.text,
        "image_ids": [i.value for i in message.content.image_ids],
        "anchors": [anchor_to_dict(a) for a in message.anchors],
        "display_once": message.display_once,
    }


def visual_message_from_dict(payload: dict[str, Any]) -> VisualMessage:
    """Decode a visual logical message."""
    return VisualMessage(
        message_id=MessageId(payload["message_id"]),
        content=VisualMessageContent(
            text=payload.get("text", ""),
            image_ids=[ImageId(i) for i in payload.get("image_ids", [])],
        ),
        anchors=[anchor_from_dict(a) for a in payload["anchors"]],
        display_once=payload.get("display_once", False),
    )


# ----------------------------------------------------------------------
# relationships
# ----------------------------------------------------------------------

def relevance_to_dict(relevance: Relevance) -> dict[str, Any]:
    """Encode a relevance."""
    payload: dict[str, Any] = {"kind": relevance.kind.value}
    if relevance.segment_id is not None:
        payload["segment_id"] = relevance.segment_id.value
    if relevance.kind is RelevanceKind.TEXT:
        payload["text_start"] = relevance.text_start
        payload["text_end"] = relevance.text_end
    elif relevance.kind is RelevanceKind.IMAGE:
        payload["image_id"] = relevance.image_id.value
        payload["region"] = shape_to_dict(relevance.region)
    elif relevance.kind is RelevanceKind.VOICE:
        payload["voice_start"] = relevance.voice_start
        payload["voice_end"] = relevance.voice_end
    return payload


def relevance_from_dict(payload: dict[str, Any]) -> Relevance:
    """Decode a relevance."""
    kind = RelevanceKind(payload["kind"])
    return Relevance(
        kind=kind,
        segment_id=(
            SegmentId(payload["segment_id"]) if "segment_id" in payload else None
        ),
        text_start=payload.get("text_start", 0),
        text_end=payload.get("text_end", 0),
        image_id=ImageId(payload["image_id"]) if "image_id" in payload else None,
        region=shape_from_dict(payload["region"]) if "region" in payload else None,
        voice_start=payload.get("voice_start", 0.0),
        voice_end=payload.get("voice_end", 0.0),
    )


def relevant_link_to_dict(link: RelevantLink) -> dict[str, Any]:
    """Encode a relevant-object link."""
    payload: dict[str, Any] = {
        "indicator_id": link.indicator_id.value,
        "label": link.label,
        "target_object_id": link.target_object_id.value,
        "relevances": [relevance_to_dict(r) for r in link.relevances],
    }
    if link.parent_anchor is not None:
        payload["parent_anchor"] = anchor_to_dict(link.parent_anchor)
    return payload


def relevant_link_from_dict(payload: dict[str, Any]) -> RelevantLink:
    """Decode a relevant-object link."""
    return RelevantLink(
        indicator_id=IndicatorId(payload["indicator_id"]),
        label=payload["label"],
        target_object_id=ObjectId(payload["target_object_id"]),
        parent_anchor=(
            anchor_from_dict(payload["parent_anchor"])
            if "parent_anchor" in payload
            else None
        ),
        relevances=[relevance_from_dict(r) for r in payload.get("relevances", [])],
    )


# ----------------------------------------------------------------------
# presentation spec
# ----------------------------------------------------------------------

def presentation_item_to_dict(item: PresentationItem) -> dict[str, Any]:
    """Encode one presentation item."""
    if isinstance(item, TextFlow):
        return {"type": "text_flow", "segment_id": item.segment_id.value}
    if isinstance(item, ImagePage):
        return {"type": "image_page", "image_id": item.image_id.value}
    if isinstance(item, TransparencySet):
        return {
            "type": "transparency_set",
            "members": [m.value for m in item.members],
            "mode": item.mode.value,
        }
    if isinstance(item, OverwritePage):
        return {"type": "overwrite", "image_id": item.image_id.value}
    if isinstance(item, ProcessSimulation):
        return {
            "type": "process_simulation",
            "interval_s": item.interval_s,
            "steps": [
                {
                    "image_id": s.image_id.value,
                    "kind": s.kind.value,
                    "message_id": s.message_id.value if s.message_id else None,
                }
                for s in item.steps
            ],
        }
    if isinstance(item, Tour):
        return {
            "type": "tour",
            "image_id": item.image_id.value,
            "window_width": item.window_width,
            "window_height": item.window_height,
            "dwell_s": item.dwell_s,
            "stops": [
                {
                    "x": s.x,
                    "y": s.y,
                    "message_id": s.message_id.value if s.message_id else None,
                }
                for s in item.stops
            ],
        }
    raise DescriptorError(f"cannot encode presentation item {type(item).__name__}")


def presentation_item_from_dict(payload: dict[str, Any]) -> PresentationItem:
    """Decode one presentation item."""
    kind = payload["type"]
    if kind == "text_flow":
        return TextFlow(SegmentId(payload["segment_id"]))
    if kind == "image_page":
        return ImagePage(ImageId(payload["image_id"]))
    if kind == "transparency_set":
        return TransparencySet(
            [ImageId(m) for m in payload["members"]],
            TransparencyMode(payload["mode"]),
        )
    if kind == "overwrite":
        return OverwritePage(ImageId(payload["image_id"]))
    if kind == "process_simulation":
        return ProcessSimulation(
            [
                SimStep(
                    ImageId(s["image_id"]),
                    SimStepKind(s["kind"]),
                    MessageId(s["message_id"]) if s.get("message_id") else None,
                )
                for s in payload["steps"]
            ],
            interval_s=payload["interval_s"],
        )
    if kind == "tour":
        return Tour(
            ImageId(payload["image_id"]),
            payload["window_width"],
            payload["window_height"],
            [
                TourStop(
                    s["x"],
                    s["y"],
                    MessageId(s["message_id"]) if s.get("message_id") else None,
                )
                for s in payload["stops"]
            ],
            dwell_s=payload.get("dwell_s", 2.0),
        )
    raise DescriptorError(f"unknown presentation item type {kind!r}")


def presentation_spec_to_dict(spec: PresentationSpec) -> dict[str, Any]:
    """Encode a presentation specification."""
    return {
        "items": [presentation_item_to_dict(i) for i in spec.items],
        "audio_order": [s.value for s in spec.audio_order],
        "audio_page_seconds": spec.audio_page_seconds,
    }


def presentation_spec_from_dict(payload: dict[str, Any]) -> PresentationSpec:
    """Decode a presentation specification."""
    return PresentationSpec(
        items=[presentation_item_from_dict(i) for i in payload.get("items", [])],
        audio_order=[SegmentId(s) for s in payload.get("audio_order", [])],
        audio_page_seconds=payload.get("audio_page_seconds", 10.0),
    )


# ----------------------------------------------------------------------
# voice segment metadata
# ----------------------------------------------------------------------

def voice_segment_to_dict(segment: VoiceSegment, sink: BlobSink) -> dict[str, Any]:
    """Encode a voice segment (waveform to a blob)."""
    return {
        "segment_id": segment.segment_id.value,
        "recording": recording_to_dict(
            segment.recording, f"voice/{segment.segment_id}", sink, "voice"
        ),
        "logical": logical_index_to_list(segment.logical_index),
        "utterances": [[u.term, u.time] for u in segment.utterances],
    }


def voice_segment_from_dict(
    payload: dict[str, Any], source: BlobSource
) -> VoiceSegment:
    """Decode a voice segment.

    Segment waveforms decode lazily: browsing menus, audio paging and
    duration accounting only need the annotation metadata and the
    byte count, so the mu-law expansion waits for the first playback
    (messages and labels, which play immediately on anchor entry,
    stay eager).
    """
    return VoiceSegment(
        segment_id=SegmentId(payload["segment_id"]),
        recording=recording_from_dict(payload["recording"], source, lazy=True),
        logical_index=logical_index_from_list(payload.get("logical", [])),
        utterances=[
            RecognizedUtterance(term, time)
            for term, time in payload.get("utterances", [])
        ],
    )
