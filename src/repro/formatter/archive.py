"""Archive and mail pipelines.

"Archived or mailed within the organization multimedia objects are
composed of the concatenation of the descriptor file with the
composition file.  In the case that objects are archived the offsets of
the descriptor have to be incremented by the offset where the
composition file is placed within the archiver.  Finally when the
multimedia object is mailed outside the organization the object
descriptor is searched for pointers to information which exists in the
archiver.  If such pointers exist, the relevant data is extracted from
the archiver and appended to the composition [file].  The pointers of
the descriptor which pointed to the archiver are changed to point
within the composition file."
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import FormationError
from repro.index.postings import CHANNELS, TEXT, UNIT_GAP, VOICE
from repro.objects.descriptor import DataSource, Descriptor
from repro.text.search import tokenize

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.index.archive_index import RawPosting
    from repro.objects.model import MultimediaObject

_MAGIC = b"MNOS"
_HEADER = struct.Struct(">4sI")  # magic, descriptor length


@dataclass
class ArchivedObjectBytes:
    """The byte-level archived form: descriptor ‖ composition."""

    data: bytes
    descriptor_length: int

    @property
    def composition_offset(self) -> int:
        """Offset of the composition file within the archived bytes."""
        return _HEADER.size + self.descriptor_length


def pack_archived(descriptor: Descriptor, composition: bytes) -> ArchivedObjectBytes:
    """Concatenate descriptor and composition into the archived form."""
    descriptor_bytes = descriptor.to_bytes()
    data = _HEADER.pack(_MAGIC, len(descriptor_bytes)) + descriptor_bytes + composition
    return ArchivedObjectBytes(data=data, descriptor_length=len(descriptor_bytes))


def unpack_archived(data: bytes) -> tuple[Descriptor, bytes]:
    """Split archived bytes back into descriptor and composition.

    Raises
    ------
    FormationError
        If the bytes do not start with a valid archived-object header.
    """
    if len(data) < _HEADER.size:
        raise FormationError("archived object truncated before header")
    magic, descriptor_length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise FormationError(f"bad archived-object magic {magic!r}")
    body = data[_HEADER.size :]
    if len(body) < descriptor_length:
        raise FormationError("archived object truncated inside descriptor")
    descriptor = Descriptor.from_bytes(body[:descriptor_length])
    return descriptor, body[descriptor_length:]


def mail_outside(
    descriptor: Descriptor,
    composition: bytes,
    archiver_read: Callable[[int, int], bytes],
) -> tuple[Descriptor, bytes]:
    """Make an object self-contained for mailing outside the organization.

    Every ARCHIVER-source data location is resolved by reading the data
    from the archiver, appending it to the composition file, and
    repointing the location at the appended copy.  Objects without
    archiver pointers are returned unchanged.
    """
    if not descriptor.archiver_tags():
        return descriptor, composition

    appended: list[bytes] = []
    cursor = len(composition)
    locations = []
    for location in descriptor.locations:
        if location.source is DataSource.ARCHIVER:
            data = archiver_read(location.offset, location.length)
            if len(data) != location.length:
                raise FormationError(
                    f"archiver returned {len(data)} bytes for {location.tag!r}; "
                    f"expected {location.length}"
                )
            appended.append(data)
            locations.append(
                replace(
                    location,
                    source=DataSource.COMPOSITION,
                    offset=cursor,
                )
            )
            cursor += len(data)
        else:
            locations.append(location)

    mailed_descriptor = Descriptor(
        object_id=descriptor.object_id,
        driving_mode=descriptor.driving_mode,
        locations=locations,
        attributes=dict(descriptor.attributes),
        extra=dict(descriptor.extra),
    )
    return mailed_descriptor, composition + b"".join(appended)


# ----------------------------------------------------------------------
# insertion-time index feed
# ----------------------------------------------------------------------
#
# Archiving an object is the moment its content becomes immutable, so
# it is also the moment its postings for the archive-wide symmetric
# index (repro.index) are extracted — "recognized at the time of voice
# insertion" made concrete.  The two functions below walk the object's
# content *units* (one text segment, one image label, one voice
# segment at a time) through a single shared iterator, so the postings
# the index serves and the token sequences the scan oracle checks are
# definitionally consistent.


def _content_units(
    obj: "MultimediaObject",
) -> Iterator[tuple[str, list[tuple[str, float]]]]:
    """Yield ``(channel, [(term, position), ...])`` per indexing unit.

    Text units carry character offsets; voice units carry utterance
    times in seconds, sorted — the same symmetric position contract as
    :class:`repro.text.search.TextSearchIndex`.
    """
    for segment in obj.text_segments:
        yield TEXT, [
            (term, float(offset))
            for term, offset in tokenize(segment.plain_text)
        ]
    for image in obj.images:
        for graphics in image.labelled_objects():
            yield TEXT, [
                (term, float(offset))
                for term, offset in tokenize(graphics.label.text)
            ]
    for segment in obj.voice_segments:
        yield VOICE, [
            (utterance.term.lower(), float(utterance.time))
            for utterance in sorted(segment.utterances, key=lambda u: u.time)
        ]


def archive_postings(
    obj: "MultimediaObject", channels: tuple[str, ...] = CHANNELS
) -> list["RawPosting"]:
    """Extract the archive-index postings of an object being archived.

    Returns ``(term, channel, position, ordinal)`` tuples.  Ordinals
    number tokens consecutively within each unit and leave a gap
    between units, so consecutive ordinals — the phrase-adjacency test
    — never span a segment or label boundary.
    """
    postings: list["RawPosting"] = []
    cursors = dict.fromkeys(CHANNELS, 0)
    for channel, tokens in _content_units(obj):
        if channel not in channels:
            # Unit gaps advance even for skipped channels so a
            # voice-only re-extraction assigns the same ordinals as the
            # insertion-time full extraction did.
            cursors[channel] += len(tokens) + UNIT_GAP
            continue
        ordinal = cursors[channel]
        for term, position in tokens:
            postings.append((term, channel, position, ordinal))
            ordinal += 1
        cursors[channel] = ordinal + UNIT_GAP
    return postings


def object_token_units(obj: "MultimediaObject") -> dict[str, list[list[str]]]:
    """Token sequences per channel — the scan oracle's view of an object.

    The result feeds :func:`repro.index.matches_units`: queries are
    *defined* by what these sequences answer, and the index is held to
    exactly that.
    """
    units: dict[str, list[list[str]]] = {channel: [] for channel in CHANNELS}
    for channel, tokens in _content_units(obj):
        units[channel].append([term for term, _ in tokens])
    return units
