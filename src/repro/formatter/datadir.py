"""The data directory file of an object under formation.

"The data directory file contains information about the various data
files as well as about data in the archiver that have been extracted
but not copied.  Such information is the name, type, location, length,
and status of data.  The status information describes if the data in a
particular file is in its final form which is to be used for archiving
or mailing."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DataDirectoryError
from repro.objects.descriptor import DataKind


class DataStatus(enum.Enum):
    """Whether a data piece is ready for archiving/mailing."""

    DRAFT = "draft"
    FINAL = "final"


@dataclass
class DataEntry:
    """One data-directory record."""

    name: str
    kind: DataKind
    location: str
    length: int
    status: DataStatus = DataStatus.DRAFT
    in_archiver: bool = False

    def __post_init__(self) -> None:
        if self.length < 0:
            raise DataDirectoryError(f"negative length for {self.name!r}")


class DataDirectory:
    """The set of data files making up an object under formation."""

    def __init__(self) -> None:
        self._entries: dict[str, DataEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def register(self, entry: DataEntry) -> None:
        """Add or replace an entry."""
        self._entries[entry.name] = entry

    def entry(self, name: str) -> DataEntry:
        """Look up an entry.

        Raises
        ------
        DataDirectoryError
            If the name is unknown.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise DataDirectoryError(f"data directory has no entry {name!r}")
        return entry

    def mark_final(self, name: str) -> None:
        """Flip an entry to FINAL (its archival form has been produced).

        "When the editing of an image is completed its archival form
        (which is device and software package independent) is produced.
        The presentation interface of the archiver expects always the
        data in its final form."
        """
        self.entry(name).status = DataStatus.FINAL

    def drafts(self) -> list[DataEntry]:
        """Entries not yet in final form."""
        return [e for e in self._entries.values() if e.status is DataStatus.DRAFT]

    def require_all_final(self) -> None:
        """Raise unless every entry is FINAL (pre-archive check)."""
        drafts = self.drafts()
        if drafts:
            names = ", ".join(sorted(e.name for e in drafts))
            raise DataDirectoryError(
                f"data pieces not in final form: {names}; the archiver "
                "expects data in its final form"
            )

    def entries(self) -> list[DataEntry]:
        """All entries, sorted by name."""
        return [self._entries[name] for name in sorted(self._entries)]
