"""Plane geometry used by graphics images and views.

Coordinates follow raster convention: ``x`` grows rightwards, ``y``
grows downwards, and all units are pixels.  Rectangles are half-open
(``x + width`` and ``y + height`` are *excluded*), matching numpy
slicing so that ``bitmap[rect.y:rect.y2, rect.x:rect.x2]`` extracts
exactly the rectangle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """A point in pixel coordinates."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned, half-open rectangle."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(f"rectangle sides must be non-negative: {self}")

    @property
    def x2(self) -> int:
        """Exclusive right edge."""
        return self.x + self.width

    @property
    def y2(self) -> int:
        """Exclusive bottom edge."""
        return self.y + self.height

    @property
    def area(self) -> int:
        """Number of pixels covered."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre of the rectangle."""
        return Point(self.x + self.width / 2, self.y + self.height / 2)

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` falls inside the rectangle."""
        return self.x <= point.x < self.x2 and self.y <= point.y < self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share at least one pixel."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        return Rect(x, y, min(self.x2, other.x2) - x, min(self.y2, other.y2) - y)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return this rectangle moved by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def resized(self, dw: int, dh: int) -> "Rect":
        """Return this rectangle grown (or shrunk) by ``(dw, dh)``.

        The top-left corner stays fixed, matching the paper's
        "dimensions of the view can be shrunk or expanded" operation.
        """
        return Rect(self.x, self.y, self.width + dw, self.height + dh)

    def clamped_within(self, bounds: "Rect") -> "Rect":
        """Return this rectangle shifted/shrunk to fit inside ``bounds``."""
        width = min(self.width, bounds.width)
        height = min(self.height, bounds.height)
        x = min(max(self.x, bounds.x), bounds.x2 - width)
        y = min(max(self.y, bounds.y), bounds.y2 - height)
        return Rect(x, y, width, height)


@dataclass(frozen=True)
class PolyLine:
    """An open chain of line segments."""

    points: tuple[Point, ...]

    def __init__(self, points: Iterable[Point]) -> None:
        object.__setattr__(self, "points", tuple(points))
        if len(self.points) < 2:
            raise ValueError("a polyline needs at least two points")

    @property
    def length(self) -> float:
        """Total length of the chain."""
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    def bounding_rect(self) -> Rect:
        """Smallest rectangle containing every vertex."""
        return _bounding_rect(self.points)


@dataclass(frozen=True)
class Polygon:
    """A closed polygon (vertices in order; the last edge closes it)."""

    points: tuple[Point, ...]

    def __init__(self, points: Iterable[Point]) -> None:
        object.__setattr__(self, "points", tuple(points))
        if len(self.points) < 3:
            raise ValueError("a polygon needs at least three vertices")

    def bounding_rect(self) -> Rect:
        """Smallest rectangle containing every vertex."""
        return _bounding_rect(self.points)

    def contains_point(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        inside = False
        pts = self.points
        j = len(pts) - 1
        for i in range(len(pts)):
            xi, yi = pts[i].x, pts[i].y
            xj, yj = pts[j].x, pts[j].y
            if (yi > point.y) != (yj > point.y):
                x_cross = (xj - xi) * (point.y - yi) / (yj - yi) + xi
                if point.x < x_cross:
                    inside = not inside
                elif point.x == x_cross:
                    return True
            j = i
        return inside

    @property
    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        total = 0.0
        pts = self.points
        for i in range(len(pts)):
            a, b = pts[i], pts[(i + 1) % len(pts)]
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle given by centre and radius."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"circle radius must be positive: {self.radius}")

    def bounding_rect(self) -> Rect:
        """Smallest rectangle containing the circle."""
        r = self.radius
        return Rect(
            int(math.floor(self.center.x - r)),
            int(math.floor(self.center.y - r)),
            int(math.ceil(2 * r)) + 1,
            int(math.ceil(2 * r)) + 1,
        )

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` is inside or on the circle."""
        return self.center.distance_to(point) <= self.radius


def _bounding_rect(points: Sequence[Point]) -> Rect:
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x0 = int(math.floor(min(xs)))
    y0 = int(math.floor(min(ys)))
    x1 = int(math.ceil(max(xs)))
    y1 = int(math.ceil(max(ys)))
    return Rect(x0, y0, max(x1 - x0, 1), max(y1 - y0, 1))
