"""Representations (miniatures) of images and of whole objects.

The paper: "A representation of the image is an image itself, where
only a high level representation of the content of the image are
presented in positions which correspond to the actual positions of the
objects of the image (a miniature).  The representation of the image is
much smaller than the image itself, and thus it is easily transferable
to main memory."

Views defined on a representation are executed against the *source*
image's data, so the user pays only for the window, never the whole
image.
"""

from __future__ import annotations

from repro.errors import ImageError
from repro.ids import ImageId
from repro.images.geometry import Circle, Point, PolyLine, Polygon
from repro.images.graphics import GraphicsObject
from repro.images.image import Image


def make_miniature(image: Image, scale: int, miniature_id: ImageId) -> Image:
    """Build a representation of ``image`` downsampled by ``scale``.

    The bitmap (if any) is block-mean reduced; graphics objects are
    geometrically scaled so that their positions "correspond to the
    actual positions of the objects of the image".  Labels are dropped
    from the miniature — they belong to the full image and would be
    unreadable at miniature scale — but object names are preserved so
    highlighting can still locate them.

    Raises
    ------
    ImageError
        If ``scale`` is less than 2 (a representation must actually be
        smaller) or the image is itself a representation.
    """
    if scale < 2:
        raise ImageError(f"miniature scale must be at least 2, got {scale}")
    if image.is_representation:
        raise ImageError("cannot make a representation of a representation")

    width = max(image.width // scale, 1)
    height = max(image.height // scale, 1)
    bitmap = None
    if image.bitmap is not None:
        bitmap = image.bitmap.downsample(scale)
        # Downsampling floors to whole blocks; adopt its exact size.
        width, height = bitmap.width, bitmap.height

    graphics = [_scale_object(obj, scale) for obj in image.graphics]
    return Image(
        image_id=miniature_id,
        width=width,
        height=height,
        bitmap=bitmap,
        graphics=graphics,
        is_representation=True,
        source_image_id=image.image_id,
        scale=scale,
    )


def _scale_object(obj: GraphicsObject, scale: int) -> GraphicsObject:
    shape = obj.shape
    if isinstance(shape, Point):
        scaled = Point(shape.x / scale, shape.y / scale)
    elif isinstance(shape, Circle):
        scaled = Circle(
            Point(shape.center.x / scale, shape.center.y / scale),
            max(shape.radius / scale, 0.5),
        )
    elif isinstance(shape, Polygon):
        scaled = Polygon(Point(p.x / scale, p.y / scale) for p in shape.points)
    elif isinstance(shape, PolyLine):
        scaled = PolyLine(Point(p.x / scale, p.y / scale) for p in shape.points)
    else:  # pragma: no cover - exhaustive over Shape union
        raise ImageError(f"unknown shape type: {type(shape).__name__}")
    return GraphicsObject(
        name=obj.name,
        shape=scaled,
        label=None,
        intensity=obj.intensity,
        filled=obj.filled,
    )
