"""Views: rectangular windows for browsing very large images.

The paper: "In very large images the user may want to see a small
portion of the image (window) at a time...  The system will only
retrieve the relevant data."  A view supports small relative moves,
non-contiguous jumps, and shrink/expand resizing; when the voice option
is on, the voice labels *encountered* by the moving or growing view are
played.

A view tracks how many bytes of image data each operation required, so
the C-VIEW benchmark can compare windowed retrieval against fetching
the entire image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ViewError
from repro.images.bitmap import Bitmap
from repro.images.geometry import Rect
from repro.images.graphics import Label
from repro.images.image import Image
from repro.images.spatial import SpatialGrid


@dataclass
class ViewMove:
    """Record of one view operation, for traces and benchmarks."""

    rect: Rect
    bytes_fetched: int
    new_labels: list[Label] = field(default_factory=list)
    kind: str = "move"


class View:
    """A movable, resizable window over an image.

    Parameters
    ----------
    image:
        The image being browsed.  May be a full image or a
        representation; when it is a representation, coordinates are
        still expressed in *source image* pixels and ``data_source``
        must supply the source data.
    rect:
        Initial window, in image coordinates.
    data_source:
        Callable ``(rect) -> Bitmap`` that retrieves the window's
        pixels.  Defaults to cropping the image's own bitmap.  The
        server-backed presentation manager passes a callable that also
        accounts transfer costs.
    voice_option:
        When on, label encounters are reported so the caller can play
        the voice labels the view sweeps over.
    """

    def __init__(
        self,
        image: Image,
        rect: Rect,
        data_source=None,
        voice_option: bool = False,
        label_image: Image | None = None,
    ) -> None:
        source_rect = self._source_rect(image)
        if rect.width <= 0 or rect.height <= 0:
            raise ViewError(f"view must have positive size: {rect}")
        if not source_rect.contains_rect(rect):
            raise ViewError(f"view {rect} exceeds image bounds {source_rect}")
        self._image = image
        self._bounds = source_rect
        self._rect = rect
        self._voice_option = voice_option
        self._data_source = data_source or self._default_source
        # Views on a representation report labels from the *source*
        # image (miniatures drop labels; coordinates are source-space).
        label_graphics = (label_image or image).graphics
        self._grid = SpatialGrid.for_objects(source_rect, label_graphics)
        self._bytes_fetched = 0
        self._history: list[ViewMove] = []

    @staticmethod
    def _source_rect(image: Image) -> Rect:
        if image.is_representation:
            return Rect(0, 0, image.width * image.scale, image.height * image.scale)
        return image.rect

    def _default_source(self, rect: Rect) -> Bitmap:
        if self._image.bitmap is None:
            return Bitmap.blank(rect.width, rect.height)
        return self._image.bitmap.crop(rect)

    @property
    def rect(self) -> Rect:
        """Current window rectangle in image coordinates."""
        return self._rect

    @property
    def voice_option(self) -> bool:
        """Whether encountered voice labels are reported."""
        return self._voice_option

    @voice_option.setter
    def voice_option(self, on: bool) -> None:
        self._voice_option = on

    @property
    def bytes_fetched(self) -> int:
        """Cumulative image bytes retrieved by this view."""
        return self._bytes_fetched

    @property
    def history(self) -> list[ViewMove]:
        """All operations performed, oldest first."""
        return list(self._history)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def fetch(self) -> Bitmap:
        """Retrieve the current window's data (initial display)."""
        return self._apply(self._rect, kind="fetch", previous=None).bitmap

    def move(self, dx: int, dy: int) -> "ViewResult":
        """Shift the window by ``(dx, dy)``, clamped to the image."""
        target = self._rect.translated(dx, dy).clamped_within(self._bounds)
        return self._apply(target, kind="move", previous=self._rect)

    def jump(self, x: int, y: int) -> "ViewResult":
        """Non-contiguous move: place the window's corner at ``(x, y)``."""
        target = Rect(x, y, self._rect.width, self._rect.height).clamped_within(
            self._bounds
        )
        return self._apply(target, kind="jump", previous=self._rect)

    def resize(self, dw: int, dh: int) -> "ViewResult":
        """Shrink or expand the window by small quantities.

        The paper lets the user redefine the rectangle size relative to
        the old size; growth may bring new labels into view, which are
        then reported (and played if the voice option is on).
        """
        new_width = self._rect.width + dw
        new_height = self._rect.height + dh
        if new_width <= 0 or new_height <= 0:
            raise ViewError(
                f"resize by ({dw}, {dh}) would collapse view {self._rect}"
            )
        target = Rect(self._rect.x, self._rect.y, new_width, new_height)
        target = target.clamped_within(self._bounds)
        return self._apply(target, kind="resize", previous=self._rect)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply(self, target: Rect, kind: str, previous: Rect | None) -> "ViewResult":
        bitmap = self._data_source(target)
        self._bytes_fetched += bitmap.nbytes
        new_labels = self._newly_visible_labels(previous, target)
        self._rect = target
        move = ViewMove(
            rect=target, bytes_fetched=bitmap.nbytes, new_labels=new_labels, kind=kind
        )
        self._history.append(move)
        return ViewResult(bitmap=bitmap, rect=target, new_labels=new_labels)

    def _newly_visible_labels(
        self, previous: Rect | None, current: Rect
    ) -> list[Label]:
        labels: list[Label] = []
        for obj in self._grid.query_rect(current):
            label = obj.label
            if label is None or not label.kind.is_voice:
                continue
            if not current.contains_point(label.position):
                continue
            if previous is not None and previous.contains_point(label.position):
                continue  # already in view before the operation
            labels.append(label)
        return labels


@dataclass
class ViewResult:
    """Outcome of a view operation."""

    bitmap: Bitmap
    rect: Rect
    new_labels: list[Label]
