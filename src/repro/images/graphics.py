"""Graphics objects and their labels.

The paper: "Images with graphics contain graphics objects such as
points, polygons, polylines, circles, etc.  Graphics objects may have a
label associated with them...  The presentation form of a label may be
invisible, text label, or voice label."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.errors import ImageError
from repro.images.geometry import Circle, Point, PolyLine, Polygon, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.audio.signal import Recording

Shape = Union[Point, PolyLine, Polygon, Circle]


class LabelKind(enum.Enum):
    """Presentation form of a graphics-object label."""

    TEXT = "text"
    VOICE = "voice"
    INVISIBLE_TEXT = "invisible_text"
    INVISIBLE_VOICE = "invisible_voice"

    @property
    def is_visible(self) -> bool:
        """Whether the label (or its indicator) is displayed by default."""
        return self in (LabelKind.TEXT, LabelKind.VOICE)

    @property
    def is_voice(self) -> bool:
        """Whether the label's content is voice."""
        return self in (LabelKind.VOICE, LabelKind.INVISIBLE_VOICE)


@dataclass
class Label:
    """Short information attached to a graphics object.

    Text labels are displayed near the object at a designer-specified
    position.  Voice labels display only an indicator there; the voice
    itself plays when the user selects the indicator (or when a moving
    view encounters the object with the voice option on).

    Attributes
    ----------
    kind:
        Presentation form of the label.
    text:
        The label text.  Always present — for voice labels it is the
        transcript of the recording and is what pattern-based label
        highlighting matches against.
    voice:
        The label's recording, required when ``kind.is_voice``.
    position:
        Designer-specified display position for the label or its
        voice indicator.
    """

    kind: LabelKind
    text: str
    position: Point
    voice: "Recording | None" = None

    def __post_init__(self) -> None:
        if self.kind.is_voice and self.voice is None:
            raise ImageError(f"label kind {self.kind.value} requires a recording")
        if not self.kind.is_voice and self.voice is not None:
            raise ImageError(f"label kind {self.kind.value} must not carry voice")
        if not self.text:
            raise ImageError("label text (or transcript) must be non-empty")

    def matches(self, pattern: str) -> bool:
        """Case-insensitive substring match used for label highlighting."""
        return pattern.lower() in self.text.lower()


@dataclass
class GraphicsObject:
    """A shape on a graphics image, optionally labelled.

    Attributes
    ----------
    name:
        Stable name used in traces and highlighting reports.
    shape:
        The geometry of the object.
    label:
        Optional label; see :class:`Label`.
    intensity:
        Stroke intensity used when rasterising (0-255).
    filled:
        For polygons and circles, whether the interior is shaded.
    """

    name: str
    shape: Shape
    label: Label | None = None
    intensity: int = 255
    filled: bool = False
    _cached_bounds: Rect | None = field(default=None, repr=False, compare=False)

    def bounding_rect(self) -> Rect:
        """Bounding rectangle of the shape (cached)."""
        if self._cached_bounds is None:
            shape = self.shape
            if isinstance(shape, Point):
                bounds = Rect(int(shape.x), int(shape.y), 1, 1)
            else:
                bounds = shape.bounding_rect()
            self._cached_bounds = bounds
        return self._cached_bounds

    def hit(self, point: Point) -> bool:
        """True if selecting ``point`` with the mouse picks this object."""
        shape = self.shape
        if isinstance(shape, Point):
            return shape.distance_to(point) <= 3.0
        if isinstance(shape, Circle):
            return shape.contains_point(point)
        if isinstance(shape, Polygon):
            return shape.contains_point(point)
        # Polylines are picked when the point is near any segment.
        return _near_polyline(shape, point, tolerance=3.0)


def _near_polyline(line: PolyLine, point: Point, tolerance: float) -> bool:
    for a, b in zip(line.points, line.points[1:]):
        if _point_segment_distance(point, a, b) <= tolerance:
            return True
    return False


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        return p.distance_to(a)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return p.distance_to(Point(ax + t * dx, ay + t * dy))
