"""A uniform-grid spatial index over graphics objects.

Large images — the paper's examples include road maps and engineering
designs — may carry many labelled objects.  Hit-testing and
"which labels fall inside this view" queries would be linear scans
without an index; the grid keeps both proportional to the query
region's size.
"""

from __future__ import annotations

from collections import defaultdict

from repro.images.geometry import Point, Rect
from repro.images.graphics import GraphicsObject


class SpatialGrid:
    """Buckets graphics objects by the grid cells their bounds touch."""

    def __init__(self, bounds: Rect, cell_size: int = 128) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive: {cell_size}")
        self._bounds = bounds
        self._cell = cell_size
        self._cells: dict[tuple[int, int], list[GraphicsObject]] = defaultdict(list)
        self._count = 0

    @classmethod
    def for_objects(
        cls, bounds: Rect, objects: list[GraphicsObject], cell_size: int = 128
    ) -> "SpatialGrid":
        """Build an index containing ``objects``."""
        grid = cls(bounds, cell_size)
        for obj in objects:
            grid.insert(obj)
        return grid

    def __len__(self) -> int:
        return self._count

    def _cell_range(self, rect: Rect) -> tuple[range, range]:
        cx0 = rect.x // self._cell
        cy0 = rect.y // self._cell
        cx1 = max(rect.x2 - 1, rect.x) // self._cell
        cy1 = max(rect.y2 - 1, rect.y) // self._cell
        return range(cx0, cx1 + 1), range(cy0, cy1 + 1)

    def insert(self, obj: GraphicsObject) -> None:
        """Add an object to every cell its bounding rectangle touches."""
        xs, ys = self._cell_range(obj.bounding_rect())
        for cx in xs:
            for cy in ys:
                self._cells[(cx, cy)].append(obj)
        self._count += 1

    def query_rect(self, rect: Rect) -> list[GraphicsObject]:
        """Objects whose bounds intersect ``rect`` (deduplicated, in
        insertion order within each cell)."""
        seen: set[int] = set()
        result: list[GraphicsObject] = []
        xs, ys = self._cell_range(rect)
        for cx in xs:
            for cy in ys:
                for obj in self._cells.get((cx, cy), ()):
                    if id(obj) not in seen and obj.bounding_rect().intersects(rect):
                        seen.add(id(obj))
                        result.append(obj)
        return result

    def query_point(self, point: Point) -> list[GraphicsObject]:
        """Objects whose shape is picked by ``point``."""
        probe = Rect(int(point.x), int(point.y), 1, 1)
        return [obj for obj in self.query_rect(probe) if obj.hit(point)]
