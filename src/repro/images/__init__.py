"""Image substrate: bitmaps, graphics objects, labels, views, miniatures.

The paper distinguishes two kinds of images — bitmaps and graphics
images — and attaches *labels* (text, voice, or invisible) to graphics
objects.  Two-dimensional browsing is done with *views* (rectangular
windows moved across a large image) and with *representations*
(miniatures): small stand-ins for a large image on which a view can be
defined before any of the full image's data is transferred.
"""

from repro.images.geometry import Circle, Point, PolyLine, Polygon, Rect
from repro.images.bitmap import Bitmap
from repro.images.graphics import GraphicsObject, Label, LabelKind
from repro.images.image import Image
from repro.images.canvas import Canvas
from repro.images.spatial import SpatialGrid
from repro.images.view import View
from repro.images.miniature import make_miniature

__all__ = [
    "Bitmap",
    "Canvas",
    "Circle",
    "GraphicsObject",
    "Image",
    "Label",
    "LabelKind",
    "Point",
    "PolyLine",
    "Polygon",
    "Rect",
    "SpatialGrid",
    "View",
    "make_miniature",
]
