"""Bitmaps: dense raster images backed by numpy arrays.

MINOS stored digitized images (x-rays, captured pages, maps) as large
bitmaps on the optical archiver.  We use 8-bit greyscale rasters, which
are cheap enough to synthesize procedurally at the sizes the benchmarks
need (up to 4096x4096) while still exhibiting the transfer-volume
behaviour the paper's *view* mechanism exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImageError
from repro.images.geometry import Rect


@dataclass
class Bitmap:
    """An 8-bit greyscale raster.

    Attributes
    ----------
    pixels:
        A 2-D ``uint8`` array of shape ``(height, width)``.
    """

    pixels: np.ndarray

    def __post_init__(self) -> None:
        if self.pixels.ndim != 2:
            raise ImageError(f"bitmap must be 2-D, got shape {self.pixels.shape}")
        if self.pixels.dtype != np.uint8:
            self.pixels = self.pixels.astype(np.uint8)

    @classmethod
    def blank(cls, width: int, height: int, fill: int = 0) -> "Bitmap":
        """Create a uniform bitmap of the given size."""
        if width <= 0 or height <= 0:
            raise ImageError(f"bitmap size must be positive: {width}x{height}")
        return cls(np.full((height, width), fill, dtype=np.uint8))

    @classmethod
    def from_function(cls, width: int, height: int, fn) -> "Bitmap":
        """Create a bitmap by evaluating ``fn(x_grid, y_grid)``.

        ``fn`` receives integer coordinate grids and must return an
        array broadcastable to ``(height, width)`` with values in
        ``[0, 255]``.
        """
        if width <= 0 or height <= 0:
            raise ImageError(f"bitmap size must be positive: {width}x{height}")
        ys, xs = np.mgrid[0:height, 0:width]
        values = np.clip(fn(xs, ys), 0, 255)
        return cls(values.astype(np.uint8))

    @property
    def width(self) -> int:
        """Width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def height(self) -> int:
        """Height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def rect(self) -> Rect:
        """Bounding rectangle anchored at the origin."""
        return Rect(0, 0, self.width, self.height)

    @property
    def nbytes(self) -> int:
        """Storage size in bytes (1 byte per pixel)."""
        return int(self.pixels.nbytes)

    def crop(self, rect: Rect) -> "Bitmap":
        """Return the sub-bitmap covered by ``rect``.

        Raises
        ------
        ImageError
            If ``rect`` does not lie entirely within the bitmap.
        """
        if not self.rect.contains_rect(rect):
            raise ImageError(f"crop rect {rect} exceeds bitmap {self.rect}")
        return Bitmap(self.pixels[rect.y : rect.y2, rect.x : rect.x2].copy())

    def paste(self, other: "Bitmap", x: int, y: int) -> None:
        """Copy ``other`` into this bitmap with top-left corner at (x, y)."""
        target = Rect(x, y, other.width, other.height)
        if not self.rect.contains_rect(target):
            raise ImageError(f"paste rect {target} exceeds bitmap {self.rect}")
        self.pixels[y : y + other.height, x : x + other.width] = other.pixels

    def downsample(self, factor: int) -> "Bitmap":
        """Block-mean downsample by an integer ``factor``.

        Trailing rows/columns that do not fill a complete block are
        dropped, which matches how a miniature generator would quantise
        a large capture.
        """
        if factor <= 0:
            raise ImageError(f"downsample factor must be positive: {factor}")
        if factor == 1:
            return Bitmap(self.pixels.copy())
        h = (self.height // factor) * factor
        w = (self.width // factor) * factor
        if h == 0 or w == 0:
            raise ImageError(
                f"bitmap {self.width}x{self.height} too small for factor {factor}"
            )
        blocks = self.pixels[:h, :w].reshape(h // factor, factor, w // factor, factor)
        means = blocks.mean(axis=(1, 3))
        return Bitmap(means.astype(np.uint8))

    def equals(self, other: "Bitmap") -> bool:
        """True if both bitmaps have identical pixels."""
        return (
            self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def copy(self) -> "Bitmap":
        """Return an independent copy."""
        return Bitmap(self.pixels.copy())
