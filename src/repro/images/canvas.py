"""Rasterisation and compositing.

The :class:`Canvas` renders graphics objects onto a raster and
implements the two page-compositing semantics the paper defines:

* **transparency** — drawn pixels of the new page appear *on top of*
  the previous content, everything else shows through;
* **overwrite** — "the bitmaps, lines, and shades of the overwrite
  image replace whatever existed in the previous page but they leave
  anything else intact".

Both reduce to masked assignment of the newly drawn pixels; they differ
in what the caller does with the accumulated state (a transparency can
later be peeled off, an overwrite is destructive).
"""

from __future__ import annotations

import numpy as np

from repro.images.bitmap import Bitmap
from repro.images.geometry import Circle, Point, PolyLine, Polygon, Rect
from repro.images.graphics import GraphicsObject


class Canvas:
    """A mutable raster with drawing and compositing operations."""

    def __init__(self, width: int, height: int, background: int = 0) -> None:
        self._bitmap = Bitmap.blank(width, height, fill=background)
        self._background = background

    @classmethod
    def from_bitmap(cls, bitmap: Bitmap) -> "Canvas":
        """Create a canvas initialised with a copy of ``bitmap``."""
        canvas = cls(bitmap.width, bitmap.height)
        canvas._bitmap = bitmap.copy()
        return canvas

    @property
    def width(self) -> int:
        """Canvas width in pixels."""
        return self._bitmap.width

    @property
    def height(self) -> int:
        """Canvas height in pixels."""
        return self._bitmap.height

    @property
    def pixels(self) -> np.ndarray:
        """The underlying pixel array (mutable)."""
        return self._bitmap.pixels

    def snapshot(self) -> Bitmap:
        """An independent copy of the current raster."""
        return self._bitmap.copy()

    # ------------------------------------------------------------------
    # drawing primitives
    # ------------------------------------------------------------------

    def draw(self, obj: GraphicsObject) -> None:
        """Rasterise one graphics object."""
        shape = obj.shape
        if isinstance(shape, Point):
            self._set_pixel(int(shape.x), int(shape.y), obj.intensity)
        elif isinstance(shape, PolyLine):
            for a, b in zip(shape.points, shape.points[1:]):
                self._draw_line(a, b, obj.intensity)
        elif isinstance(shape, Polygon):
            if obj.filled:
                self._fill_polygon(shape, obj.intensity)
            pts = list(shape.points) + [shape.points[0]]
            for a, b in zip(pts, pts[1:]):
                self._draw_line(a, b, obj.intensity)
        elif isinstance(shape, Circle):
            self._draw_circle(shape, obj.intensity, obj.filled)

    def draw_all(self, objects: list[GraphicsObject]) -> None:
        """Rasterise a list of graphics objects in order."""
        for obj in objects:
            self.draw(obj)

    # ------------------------------------------------------------------
    # compositing
    # ------------------------------------------------------------------

    def superimpose(self, overlay: Bitmap, transparent: int = 0) -> np.ndarray:
        """Composite ``overlay`` on top, treating ``transparent`` pixels
        as see-through.  Returns the boolean mask of replaced pixels.
        """
        mask = overlay.pixels != transparent
        self._bitmap.pixels[mask] = overlay.pixels[mask]
        return mask

    def overwrite(self, overlay: Bitmap, transparent: int = 0) -> np.ndarray:
        """Apply overwrite-page semantics.

        Identical masked assignment to :meth:`superimpose`; kept as a
        separate method because the trace and the presentation manager
        distinguish the two page kinds.
        """
        return self.superimpose(overlay, transparent=transparent)

    def changed_fraction(self, before: Bitmap) -> float:
        """Fraction of pixels that differ from ``before``."""
        diff = self._bitmap.pixels != before.pixels
        return float(diff.mean())

    # ------------------------------------------------------------------
    # low-level rasterisation
    # ------------------------------------------------------------------

    def _set_pixel(self, x: int, y: int, intensity: int) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self._bitmap.pixels[y, x] = intensity

    def _draw_line(self, a: Point, b: Point, intensity: int) -> None:
        """Bresenham-style line drawing via dense interpolation."""
        steps = int(max(abs(b.x - a.x), abs(b.y - a.y))) + 1
        xs = np.linspace(a.x, b.x, steps).round().astype(int)
        ys = np.linspace(a.y, b.y, steps).round().astype(int)
        valid = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        self._bitmap.pixels[ys[valid], xs[valid]] = intensity

    def _draw_circle(self, circle: Circle, intensity: int, filled: bool) -> None:
        bounds = circle.bounding_rect().intersection(
            Rect(0, 0, self.width, self.height)
        )
        if bounds is None:
            return
        ys, xs = np.mgrid[bounds.y : bounds.y2, bounds.x : bounds.x2]
        dist = np.hypot(xs - circle.center.x, ys - circle.center.y)
        if filled:
            mask = dist <= circle.radius
        else:
            mask = np.abs(dist - circle.radius) <= 0.75
        region = self._bitmap.pixels[bounds.y : bounds.y2, bounds.x : bounds.x2]
        region[mask] = intensity

    def _fill_polygon(self, polygon: Polygon, intensity: int) -> None:
        bounds = polygon.bounding_rect().intersection(
            Rect(0, 0, self.width, self.height)
        )
        if bounds is None:
            return
        for y in range(bounds.y, bounds.y2):
            crossings = _scanline_crossings(polygon, y + 0.5)
            for x0, x1 in crossings:
                xa = max(int(np.ceil(x0)), bounds.x)
                xb = min(int(np.floor(x1)) + 1, bounds.x2)
                if xa < xb:
                    self._bitmap.pixels[y, xa:xb] = intensity


def _scanline_crossings(polygon: Polygon, y: float) -> list[tuple[float, float]]:
    """Pairs of x-intersections of the polygon's edges with a scanline."""
    xs: list[float] = []
    pts = polygon.points
    j = len(pts) - 1
    for i in range(len(pts)):
        yi, yj = pts[i].y, pts[j].y
        if (yi > y) != (yj > y):
            xi, xj = pts[i].x, pts[j].x
            xs.append(xi + (y - yi) * (xj - xi) / (yj - yi))
        j = i
    xs.sort()
    return list(zip(xs[0::2], xs[1::2]))


def render_image(image) -> Bitmap:
    """Rasterise a full :class:`~repro.images.image.Image`.

    The bitmap (if any) forms the background; graphics objects are
    drawn on top.  Text labels are not rasterised — the screen reports
    them through DISPLAY_LABEL trace events instead, mirroring how the
    original system drew text with a font engine the raster model does
    not reproduce.
    """
    if image.bitmap is not None:
        canvas = Canvas.from_bitmap(image.bitmap)
    else:
        canvas = Canvas(image.width, image.height)
    canvas.draw_all(image.graphics)
    return canvas.snapshot()
