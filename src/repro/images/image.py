"""The image unit stored in a multimedia object's image part.

An :class:`Image` may carry a bitmap, graphics objects, or both, and
may itself be a *representation* (miniature) of another image — in
which case views defined on it are executed against the source image's
data on the server, never against the miniature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ImageError
from repro.ids import ImageId
from repro.images.bitmap import Bitmap
from repro.images.geometry import Point, Rect
from repro.images.graphics import GraphicsObject, Label


@dataclass
class Image:
    """A bitmap and/or graphics image.

    Attributes
    ----------
    image_id:
        Identifier unique within the owning object (and used as the
        archiver data tag).
    width, height:
        Logical size in pixels.  When a bitmap is present it must match.
    bitmap:
        Optional raster content.
    graphics:
        Graphics objects drawn on top of (or instead of) the bitmap.
    is_representation:
        True when this image is a miniature standing in for another.
    source_image_id:
        For representations, the identifier of the full image.
    scale:
        For representations, the integer downsample factor relative to
        the source image.
    """

    image_id: ImageId
    width: int
    height: int
    bitmap: Bitmap | None = None
    graphics: list[GraphicsObject] = field(default_factory=list)
    is_representation: bool = False
    source_image_id: ImageId | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ImageError(f"image size must be positive: {self.width}x{self.height}")
        if self.bitmap is not None and (
            self.bitmap.width != self.width or self.bitmap.height != self.height
        ):
            raise ImageError(
                f"bitmap {self.bitmap.width}x{self.bitmap.height} does not match "
                f"image {self.width}x{self.height}"
            )
        if self.is_representation and self.source_image_id is None:
            raise ImageError("a representation must name its source image")

    @property
    def rect(self) -> Rect:
        """Full-image rectangle anchored at the origin."""
        return Rect(0, 0, self.width, self.height)

    @property
    def nbytes(self) -> int:
        """Approximate storage size: bitmap bytes plus graphics records.

        Each graphics object is costed at a flat 64 bytes plus its label
        text, which approximates a compact vector encoding.
        """
        total = self.bitmap.nbytes if self.bitmap is not None else 0
        for obj in self.graphics:
            total += 64
            if obj.label is not None:
                total += len(obj.label.text)
                if obj.label.voice is not None:
                    total += obj.label.voice.nbytes
        return total

    def labelled_objects(self) -> list[GraphicsObject]:
        """All graphics objects that carry a label."""
        return [g for g in self.graphics if g.label is not None]

    def voice_labelled_objects(self) -> list[GraphicsObject]:
        """All graphics objects whose label is voice."""
        return [
            g
            for g in self.graphics
            if g.label is not None and g.label.kind.is_voice
        ]

    def find_object(self, name: str) -> GraphicsObject:
        """Look up a graphics object by name.

        Raises
        ------
        ImageError
            If no object has that name.
        """
        for obj in self.graphics:
            if obj.name == name:
                return obj
        raise ImageError(f"image {self.image_id} has no graphics object {name!r}")

    def objects_matching_label(self, pattern: str) -> list[GraphicsObject]:
        """Objects whose label text contains ``pattern`` (case-insensitive).

        This backs the paper's "highlight the objects in which this
        pattern appears within their label" facility.
        """
        return [
            g
            for g in self.graphics
            if g.label is not None and g.label.matches(pattern)
        ]

    def object_at(self, point: Point) -> GraphicsObject | None:
        """The topmost graphics object picked by a mouse click at ``point``."""
        for obj in reversed(self.graphics):
            if obj.hit(point):
                return obj
        return None

    def labels_within(self, rect: Rect) -> list[Label]:
        """Labels whose designer position lies inside ``rect``.

        Used by moving views to decide which voice labels to play.
        """
        return [
            g.label
            for g in self.graphics
            if g.label is not None and rect.contains_point(g.label.position)
        ]
