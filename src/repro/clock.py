"""Simulated wall clock.

All time-dependent behaviour in the library (voice playback, process
simulation, tours, disk service times, network transfers) advances a
shared :class:`SimClock` instead of reading the host's real time.  This
makes every scenario deterministic and lets benchmarks measure *modelled*
time separately from host CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """A monotonically advancing simulated clock, in seconds.

    The clock never goes backwards: :meth:`advance` rejects negative
    deltas and :meth:`advance_to` ignores targets in the past.
    """

    _now: float = 0.0
    _advances: int = field(default=0, repr=False)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation."""
        return self._now

    @property
    def advances(self) -> int:
        """Number of times the clock has been advanced (for diagnostics)."""
        return self._advances

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Raises
        ------
        ValueError
            If ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        self._advances += 1
        return self._now

    def reset(self) -> None:
        """Return the clock to time zero for a fresh scenario.

        The one sanctioned way *backwards*: a simulation harness that
        replays many seeded scenarios (``repro.sim``) reuses one clock
        object across runs, and each run must start from the same
        origin for its timeline to be comparable with a replay's.
        """
        self._now = 0.0
        self._advances = 0

    def advance_to(self, target: float) -> float:
        """Advance the clock to ``target`` if it lies in the future.

        A target at or before the current time leaves the clock
        unchanged, mirroring how an event-driven simulator treats
        already-elapsed deadlines.
        """
        if target > self._now:
            self._now = target
            self._advances += 1
        return self._now
