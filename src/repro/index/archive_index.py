"""The archive-wide symmetric content index.

:class:`ArchiveIndex` is the per-object ``TextSearchIndex`` access
method lifted to the whole archive: one sharded inverted index mapping
terms to ``(object_id, channel, position)`` postings, where the channel
is ``text`` or ``voice`` and the position is a character offset or a
time in seconds.  It is built at insertion time (the archiver feeds it
from :meth:`Archiver.store`) and extended at idle time (recognition
sweeps feed the voice channel through
:meth:`Archiver.attach_recognition`), so browse-time queries never scan
the archive — the paper's Section 5 design point, made to hold at
archive scale.

Consistency with re-recognition follows the archiver's version tokens:
voice postings carry the version current when they were indexed, and a
posting is *live* only while its version matches the latest voice
indexing of its object.  Stale postings are filtered on every read and
physically dropped by idle-time compaction, so a re-recognized object
never serves stale utterances — with or without compaction.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

from repro.errors import QueryError
from repro.ids import ObjectId
from repro.index.lsm import CompactionResult, IndexShard, Segment
from repro.index.metrics import IndexMetrics
from repro.index.planner import (
    Node,
    contains_not,
    evaluate,
    leaf_terms,
    parse_query,
    terms_query,
)
from repro.index.postings import BOTH, VOICE, Posting, validate_channel
from repro.index.sharding import HashRing
from repro.obs.context import bind as bind_span
from repro.obs.context import current as current_span
from repro.obs.spans import SpanKind as ObsSpanKind

RawPosting = tuple[str, str, float, int]  # (term, channel, position, ordinal)


class ArchiveIndex:
    """Sharded LSM inverted index over every archived object.

    Parameters
    ----------
    n_shards:
        Number of independent LSM shards; terms are spread over them by
        consistent hashing.
    memtable_budget_bytes:
        Per-shard memtable flush threshold.
    metrics:
        Optional :class:`IndexMetrics` (a private one is created
        otherwise).
    parallel_lookup:
        Look terms up across shards concurrently when a query needs
        more than one term.  Results are identical either way.
    """

    def __init__(
        self,
        n_shards: int = 4,
        memtable_budget_bytes: int = 64 * 1024,
        replicas: int = 64,
        metrics: IndexMetrics | None = None,
        parallel_lookup: bool = True,
        fault_plan=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"index needs at least one shard: {n_shards}")
        self.metrics = metrics if metrics is not None else IndexMetrics()
        self._ring = HashRing(list(range(n_shards)), replicas=replicas)
        self._shards = {
            shard_id: IndexShard(
                shard_id,
                memtable_budget_bytes=memtable_budget_bytes,
                on_flush=self._record_flush,
                fault_plan=fault_plan,
            )
            for shard_id in range(n_shards)
        }
        self._parallel = parallel_lookup
        self._executor: ThreadPoolExecutor | None = None
        #: Optional span recorder (set by the owning archiver/frontend):
        #: queries emit an ``index:query`` span with one ``index:shard``
        #: child per term lookup, fanned out across executor threads.
        self.obs = None
        # Object tables: storage ordinal (insertion order, which is
        # storage order on the append-only platter) and the latest
        # voice-channel indexing version per object.
        self._ordinals: dict[ObjectId, int] = {}
        self._voice_version: dict[ObjectId, int] = {}
        self._lock = threading.Lock()

    def _record_flush(self, shard_id: int, segment: Segment) -> None:
        self.metrics.on_flush(shard_id, segment.posting_count, segment.nbytes)

    # ------------------------------------------------------------------
    # build side
    # ------------------------------------------------------------------

    def insert_object(
        self,
        object_id: ObjectId,
        postings: Iterable[RawPosting],
        version: int = 1,
    ) -> int:
        """Index a freshly archived object; returns postings added.

        ``postings`` is the insertion-time extraction
        (:func:`repro.formatter.archive.archive_postings`).  The object
        is assigned the next storage ordinal.
        """
        with self._lock:
            if object_id not in self._ordinals:
                self._ordinals[object_id] = len(self._ordinals)
            self._voice_version.setdefault(object_id, version)
        added = self._add_postings(object_id, postings, version)
        self.metrics.on_insert(object_id, "both", added)
        return added

    def update_voice(
        self,
        object_id: ObjectId,
        postings: Iterable[RawPosting],
        version: int,
    ) -> int:
        """Re-index the voice channel of an object at a new version.

        ``postings`` must be the object's *complete* current voice
        posting set (insertion-time utterances plus the merged
        recognition side table): bumping the version retires every
        voice posting of an older version.

        Raises
        ------
        QueryError
            If the object was never inserted.
        """
        with self._lock:
            if object_id not in self._ordinals:
                raise QueryError(
                    f"cannot reindex voice of unindexed object {object_id}"
                )
            if version < self._voice_version.get(object_id, 0):
                return 0  # stale update raced a newer reindex
            self._voice_version[object_id] = version
        added = self._add_postings(
            object_id, postings, version, voice_only=True
        )
        self.metrics.on_voice_reindex(object_id, added, version)
        return added

    def _add_postings(
        self,
        object_id: ObjectId,
        postings: Iterable[RawPosting],
        version: int,
        voice_only: bool = False,
    ) -> int:
        added = 0
        for term, channel, position, ordinal in postings:
            if voice_only and channel != VOICE:
                continue
            posting = Posting(
                object_id=object_id,
                channel=channel,
                position=position,
                ordinal=ordinal,
                version=version,
            )
            self._shards[self._ring.shard_for(term)].add(term, posting)
            added += 1
        return added

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def _live(self, posting: Posting) -> bool:
        if posting.channel != VOICE:
            return True  # platter text is write-once, never superseded
        # Lock-free read: dict.get is atomic under the GIL and the
        # stored version is monotone, so the worst case is observing a
        # version one update old — the same race any reindex that lands
        # just after the lookup would win anyway.
        latest = self._voice_version.get(posting.object_id, posting.version)
        return posting.version == latest

    # ------------------------------------------------------------------
    # query side
    # ------------------------------------------------------------------

    def lookup(self, terms: set[str]) -> dict[str, list[Posting]]:
        """Live postings of every term, looked up shard-parallel.

        The ambient span context is captured *here*, on the submitting
        thread, and handed to each shard lookup explicitly — executor
        threads have their own (empty) ambient context, so the fan-out
        would otherwise orphan the per-shard spans.
        """
        term_list = sorted(terms)
        parent = current_span()
        if self._parallel and len(term_list) > 1:
            executor = self._ensure_executor()
            futures = {
                term: executor.submit(self._lookup_one, term, parent)
                for term in term_list
            }
            return {term: future.result() for term, future in futures.items()}
        return {term: self._lookup_one(term, parent) for term in term_list}

    def _lookup_one(self, term: str, span_parent=None) -> list[Posting]:
        shard_id = self._ring.shard_for(term)
        start = time.perf_counter()
        postings = self._shards[shard_id].postings(term, live=self._live)
        elapsed = time.perf_counter() - start
        self.metrics.on_shard_lookup(shard_id, term, elapsed)
        if self.obs is not None:
            now = self.obs.now()
            self.obs.emit(
                span_parent, "index:shard", ObsSpanKind.INDEX,
                now, now + elapsed, shard=shard_id, term=term,
                postings=len(postings),
            )
        return postings

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=min(8, len(self._shards)),
                        thread_name_prefix="index-shard",
                    )
        return self._executor

    def query(self, query: str | Node, channel: str = BOTH) -> list[ObjectId]:
        """Objects matching a term/phrase/boolean query, in storage order.

        Raises
        ------
        QueryError
            On malformed queries.
        ValueError
            On an unknown channel filter.
        """
        validate_channel(channel)
        node = parse_query(query) if isinstance(query, str) else query
        text = query if isinstance(query, str) else repr(node)
        active = None
        if self.obs is not None:
            active = self.obs.start(
                current_span(), "index:query", ObsSpanKind.INDEX,
                self.obs.now(), query=text, channel=channel,
            )
        start = time.perf_counter()
        if active is not None:
            with bind_span(active.context):
                matched = self._evaluate(node, channel)
        else:
            matched = self._evaluate(node, channel)
        ordered = self.in_storage_order(matched)
        elapsed = time.perf_counter() - start
        self.metrics.on_query(text, channel, len(ordered), elapsed)
        if active is not None:
            active.finish(active.start_s + elapsed, results=len(ordered))
        return ordered

    def search_terms(
        self, terms: list[str], channel: str = BOTH
    ) -> set[ObjectId]:
        """Objects containing *all* the given terms (conjunctive).

        Raises
        ------
        QueryError
            If no terms are given.
        """
        validate_channel(channel)
        active = None
        if self.obs is not None:
            active = self.obs.start(
                current_span(), "index:query", ObsSpanKind.INDEX,
                self.obs.now(), query=" AND ".join(terms), channel=channel,
            )
        start = time.perf_counter()
        if active is not None:
            with bind_span(active.context):
                matched = self._evaluate(terms_query(terms), channel)
        else:
            matched = self._evaluate(terms_query(terms), channel)
        elapsed = time.perf_counter() - start
        self.metrics.on_query(
            " AND ".join(terms), channel, len(matched), elapsed
        )
        if active is not None:
            active.finish(active.start_s + elapsed, results=len(matched))
        return matched

    def _evaluate(self, node: Node, channel: str) -> set[ObjectId]:
        postings_by_term = self.lookup(leaf_terms(node))
        # The full id set (O(archive)) is only materialized when the
        # query actually negates — everything else stays ~flat in
        # archive size.
        universe = self.universe() if contains_not(node) else set()
        return evaluate(node, channel, postings_by_term, universe)

    def universe(self) -> set[ObjectId]:
        """Every indexed object id."""
        with self._lock:
            return set(self._ordinals)

    def in_storage_order(self, object_ids: Iterable[ObjectId]) -> list[ObjectId]:
        """Sort ids by storage ordinal — no archive scan required.

        Ids the index has never seen (possible only if a caller mixes
        indexes) sort last, deterministically.
        """
        with self._lock:
            ordinals = self._ordinals
            fallback = len(ordinals)
            return sorted(
                object_ids,
                key=lambda oid: (ordinals.get(oid, fallback), str(oid)),
            )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Force every shard's memtable into a segment; returns flushes."""
        return sum(
            1 for shard in self._shards.values() if shard.flush() is not None
        )

    def compact(self) -> list[CompactionResult]:
        """Idle-time compaction of every shard.

        Merges each shard's segments into one and physically drops
        postings superseded by newer voice versions.  Queries before,
        during and after return identical results — liveness is also
        enforced at read time.
        """
        results = []
        for shard in self._shards.values():
            result = shard.compact(self._live)
            self.metrics.on_compaction(
                result.shard_id, result.segments_merged, result.postings_dropped
            )
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def drop_orphans(self) -> int:
        """Discard half-flushed segment runs on every shard.

        Returns the total number of orphan runs dropped — the LSM
        manifest duty of reopen.
        """
        return sum(shard.recover() for shard in self._shards.values())

    def reset(self) -> None:
        """Drop all postings and object tables for a rebuild from scratch.

        Crash recovery reconstructs the index by re-inserting every
        recovered object's postings; configuration (shards, budgets,
        metrics, fault plan) is preserved.
        """
        for shard in self._shards.values():
            shard.reset()
        with self._lock:
            self._ordinals.clear()
            self._voice_version.clear()

    @property
    def orphan_segments(self) -> int:
        """Half-flushed runs across all shards (never readable)."""
        return sum(shard.orphan_segments for shard in self._shards.values())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ordinals)

    def __contains__(self, object_id: ObjectId) -> bool:
        with self._lock:
            return object_id in self._ordinals

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def segment_count(self) -> int:
        """Immutable segments across all shards."""
        return sum(shard.segment_count for shard in self._shards.values())

    @property
    def posting_count(self) -> int:
        """Stored postings across all shards (live or not)."""
        return sum(shard.posting_count for shard in self._shards.values())

    @property
    def nbytes(self) -> int:
        """Accounted index size across all shards."""
        return sum(shard.nbytes for shard in self._shards.values())

    def voice_version_of(self, object_id: ObjectId) -> int:
        """Latest voice-channel indexing version of an object (0 if none)."""
        with self._lock:
            return self._voice_version.get(object_id, 0)
