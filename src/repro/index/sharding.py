"""Consistent-hash term sharding (re-export).

Terms are spread over index shards with a consistent hash ring so that
(a) a term's shard is a pure function of the term — every inserter and
every query planner agrees without coordination — and (b) changing the
shard count moves only ~1/n of the vocabulary, which is what lets a
grown archive re-shard incrementally instead of rebuilding.

The ring itself now lives in :mod:`repro.cluster.placement`, where the
cluster subsystem reuses it to place whole objects on archiver nodes;
this module re-exports it so existing imports — and, because the
virtual-point labels are unchanged, existing shard *assignments* —
stay byte-identical (see ``tests/test_cluster.py::TestShardingBackCompat``).
"""

from __future__ import annotations

from repro.cluster.placement import HashRing, stable_hash

__all__ = ["HashRing", "stable_hash"]
