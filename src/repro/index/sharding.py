"""Consistent-hash term sharding.

Terms are spread over index shards with a consistent hash ring so that
(a) a term's shard is a pure function of the term — every inserter and
every query planner agrees without coordination — and (b) changing the
shard count moves only ~1/n of the vocabulary, which is what lets a
grown archive re-shard incrementally instead of rebuilding.

Hashing is deliberately *stable* (blake2b, not the salted builtin
``hash``) so shard assignment — and therefore segment layouts, metrics
and traces — are reproducible across processes and runs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hash ring mapping terms to shard ids.

    Parameters
    ----------
    shard_ids:
        The shard identifiers to place on the ring.
    replicas:
        Virtual nodes per shard; more replicas → smoother balance.
    """

    def __init__(self, shard_ids: list[int], replicas: int = 64) -> None:
        if not shard_ids:
            raise ValueError("hash ring needs at least one shard")
        if replicas < 1:
            raise ValueError(f"replicas must be positive: {replicas}")
        points: list[tuple[int, int]] = []
        for shard_id in shard_ids:
            for replica in range(replicas):
                points.append((stable_hash(f"shard:{shard_id}:{replica}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]
        self._shard_ids = sorted(shard_ids)

    @property
    def shard_ids(self) -> list[int]:
        """All shard ids on the ring, sorted."""
        return list(self._shard_ids)

    def shard_for(self, term: str) -> int:
        """The shard owning ``term`` (first ring point at or after its hash)."""
        index = bisect_right(self._points, stable_hash(term))
        if index == len(self._points):
            index = 0
        return self._owners[index]
