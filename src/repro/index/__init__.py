"""The archive-wide symmetric content index (``repro.index``).

The paper's Section 5 architecture recognizes voice at insertion or
idle time so that browse-time search "uses the same access methods as
in text".  This package is that access method at archive scale: a
sharded, LSM-shaped inverted index mapping terms to
``(object_id, channel, position)`` postings — channel ``text`` or
``voice``, position a character offset or a time in seconds — built by
insertion hooks in the archiver, extended by idle-time recognition
sweeps, compacted at idle time, and serving term/phrase/boolean queries
with channel filters so query cost stays ~flat while archive size
grows.  See ``docs/SEARCH.md``.
"""

from repro.index.archive_index import ArchiveIndex, RawPosting
from repro.index.lsm import CompactionResult, IndexShard, Memtable, Segment
from repro.index.metrics import IndexMetrics, IndexMetricsSnapshot
from repro.index.planner import (
    AndNode,
    NotNode,
    OrNode,
    PhraseNode,
    TermNode,
    contains_not,
    evaluate,
    leaf_terms,
    matches_units,
    parse_query,
    terms_query,
)
from repro.index.postings import BOTH, TEXT, UNIT_GAP, VOICE, Posting
from repro.index.sharding import HashRing, stable_hash

__all__ = [
    "AndNode",
    "ArchiveIndex",
    "BOTH",
    "CompactionResult",
    "HashRing",
    "IndexMetrics",
    "IndexMetricsSnapshot",
    "IndexShard",
    "Memtable",
    "NotNode",
    "OrNode",
    "PhraseNode",
    "Posting",
    "RawPosting",
    "Segment",
    "TEXT",
    "TermNode",
    "UNIT_GAP",
    "VOICE",
    "contains_not",
    "evaluate",
    "leaf_terms",
    "matches_units",
    "parse_query",
    "stable_hash",
    "terms_query",
]
