"""LSM-shaped storage of one index shard.

Insertion-time indexing must never block queries for long, and the
paper moves all expensive work (recognition, index building) to
insertion or idle time.  Each shard therefore has the standard
log-structured merge shape:

* a mutable **memtable** absorbing inserts in O(1);
* immutable sorted **segments**, flushed whenever the memtable exceeds
  its byte budget;
* idle-time **compaction** that merges all segments into one and drops
  postings superseded by the archiver's version tokens.

Queries read the memtable plus every segment (newest first) and filter
dead postings on the way out, so correctness never depends on when
compaction last ran — compaction only reclaims space and shortens the
read path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import TransientIOError
from repro.faults.registry import LSM_COMPACT_SWAP, LSM_FLUSH
from repro.index.postings import Posting

LiveFn = Callable[[Posting], bool]


class Memtable:
    """Mutable term → postings map with byte accounting."""

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = {}
        self.nbytes = 0
        self.posting_count = 0

    def add(self, term: str, posting: Posting) -> None:
        """Absorb one posting."""
        bucket = self._postings.get(term)
        if bucket is None:
            bucket = self._postings[term] = []
            self.nbytes += len(term)
        bucket.append(posting)
        self.nbytes += posting.nbytes
        self.posting_count += 1

    def get(self, term: str) -> list[Posting]:
        """Postings of ``term`` in insertion order (empty if absent)."""
        return list(self._postings.get(term, ()))

    def items(self) -> Iterable[tuple[str, list[Posting]]]:
        return self._postings.items()

    def __len__(self) -> int:
        return self.posting_count


class Segment:
    """An immutable, term-sorted run of postings."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, postings: dict[str, Iterable[Posting]]) -> None:
        self.segment_id = next(Segment._ids)
        self._postings: dict[str, tuple[Posting, ...]] = {
            term: tuple(postings[term]) for term in sorted(postings)
        }
        self.posting_count = sum(len(p) for p in self._postings.values())
        self.nbytes = sum(
            len(term) + sum(p.nbytes for p in bucket)
            for term, bucket in self._postings.items()
        )

    def get(self, term: str) -> tuple[Posting, ...]:
        """Postings of ``term`` (empty if absent)."""
        return self._postings.get(term, ())

    def terms(self) -> list[str]:
        """All terms of the segment, sorted."""
        return list(self._postings)

    def items(self) -> Iterable[tuple[str, tuple[Posting, ...]]]:
        return self._postings.items()

    def __len__(self) -> int:
        return self.posting_count


@dataclass
class CompactionResult:
    """What one shard compaction accomplished."""

    shard_id: int
    segments_merged: int
    postings_dropped: int
    postings_kept: int


class IndexShard:
    """One shard: memtable + segments + compaction, thread-safe.

    The segment list doubles as the shard's **manifest**: a segment is
    visible to readers only once it is registered there, and
    registration happens *after* the segment run is fully built (the
    ``lsm.flush.segment`` fault site sits between the two).  A flush
    that dies in the gap leaves an orphan run — tracked in
    ``orphan_segments`` and discarded by :meth:`recover` on reopen —
    while the memtable keeps its postings, so a failed flush never
    loses or duplicates data.

    Parameters
    ----------
    shard_id:
        Identity on the hash ring.
    memtable_budget_bytes:
        Flush threshold; the memtable is flushed into a fresh segment
        as soon as its accounted size exceeds this budget.
    on_flush:
        Optional callback ``(shard_id, segment)`` fired after a flush.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` consulted at the
        ``lsm.flush.segment`` and ``lsm.compact.swap`` sites.
    """

    def __init__(
        self,
        shard_id: int,
        memtable_budget_bytes: int = 64 * 1024,
        on_flush: Callable[[int, Segment], None] | None = None,
        fault_plan=None,
    ) -> None:
        if memtable_budget_bytes <= 0:
            raise ValueError(
                f"memtable budget must be positive: {memtable_budget_bytes}"
            )
        self.shard_id = shard_id
        self._budget = memtable_budget_bytes
        self._memtable = Memtable()
        self._segments: list[Segment] = []
        self._orphans: list[Segment] = []
        self._on_flush = on_flush
        self._fault_plan = fault_plan
        self.flush_failures = 0
        self._lock = threading.Lock()

    def _fire(self, site: str) -> None:
        if self._fault_plan is not None:
            self._fault_plan.fire(site)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def add(self, term: str, posting: Posting) -> None:
        """Insert one posting, flushing the memtable if over budget.

        A *transient* flush failure is absorbed here: the posting is
        already durable in the memtable, so the flush simply retries at
        the next over-budget insert.  Crashes propagate.
        """
        flushed: Segment | None = None
        with self._lock:
            self._memtable.add(term, posting)
            if self._memtable.nbytes > self._budget:
                try:
                    flushed = self._flush_locked()
                except TransientIOError:
                    self.flush_failures += 1
        if flushed is not None and self._on_flush is not None:
            self._on_flush(self.shard_id, flushed)

    def flush(self) -> Segment | None:
        """Force the memtable into a segment (None if it was empty)."""
        with self._lock:
            flushed = self._flush_locked()
        if flushed is not None and self._on_flush is not None:
            self._on_flush(self.shard_id, flushed)
        return flushed

    def _flush_locked(self) -> Segment | None:
        if not len(self._memtable):
            return None
        # Build the run first ("write the segment file"), then register
        # it in the manifest.  A fault in the gap orphans the run; the
        # memtable is left intact so nothing is lost.
        segment = Segment(dict(self._memtable.items()))
        try:
            self._fire(LSM_FLUSH)
        except BaseException:
            self._orphans.append(segment)
            raise
        self._segments.append(segment)
        self._memtable = Memtable()
        return segment

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def postings(self, term: str, live: LiveFn | None = None) -> list[Posting]:
        """All live postings of ``term``, newest write first."""
        with self._lock:
            found: list[Posting] = list(self._memtable.get(term))
            for segment in reversed(self._segments):
                found.extend(segment.get(term))
        if live is None:
            return found
        return [posting for posting in found if live(posting)]

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self, live: LiveFn | None = None) -> CompactionResult:
        """Merge memtable + all segments into one, dropping dead postings.

        Safe to call at any time; queries running concurrently see
        either the old segment list or the merged one, never a torn
        state, and dead postings are filtered at read time anyway.
        """
        with self._lock:
            self._flush_locked()
            merged_from = len(self._segments)
            kept: dict[str, list[Posting]] = {}
            dropped = 0
            for segment in self._segments:
                for term, bucket in segment.items():
                    for posting in bucket:
                        if live is None or live(posting):
                            kept.setdefault(term, []).append(posting)
                        else:
                            dropped += 1
            # The swap is the commit point: a fault here leaves the old
            # segment list fully intact, so re-running compaction after
            # a crash converges to the same merged state (idempotent).
            self._fire(LSM_COMPACT_SWAP)
            if merged_from:
                self._segments = [Segment(kept)] if kept else []
            return CompactionResult(
                shard_id=self.shard_id,
                segments_merged=merged_from,
                postings_dropped=dropped,
                postings_kept=sum(len(b) for b in kept.values()),
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> int:
        """Discard orphan (half-flushed, unmanifested) segment runs.

        Returns the number of runs dropped.  Readers never saw them —
        :meth:`postings` walks only the manifest — so this is pure
        space reclamation, mirroring how a real LSM discards segment
        files absent from its manifest on reopen.
        """
        with self._lock:
            dropped = len(self._orphans)
            self._orphans.clear()
            return dropped

    def reset(self) -> None:
        """Drop all state (memtable, segments, orphans) for a rebuild."""
        with self._lock:
            self._memtable = Memtable()
            self._segments = []
            self._orphans.clear()

    @property
    def orphan_segments(self) -> int:
        """Half-flushed runs awaiting :meth:`recover` (never readable)."""
        with self._lock:
            return len(self._orphans)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Number of immutable segments currently on disk (modelled)."""
        with self._lock:
            return len(self._segments)

    @property
    def posting_count(self) -> int:
        """Total stored postings, live or not (memtable + segments)."""
        with self._lock:
            return len(self._memtable) + sum(
                len(segment) for segment in self._segments
            )

    @property
    def nbytes(self) -> int:
        """Accounted size of memtable + segments."""
        with self._lock:
            return self._memtable.nbytes + sum(
                segment.nbytes for segment in self._segments
            )
