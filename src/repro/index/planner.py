"""Query planning over the archive-wide index.

The planner answers term, phrase and boolean queries with channel
filters.  A query is parsed into a small AST; the planner then collects
every leaf term, looks each up in its shard (in parallel — consistent
hashing means the shard of a term is known without coordination), and
evaluates the AST over the returned posting sets.

The same AST can also be evaluated directly against an object's token
sequences (:func:`matches_units`).  That is the *scan oracle*: the
semantics of a query are defined by what a full scan of the rebuilt
objects would answer, and the property suite holds the index to exactly
that answer.

Grammar (keywords case-insensitive; adjacency is implicit AND)::

    expr   := and_expr ("OR" and_expr)*
    and_expr := unary ("AND"? unary)*
    unary  := "NOT" unary | atom
    atom   := "(" expr ")" | '"' phrase '"' | word
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError
from repro.ids import ObjectId
from repro.index.postings import BOTH, CHANNELS, Posting, channel_matches
from repro.text.search import tokenize

# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TermNode:
    """Leaf: one term occurs anywhere in the filtered channels."""

    term: str


@dataclass(frozen=True, slots=True)
class PhraseNode:
    """Leaf: the terms occur consecutively within one indexing unit."""

    terms: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class AndNode:
    parts: tuple


@dataclass(frozen=True, slots=True)
class OrNode:
    parts: tuple


@dataclass(frozen=True, slots=True)
class NotNode:
    part: object


Node = TermNode | PhraseNode | AndNode | OrNode | NotNode


def contains_not(node: Node) -> bool:
    """Whether the query negates anywhere (NOT needs the id universe)."""
    if isinstance(node, NotNode):
        return True
    if isinstance(node, (AndNode, OrNode)):
        return any(contains_not(part) for part in node.parts)
    return False


def leaf_terms(node: Node) -> set[str]:
    """Every distinct term the query needs postings for."""
    if isinstance(node, TermNode):
        return {node.term}
    if isinstance(node, PhraseNode):
        return set(node.terms)
    if isinstance(node, NotNode):
        return leaf_terms(node.part)  # type: ignore[arg-type]
    return set().union(*(leaf_terms(part) for part in node.parts))


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

_LEXEME = re.compile(r"\(|\)|\"[^\"]*\"|[\w'-]+")
_KEYWORDS = {"and", "or", "not"}


def parse_query(query: str) -> Node:
    """Parse a boolean/phrase query string into an AST.

    ``AND``/``OR``/``NOT`` (any case) are operators and cannot be
    searched as terms; quote them inside a phrase if needed.

    Raises
    ------
    QueryError
        On empty or malformed queries.
    """
    lexemes = _LEXEME.findall(query)
    if not lexemes:
        raise QueryError(f"query {query!r} contains no terms")
    parser = _Parser(lexemes, query)
    node = parser.expr()
    if not parser.at_end():
        raise QueryError(f"unexpected {parser.peek()!r} in query {query!r}")
    return node


class _Parser:
    def __init__(self, lexemes: list[str], source: str) -> None:
        self._lexemes = lexemes
        self._source = source
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._lexemes):
            return self._lexemes[self._pos]
        return None

    def at_end(self) -> bool:
        return self._pos >= len(self._lexemes)

    def _take(self) -> str:
        lexeme = self._lexemes[self._pos]
        self._pos += 1
        return lexeme

    def expr(self) -> Node:
        parts = [self.and_expr()]
        while (lex := self.peek()) is not None and lex.lower() == "or":
            self._take()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else OrNode(tuple(parts))

    def and_expr(self) -> Node:
        parts = [self.unary()]
        while (lex := self.peek()) is not None:
            if lex.lower() == "and":
                self._take()
                parts.append(self.unary())
            elif lex.lower() == "or" or lex == ")":
                break
            else:  # implicit AND
                parts.append(self.unary())
        return parts[0] if len(parts) == 1 else AndNode(tuple(parts))

    def unary(self) -> Node:
        lex = self.peek()
        if lex is not None and lex.lower() == "not":
            self._take()
            return NotNode(self.unary())
        return self.atom()

    def atom(self) -> Node:
        lex = self.peek()
        if lex is None:
            raise QueryError(f"query {self._source!r} ends unexpectedly")
        if lex == "(":
            self._take()
            node = self.expr()
            if self.peek() != ")":
                raise QueryError(f"unbalanced parentheses in {self._source!r}")
            self._take()
            return node
        if lex == ")":
            raise QueryError(f"unbalanced parentheses in {self._source!r}")
        self._take()
        if lex.startswith('"'):
            terms = [term for term, _ in tokenize(lex[1:-1])]
            if not terms:
                raise QueryError(f"empty phrase in query {self._source!r}")
            if len(terms) == 1:
                return TermNode(terms[0])
            return PhraseNode(tuple(terms))
        if lex.lower() in _KEYWORDS:
            raise QueryError(
                f"operator {lex!r} needs an operand in {self._source!r}"
            )
        return TermNode(lex.lower())


# ----------------------------------------------------------------------
# evaluation over posting sets (the index-served path)
# ----------------------------------------------------------------------


def evaluate(
    node: Node,
    channel: str,
    postings_by_term: dict[str, list[Posting]],
    universe: set[ObjectId],
) -> set[ObjectId]:
    """Objects satisfying ``node`` in ``channel``, from looked-up postings.

    ``postings_by_term`` must cover :func:`leaf_terms` of the node;
    postings are assumed already filtered for liveness but not for
    channel.  ``universe`` (all indexed objects) bounds ``NOT``.
    """
    if isinstance(node, TermNode):
        return {
            posting.object_id
            for posting in postings_by_term.get(node.term, ())
            if channel_matches(posting.channel, channel)
        }
    if isinstance(node, PhraseNode):
        return _phrase_objects(node.terms, channel, postings_by_term)
    if isinstance(node, AndNode):
        result: set[ObjectId] | None = None
        for part in node.parts:
            matched = evaluate(part, channel, postings_by_term, universe)
            result = matched if result is None else result & matched
            if not result:
                return set()
        return result or set()
    if isinstance(node, OrNode):
        result = set()
        for part in node.parts:
            result |= evaluate(part, channel, postings_by_term, universe)
        return result
    if isinstance(node, NotNode):
        return universe - evaluate(
            node.part, channel, postings_by_term, universe  # type: ignore[arg-type]
        )
    raise QueryError(f"unknown query node {node!r}")


def _phrase_objects(
    terms: tuple[str, ...],
    channel: str,
    postings_by_term: dict[str, list[Posting]],
) -> set[ObjectId]:
    """Objects where the terms occur at consecutive ordinals, per channel."""
    wanted = [ch for ch in CHANNELS if channel_matches(ch, channel)]
    # ordinals[(object, channel)] per phrase slot
    per_slot: list[dict[tuple[ObjectId, str], set[int]]] = []
    for term in terms:
        slots: dict[tuple[ObjectId, str], set[int]] = {}
        for posting in postings_by_term.get(term, ()):
            if posting.channel in wanted:
                slots.setdefault(
                    (posting.object_id, posting.channel), set()
                ).add(posting.ordinal)
        if not slots:
            return set()
        per_slot.append(slots)
    candidates = set(per_slot[0])
    for slots in per_slot[1:]:
        candidates &= set(slots)
    hits: set[ObjectId] = set()
    for key in candidates:
        object_id, _ = key
        if object_id in hits:
            continue
        first = per_slot[0][key]
        if any(
            all(start + offset in per_slot[offset][key]
                for offset in range(1, len(terms)))
            for start in first
        ):
            hits.add(object_id)
    return hits


# ----------------------------------------------------------------------
# evaluation over token units (the scan oracle)
# ----------------------------------------------------------------------


def matches_units(
    node: Node, channel: str, units: dict[str, list[list[str]]]
) -> bool:
    """Whether one object satisfies ``node``, from its token sequences.

    ``units`` maps each channel to the object's indexing units (one
    token list per text segment / image label / voice segment).  This
    is the reference semantics the index must reproduce.
    """
    wanted = [ch for ch in CHANNELS if channel_matches(ch, channel)]
    if isinstance(node, TermNode):
        return any(
            node.term in tokens for ch in wanted for tokens in units.get(ch, ())
        )
    if isinstance(node, PhraseNode):
        run = list(node.terms)
        n = len(run)
        for ch in wanted:
            for tokens in units.get(ch, ()):
                if any(
                    tokens[i : i + n] == run
                    for i in range(len(tokens) - n + 1)
                ):
                    return True
        return False
    if isinstance(node, AndNode):
        return all(matches_units(part, channel, units) for part in node.parts)
    if isinstance(node, OrNode):
        return any(matches_units(part, channel, units) for part in node.parts)
    if isinstance(node, NotNode):
        return not matches_units(node.part, channel, units)  # type: ignore[arg-type]
    raise QueryError(f"unknown query node {node!r}")


def terms_query(terms: list[str]) -> Node:
    """The conjunctive AST of a plain ``select(terms=[...])`` query.

    Each entry is parsed with the full grammar: a bare multi-word entry
    is an implicit AND of its words; adjacency requires quoting
    (``'"optical disk"'``); entries may be boolean expressions.

    Raises
    ------
    QueryError
        If no terms are given.
    """
    if not terms:
        raise QueryError("term search needs at least one term")
    parts = tuple(parse_query(term) for term in terms)
    return parts[0] if len(parts) == 1 else AndNode(parts)


__all__ = [
    "AndNode",
    "Node",
    "NotNode",
    "OrNode",
    "PhraseNode",
    "TermNode",
    "evaluate",
    "leaf_terms",
    "matches_units",
    "parse_query",
    "terms_query",
    "BOTH",
]
