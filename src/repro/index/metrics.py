"""Index observability: counters, per-shard histograms, trace events.

Section 5's claim — browse-time search at insertion-time cost — is only
checkable if the index reports what it does.  Every structural event
(insert, flush, compaction) and every query is counted, per-shard
lookup latencies go into :class:`repro.server.metrics.Histogram`
instances, and everything is mirrored into a
:class:`repro.trace.Trace` as ``INDEX_*`` / ``SEARCH_*`` events so the
existing trace tooling works on index activity unchanged.

Latencies here are *wall-clock seconds* of real index work — the index
is a real data structure, not a simulated device — which is exactly
what the C-SEARCH benchmark compares against the linear scan.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.trace import EventKind, Trace

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.server.metrics import Histogram, HistogramSnapshot


def _histogram() -> "Histogram":
    # Imported lazily: repro.index is a dependency of the formatter and
    # archiver modules, so it must not import repro.server at load time.
    from repro.server.metrics import Histogram

    return Histogram(min_value=1e-8, max_value=1e2)


@dataclass(frozen=True)
class IndexMetricsSnapshot:
    """Immutable point-in-time view of :class:`IndexMetrics`."""

    objects_indexed: int
    postings_indexed: int
    voice_reindexes: int
    flushes: int
    compactions: int
    segments_merged: int
    postings_dropped: int
    queries: int
    shard_lookups: int
    query_latency: "HistogramSnapshot"
    shard_latency: dict[int, "HistogramSnapshot"]


class IndexMetrics:
    """Thread-safe instrumentation for an :class:`ArchiveIndex`.

    Parameters
    ----------
    trace:
        Optional trace to mirror events into (a private one is created
        otherwise).  Trace timestamps are a monotone per-index sequence
        number — index operations happen outside any simulated session
        clock, but ordering is what trace consumers need.
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self.query_latency = _histogram()
        self._shard_latency: dict[int, "Histogram"] = {}
        self._objects_indexed = 0
        self._postings_indexed = 0
        self._voice_reindexes = 0
        self._flushes = 0
        self._compactions = 0
        self._segments_merged = 0
        self._postings_dropped = 0
        self._queries = 0
        self._shard_lookups = 0
        self._seq = 0
        self._lock = threading.Lock()

    def _tick(self) -> float:
        self._seq += 1
        return float(self._seq)

    # ------------------------------------------------------------------
    # build-side events
    # ------------------------------------------------------------------

    def on_insert(self, object_id, channel: str, postings: int) -> None:
        """Record one object's postings entering the index."""
        with self._lock:
            self._objects_indexed += 1
            self._postings_indexed += postings
            self.trace.record(
                self._tick(), EventKind.INDEX_INSERT,
                object=str(object_id), channel=channel, postings=postings,
            )

    def on_voice_reindex(self, object_id, postings: int, version: int) -> None:
        """Record a voice-channel reindex after (re-)recognition."""
        with self._lock:
            self._voice_reindexes += 1
            self._postings_indexed += postings
            self.trace.record(
                self._tick(), EventKind.INDEX_INSERT,
                object=str(object_id), channel="voice", postings=postings,
                version=version, reindex=True,
            )

    def on_flush(self, shard_id: int, postings: int, nbytes: int) -> None:
        """Record one memtable flush into an immutable segment."""
        with self._lock:
            self._flushes += 1
            self.trace.record(
                self._tick(), EventKind.INDEX_FLUSH,
                shard=shard_id, postings=postings, nbytes=nbytes,
            )

    def on_compaction(
        self, shard_id: int, segments_merged: int, postings_dropped: int
    ) -> None:
        """Record one shard compaction."""
        with self._lock:
            self._compactions += 1
            self._segments_merged += segments_merged
            self._postings_dropped += postings_dropped
            self.trace.record(
                self._tick(), EventKind.INDEX_COMPACT,
                shard=shard_id, segments_merged=segments_merged,
                postings_dropped=postings_dropped,
            )

    # ------------------------------------------------------------------
    # query-side events
    # ------------------------------------------------------------------

    def on_shard_lookup(self, shard_id: int, term: str, latency_s: float) -> None:
        """Record one term lookup against one shard."""
        with self._lock:
            self._shard_lookups += 1
            histogram = self._shard_latency.get(shard_id)
            if histogram is None:
                histogram = self._shard_latency[shard_id] = _histogram()
            self.trace.record(
                self._tick(), EventKind.SEARCH_SHARD,
                shard=shard_id, term=term, latency_s=latency_s,
            )
        histogram.record(latency_s)

    def on_query(
        self, query: str, channel: str, hits: int, latency_s: float
    ) -> None:
        """Record one index-served query."""
        self.query_latency.record(latency_s)
        with self._lock:
            self._queries += 1
            self.trace.record(
                self._tick(), EventKind.SEARCH_QUERY,
                query=query, channel=channel, hits=hits, latency_s=latency_s,
            )

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> IndexMetricsSnapshot:
        """A coherent immutable copy of all counters and histograms."""
        with self._lock:
            shard_latency = {
                shard_id: histogram.snapshot()
                for shard_id, histogram in self._shard_latency.items()
            }
            return IndexMetricsSnapshot(
                objects_indexed=self._objects_indexed,
                postings_indexed=self._postings_indexed,
                voice_reindexes=self._voice_reindexes,
                flushes=self._flushes,
                compactions=self._compactions,
                segments_merged=self._segments_merged,
                postings_dropped=self._postings_dropped,
                queries=self._queries,
                shard_lookups=self._shard_lookups,
                query_latency=self.query_latency.snapshot(),
                shard_latency=shard_latency,
            )
