"""Postings of the archive-wide symmetric content index.

A posting anchors one term occurrence inside one archived object, in
one *channel*: ``text`` (character offsets) or ``voice`` (times in
seconds).  This is :class:`repro.text.search.TextSearchIndex`'s
(term, position) access method lifted to the whole archive — the same
symmetric contract, with the object id and channel added so a single
index answers "which objects say *budget*, in speech, and where".

Besides the human-meaningful ``position``, every posting carries an
``ordinal``: the rank of the occurrence within its indexing *unit* (one
text segment, one image label, one voice segment).  Consecutive
ordinals mean consecutive tokens, which is what phrase matching needs;
units are separated by ordinal gaps so phrases never match across
segment boundaries — exactly the per-unit semantics of
``TextSearchIndex``.

``version`` is the archiver's version token at indexing time.  Text
postings are immortal (the platter is write-once); voice postings are
live only while their version matches the latest voice indexing of the
object, so a re-recognized object never serves stale utterances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ObjectId

TEXT = "text"
VOICE = "voice"
BOTH = "both"

CHANNELS = (TEXT, VOICE)

# Ordinal gap left between indexing units of one object: > 1, so the
# last token of one unit and the first of the next are never phrase-
# adjacent.
UNIT_GAP = 2


@dataclass(frozen=True, slots=True)
class Posting:
    """One term occurrence in one channel of one archived object."""

    object_id: ObjectId
    channel: str
    position: float
    ordinal: int
    version: int = 1

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint, for memtable budgets."""
        return 40 + len(str(self.object_id))


def channel_matches(posting_channel: str, wanted: str) -> bool:
    """Whether a posting in ``posting_channel`` satisfies a query filter."""
    return wanted == BOTH or posting_channel == wanted


def validate_channel(channel: str) -> str:
    """Check a query channel filter, returning it unchanged.

    Raises
    ------
    ValueError
        If ``channel`` is not ``text``, ``voice`` or ``both``.
    """
    if channel not in (TEXT, VOICE, BOTH):
        raise ValueError(
            f"channel must be 'text', 'voice' or 'both': {channel!r}"
        )
    return channel
