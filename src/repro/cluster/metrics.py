"""Cluster observability: counters, histograms and ``CLUSTER_*`` events.

The scale-out layer is only trustworthy if its failure handling is
visible: every read records which node served it, every failover and
hedge is counted, every quorum write records how many replicas acked,
and every migration records the bytes it moved.  Everything is
thread-safe and mirrored into a :class:`repro.trace.Trace` as
``CLUSTER_*`` events, exactly as ``SERVER_*``/``DELIVERY_*`` events
expose the single-node stack.

Latencies are in *simulated seconds* (see
:mod:`repro.server.metrics`), so histograms are deterministic for a
deterministic workload.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from repro.server.metrics import Histogram, HistogramSnapshot
from repro.trace import EventKind, Trace


@dataclass(frozen=True)
class ClusterMetricsSnapshot:
    """Immutable point-in-time view of :class:`ClusterMetrics`."""

    reads: int
    read_failures: int
    failovers: int
    hedges: int
    hedge_wins: int
    writes: int
    replica_writes: int
    replica_write_failures: int
    quorum_failures: int
    migrations: int
    migration_failures: int
    bytes_migrated: int
    #: Completed reads per node id — the load-balance evidence.
    node_reads: dict[int, int]
    #: Lifecycle transitions per ``(node_id, status)``.
    node_status_counts: dict[tuple[int, str], int]
    read_latency: HistogramSnapshot
    quorum_latency: HistogramSnapshot

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of hedged reads the hedge actually won."""
        return self.hedge_wins / self.hedges if self.hedges else 0.0

    @property
    def read_balance_ratio(self) -> float:
        """Max over mean reads per serving node (1.0 = perfectly even)."""
        if not self.node_reads:
            return 0.0
        loads = list(self.node_reads.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 0.0


class ClusterMetrics:
    """Thread-safe instrumentation for the cluster router and rebalancer.

    Parameters
    ----------
    trace:
        Optional trace to mirror ``CLUSTER_*`` events into (a fresh
        one is created if omitted).
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self.read_latency = Histogram()
        self.quorum_latency = Histogram()
        self._reads = 0
        self._read_failures = 0
        self._failovers = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._writes = 0
        self._replica_writes = 0
        self._replica_write_failures = 0
        self._quorum_failures = 0
        self._migrations = 0
        self._migration_failures = 0
        self._bytes_migrated = 0
        self._node_reads: Counter[int] = Counter()
        self._node_status: Counter[tuple[int, str]] = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def on_read(
        self,
        node_id: int,
        station: str,
        latency_s: float,
        service_s: float,
        time_s: float,
    ) -> None:
        """Record one read completed by ``node_id``."""
        self.read_latency.record(latency_s)
        with self._lock:
            self._reads += 1
            self._node_reads[node_id] += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_READ, node=node_id, station=station,
                latency_s=round(latency_s, 6), service_s=round(service_s, 6),
            )

    def on_read_failed(self, station: str, object_id, time_s: float) -> None:
        """Record a read no replica could serve — the count that must
        stay 0 whenever a quorum of replicas is alive."""
        with self._lock:
            self._read_failures += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_READ, station=station,
                object_id=str(object_id), failed=True,
            )

    def on_failover(
        self, from_node: int, to_node: int | None, op: str, time_s: float
    ) -> None:
        """Record one failover away from ``from_node`` (None = no target)."""
        with self._lock:
            self._failovers += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_FAILOVER, from_node=from_node,
                to_node=to_node, op=op,
            )

    def on_hedge(self, primary: int, hedge: int, won: bool, time_s: float) -> None:
        """Record one hedged read (``won`` = the hedge finished first)."""
        with self._lock:
            self._hedges += 1
            if won:
                self._hedge_wins += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_HEDGE, primary=primary,
                hedge=hedge, won=won,
            )

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def on_replica_write(self, node_id: int, ok: bool) -> None:
        """Record one per-replica write attempt."""
        with self._lock:
            self._replica_writes += 1
            if not ok:
                self._replica_write_failures += 1

    def on_write(
        self,
        object_id,
        acks: int,
        replicas: int,
        quorum_latency_s: float,
        time_s: float,
        *,
        quorum_met: bool,
    ) -> None:
        """Record one fanned-out store and its quorum outcome."""
        self.quorum_latency.record(quorum_latency_s)
        with self._lock:
            self._writes += 1
            if not quorum_met:
                self._quorum_failures += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_WRITE, object_id=str(object_id),
                acks=acks, replicas=replicas, quorum_met=quorum_met,
                quorum_latency_s=round(quorum_latency_s, 6),
            )

    # ------------------------------------------------------------------
    # rebalance + lifecycle
    # ------------------------------------------------------------------

    def on_migrate(
        self,
        object_id,
        source: int,
        target: int,
        nbytes: int,
        time_s: float,
        *,
        ok: bool = True,
    ) -> None:
        """Record one extent migration (or a failed attempt)."""
        with self._lock:
            if ok:
                self._migrations += 1
                self._bytes_migrated += nbytes
            else:
                self._migration_failures += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_MIGRATE, object_id=str(object_id),
                source=source, target=target, nbytes=nbytes, ok=ok,
            )

    def on_node_status(self, node_id: int, status: str, time_s: float) -> None:
        """Record one node lifecycle transition."""
        with self._lock:
            self._node_status[(node_id, status)] += 1
            self.trace.record(
                time_s, EventKind.CLUSTER_NODE_STATUS, node=node_id,
                status=status,
            )

    def snapshot(self) -> ClusterMetricsSnapshot:
        """A coherent immutable copy of all counters and histograms."""
        with self._lock:
            return ClusterMetricsSnapshot(
                reads=self._reads,
                read_failures=self._read_failures,
                failovers=self._failovers,
                hedges=self._hedges,
                hedge_wins=self._hedge_wins,
                writes=self._writes,
                replica_writes=self._replica_writes,
                replica_write_failures=self._replica_write_failures,
                quorum_failures=self._quorum_failures,
                migrations=self._migrations,
                migration_failures=self._migration_failures,
                bytes_migrated=self._bytes_migrated,
                node_reads=dict(self._node_reads),
                node_status_counts=dict(self._node_status),
                read_latency=self.read_latency.snapshot(),
                quorum_latency=self.quorum_latency.snapshot(),
            )
