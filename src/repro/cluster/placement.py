"""Consistent-hash placement shared by index shards and cluster nodes.

This module generalizes the consistent-hash ring that PR 4 introduced
for index term sharding into the archive-wide placement layer of the
cluster subsystem: the same ring that spreads *terms* over index
shards now also spreads *objects* over archiver nodes, with an ordered
walk producing replica sets.  ``repro.index.sharding`` re-exports
:class:`HashRing` and :func:`stable_hash` unchanged, so shard
assignments are byte-identical to the pre-extraction layout (pinned by
a regression test).

Two properties carry all the placement guarantees:

* an owner is a pure function of the key — every writer, reader and
  rebalancer agrees without coordination; and
* adding or removing a node only inserts or deletes that node's
  virtual points, so the ordered owner walk of any key changes by at
  most the inserted/removed node — replica sets move minimally
  (the ring-diff invariant :mod:`repro.cluster.rebalance` relies on).

Hashing is deliberately *stable* (blake2b, not the salted builtin
``hash``) so placement — and therefore segment layouts, replica sets,
metrics and traces — is reproducible across processes and runs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.errors import ClusterError


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hash ring mapping string keys to integer owner ids.

    Owners are index shards (``repro.index.sharding``) or cluster
    nodes (:class:`Placement`); the ring does not care.  Virtual-point
    labels keep the historical ``shard:{id}:{replica}`` format so
    assignments made before the ring moved here are byte-identical.

    Parameters
    ----------
    shard_ids:
        The owner identifiers to place on the ring.
    replicas:
        Virtual points per owner; more points → smoother balance.
    """

    def __init__(self, shard_ids: list[int], replicas: int = 64) -> None:
        if not shard_ids:
            raise ValueError("hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate ids on the ring: {shard_ids}")
        if replicas < 1:
            raise ValueError(f"replicas must be positive: {replicas}")
        points: list[tuple[int, int]] = []
        for shard_id in shard_ids:
            for replica in range(replicas):
                points.append((stable_hash(f"shard:{shard_id}:{replica}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]
        self._shard_ids = sorted(shard_ids)
        self._replicas = replicas

    @property
    def shard_ids(self) -> list[int]:
        """All owner ids on the ring, sorted."""
        return list(self._shard_ids)

    @property
    def replicas(self) -> int:
        """Virtual points per owner."""
        return self._replicas

    def shard_for(self, term: str) -> int:
        """The owner of ``term`` (first ring point at or after its hash)."""
        index = bisect_right(self._points, stable_hash(term))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def owners_for(self, key: str, count: int) -> list[int]:
        """The first ``count`` *distinct* owners clockwise from ``key``.

        The walk starts at the first ring point at or after the key's
        hash (so ``owners_for(key, 1)[0] == shard_for(key)``) and
        collects owners in ring order, skipping repeats.  The resulting
        order is deterministic per key, which is what makes "primary
        replica" a stable notion without any coordination.

        Raises
        ------
        ValueError
            If ``count`` exceeds the number of owners on the ring.
        """
        if not 1 <= count <= len(self._shard_ids):
            raise ValueError(
                f"cannot pick {count} distinct owners from "
                f"{len(self._shard_ids)} on the ring"
            )
        start = bisect_right(self._points, stable_hash(key))
        owners: list[int] = []
        seen: set[int] = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in seen:
                continue
            seen.add(owner)
            owners.append(owner)
            if len(owners) == count:
                break
        return owners


class Placement:
    """Object-id → replica-set placement over the cluster's nodes.

    A thin, immutable policy object: the ring decides *where* an
    object's replicas live; :class:`~repro.cluster.router.ClusterRouter`
    decides *how* to read/write them and
    :class:`~repro.cluster.rebalance.Rebalancer` moves extents when the
    node set changes.

    Parameters
    ----------
    node_ids:
        Identifiers of the nodes currently on the ring.
    replication:
        Replica count ``R`` per object.  When fewer than ``R`` nodes
        exist (a bootstrap cluster), replica sets are truncated to the
        node count rather than rejected.
    vnodes:
        Virtual points per node (ring smoothness).
    """

    def __init__(
        self, node_ids: list[int], *, replication: int = 2, vnodes: int = 64
    ) -> None:
        if replication < 1:
            raise ClusterError(f"replication must be positive: {replication}")
        if not node_ids:
            raise ClusterError("placement needs at least one node")
        self._ring = HashRing(list(node_ids), replicas=vnodes)
        self.replication = replication
        self.vnodes = vnodes

    @property
    def node_ids(self) -> list[int]:
        """All node ids on the ring, sorted."""
        return self._ring.shard_ids

    @property
    def effective_replication(self) -> int:
        """``min(R, node count)`` — the replica-set size actually used."""
        return min(self.replication, len(self._ring.shard_ids))

    def replica_set(self, key) -> list[int]:
        """Ordered distinct replica nodes of ``key`` (primary first).

        ``key`` is stringified, so :class:`~repro.ids.ObjectId` values
        work directly.
        """
        return self._ring.owners_for(str(key), self.effective_replication)

    def primary(self, key) -> int:
        """The first replica of ``key`` — its canonical home node."""
        return self.replica_set(key)[0]

    def with_node(self, node_id: int) -> "Placement":
        """A new placement with ``node_id`` joined to the ring."""
        if node_id in self._ring.shard_ids:
            raise ClusterError(f"node {node_id} is already on the ring")
        return Placement(
            self._ring.shard_ids + [node_id],
            replication=self.replication,
            vnodes=self.vnodes,
        )

    def without_node(self, node_id: int) -> "Placement":
        """A new placement with ``node_id`` removed from the ring."""
        remaining = [n for n in self._ring.shard_ids if n != node_id]
        if len(remaining) == len(self._ring.shard_ids):
            raise ClusterError(f"node {node_id} is not on the ring")
        if not remaining:
            raise ClusterError("cannot remove the last node from the ring")
        return Placement(
            remaining, replication=self.replication, vnodes=self.vnodes
        )
