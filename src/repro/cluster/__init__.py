"""repro.cluster — a replicated, sharded multi-archiver object service.

Scales the single-node archiver out: objects are placed on a
consistent-hash ring of nodes (:mod:`~repro.cluster.placement`), each
node wraps a full archiver stack with a lifecycle
(:mod:`~repro.cluster.node`), a router fans writes to a quorum and
fails reads over across replicas (:mod:`~repro.cluster.router`), and
membership changes migrate only the ring-diff minimum
(:mod:`~repro.cluster.rebalance`).  See ``docs/CLUSTER.md``.

Heavy submodules are loaded lazily: :mod:`repro.index.sharding`
re-exports the ring from :mod:`~repro.cluster.placement`, and an eager
import of the router here would close a cycle through
``repro.server`` → ``repro.index`` back into this package.
"""

from __future__ import annotations

from repro.cluster.placement import HashRing, Placement, stable_hash

__all__ = [
    "HashRing",
    "Placement",
    "stable_hash",
    "ClusterMetrics",
    "ClusterMetricsSnapshot",
    "ClusterNode",
    "NodeStatus",
    "ClusterRouter",
    "ClusterLoadReport",
    "RouterFuture",
    "StoreOutcome",
    "replay_cluster",
    "MigrationStep",
    "RebalanceReport",
    "Rebalancer",
    "plan_migrations",
]

_LAZY = {
    "ClusterMetrics": "repro.cluster.metrics",
    "ClusterMetricsSnapshot": "repro.cluster.metrics",
    "ClusterNode": "repro.cluster.node",
    "NodeStatus": "repro.cluster.node",
    "ClusterRouter": "repro.cluster.router",
    "ClusterLoadReport": "repro.cluster.router",
    "RouterFuture": "repro.cluster.router",
    "StoreOutcome": "repro.cluster.router",
    "replay_cluster": "repro.cluster.router",
    "MigrationStep": "repro.cluster.rebalance",
    "RebalanceReport": "repro.cluster.rebalance",
    "Rebalancer": "repro.cluster.rebalance",
    "plan_migrations": "repro.cluster.rebalance",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
