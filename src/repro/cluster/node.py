"""One member of the replicated object service.

A :class:`ClusterNode` wraps a full single-node archiver stack — an
:class:`~repro.server.archiver.Archiver` (optionally behind a
:class:`~repro.server.archiver.CachingArchiver`) with its own platter,
journal and fault plan — and adds the two things membership requires:

* a **lifecycle** (``UP`` → ``DRAINING`` → ``DOWN`` and back up via
  :meth:`recover`), and
* a **serve guard** that converts a node's death into a typed,
  routable error.

The serve guard is where the ``cluster.node_crash`` fault site lives.
A :class:`~repro.errors.SimulatedCrash` is deliberately not a
``MinosError`` — *process* death must never be absorbed by library
handlers.  But one node dying is not the client's process dying: the
whole point of replication is that the client survives it.  So the
guard catches the crash *at the node boundary*, marks the node
``DOWN`` (its volatile state is gone; the platter and journal
survive), and raises :class:`~repro.errors.NodeDownError` — a
``MinosError`` the router may legitimately catch and fail over on.
Recovery then follows the exact single-node contract:
:meth:`recover` re-opens the archiver from surviving device bytes via
:meth:`Archiver.reopen`.
"""

from __future__ import annotations

import enum
import threading

from repro.errors import ClusterError, NodeDownError, SimulatedCrash
from repro.faults.plan import fire
from repro.faults.registry import (
    CLUSTER_MIGRATE,
    CLUSTER_NODE_CRASH,
    CLUSTER_REPLICA_WRITE,
)
from repro.server.archiver import Archiver, CachingArchiver
from repro.server.recovery import RecoveryReport


class NodeStatus(enum.Enum):
    """Lifecycle of a cluster node."""

    #: Serving reads and accepting writes.
    UP = "up"
    #: Serving reads; refusing new writes (about to leave the ring).
    DRAINING = "draining"
    #: Crashed or removed; serves nothing until :meth:`ClusterNode.recover`.
    DOWN = "down"


#: Read operations a node will execute, mirroring
#: :attr:`repro.server.frontend.ServerFrontend._OPS`.
NODE_OPS = (
    "fetch",
    "fetch_object",
    "read_absolute",
    "read_piece_range",
    "read_scattered",
)


class ClusterNode:
    """A replica-holding archiver node.

    Parameters
    ----------
    node_id:
        Ring identity (an int, as for index shards).
    archiver:
        The wrapped stack; a fresh :class:`Archiver` (threaded with
        ``fault_plan``) is created if omitted.  A
        :class:`CachingArchiver` works identically.
    fault_plan:
        Per-node :class:`~repro.faults.FaultPlan` consulted at the
        ``cluster.*`` sites (falls back to the archiver's own plan).
        Giving each node its own plan is what lets a test kill exactly
        one replica deterministically.
    """

    def __init__(
        self,
        node_id: int,
        archiver: Archiver | CachingArchiver | None = None,
        *,
        fault_plan=None,
    ) -> None:
        if archiver is None:
            archiver = Archiver(fault_plan=fault_plan)
        self.node_id = int(node_id)
        self._archiver = archiver
        self._fault_plan = (
            fault_plan if fault_plan is not None else archiver.fault_plan
        )
        self._status = NodeStatus.UP
        self._lock = threading.Lock()
        #: Requests currently admitted (join-shortest-queue signal).
        self.inflight = 0
        #: Total requests served (reads + writes + migrations).
        self.served = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def archiver(self) -> Archiver | CachingArchiver:
        """The wrapped archiver stack."""
        return self._archiver

    @property
    def fault_plan(self):
        """The node's fault plan (or None)."""
        return self._fault_plan

    @fault_plan.setter
    def fault_plan(self, plan) -> None:
        # Attachable after construction: a test computes placement
        # first, then arms exactly the replica it means to hurt.
        self._fault_plan = plan

    @property
    def status(self) -> NodeStatus:
        return self._status

    @property
    def is_up(self) -> bool:
        return self._status is NodeStatus.UP

    @property
    def serves_reads(self) -> bool:
        """DRAINING nodes keep serving reads until their data has moved."""
        return self._status in (NodeStatus.UP, NodeStatus.DRAINING)

    def __contains__(self, object_id) -> bool:
        return object_id in self._archiver

    def __len__(self) -> int:
        return len(self._archiver)

    def object_ids(self) -> list:
        """Ids of every object stored on this node."""
        return self._archiver.object_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterNode(id={self.node_id}, status={self._status.value}, "
            f"objects={len(self._archiver)})"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Stop accepting writes (the node is leaving the ring)."""
        if self._status is NodeStatus.DOWN:
            raise ClusterError(f"node {self.node_id} is down; cannot drain")
        self._status = NodeStatus.DRAINING

    def crash(self) -> None:
        """Kill the node's process between requests.

        The scheduled analogue of an armed ``cluster.node_crash``
        fault: volatile state is gone, the platter and journal survive,
        and the node serves nothing until :meth:`recover`.  Chaos
        schedules use this to crash a node *deterministically at a
        step boundary* rather than at the N-th serve arrival.
        """
        self._status = NodeStatus.DOWN

    def mark_down(self) -> None:
        """Administratively take the node out of service."""
        self._status = NodeStatus.DOWN

    def recover(self, metrics=None) -> RecoveryReport:
        """Bring a DOWN node back by re-opening its surviving devices.

        Exactly the single-node restart contract: the platter, journal
        and (if any) staging cache survive a crash; all volatile state
        is rebuilt from them via :meth:`Archiver.reopen`.  The node
        returns UP with every sealed object intact.
        """
        inner = self._archiver
        cache = None
        if isinstance(inner, CachingArchiver):
            cache = inner.cache
            inner = inner.archiver
        recovered, report = Archiver.reopen(
            inner.disk,
            inner.journal,
            cache=inner.cache,
            fault_plan=inner.fault_plan,
            metrics=metrics,
        )
        if cache is not None:
            self._archiver = CachingArchiver(recovered, cache)
        else:
            self._archiver = recovered
        self._status = NodeStatus.UP
        return report

    # ------------------------------------------------------------------
    # the serve guard
    # ------------------------------------------------------------------

    def _died(self, doing: str) -> NodeDownError:
        """Mark the node dead and build the routable error.

        A :class:`SimulatedCrash` can surface *inside* the wrapped
        archiver (mid commit protocol: an armed ``archiver.store.*`` or
        journal-site crash), not only at the ``cluster.*`` sites.  The
        translation rule is the same wherever the process dies: one
        replica's death is not the client's death, so the boundary
        converts it into :class:`NodeDownError` and the router fails
        over or records the missed write.  The devices survive;
        :meth:`recover` replays the journal evidence exactly as for a
        single-node crash.
        """
        self._status = NodeStatus.DOWN
        return NodeDownError(f"node {self.node_id} crashed {doing}")

    def _guard(self) -> None:
        """Admission check + the ``cluster.node_crash`` site.

        Raises
        ------
        NodeDownError
            If the node is DOWN, or an armed CRASH fires here (the
            node dies and the error reports it).
        """
        if self._status is NodeStatus.DOWN:
            raise NodeDownError(f"node {self.node_id} is down")
        try:
            fire(self._fault_plan, CLUSTER_NODE_CRASH)
        except SimulatedCrash as crash:
            # The node process died; its devices survive.  Translate to
            # a routable error at the membership boundary.
            self._status = NodeStatus.DOWN
            raise NodeDownError(
                f"node {self.node_id} crashed while serving"
            ) from crash

    def serve(self, op: str, *params) -> tuple:
        """Execute one read operation; returns ``(payload, service_s)``.

        ``op`` must be one of :data:`NODE_OPS`.  Transient device
        faults (:class:`~repro.errors.TransientIOError`) propagate as
        themselves — the router treats them, like
        :class:`~repro.errors.NodeDownError`, as a cue to fail over.
        """
        if op not in NODE_OPS:
            raise ClusterError(f"unknown node operation {op!r}")
        self._guard()
        with self._lock:
            self.inflight += 1
        try:
            result = getattr(self._archiver, op)(*params)
        except SimulatedCrash as crash:
            raise self._died("serving a read") from crash
        finally:
            with self._lock:
                self.inflight -= 1
                self.served += 1
        if op == "fetch":
            return result, result.service_time_s
        payload, service = result
        return payload, service

    def record(self, object_id):
        """The storage record of a replica held here (read-side guard)."""
        self._guard()
        return self._archiver.record(object_id)

    # ------------------------------------------------------------------
    # write paths
    # ------------------------------------------------------------------

    def store(self, obj, shared_archiver_data=None):
        """Accept one replica of a fanned-out store.

        Fires ``cluster.replica_write`` before the underlying commit
        protocol runs; a transient there means this replica missed the
        write (the router's quorum decides whether the store as a
        whole succeeded).
        """
        if self._status is not NodeStatus.UP:
            raise NodeDownError(
                f"node {self.node_id} is {self._status.value}; "
                "not accepting writes"
            )
        try:
            fire(self._fault_plan, CLUSTER_REPLICA_WRITE)
        except SimulatedCrash as crash:
            self._status = NodeStatus.DOWN
            raise NodeDownError(
                f"node {self.node_id} crashed accepting a write"
            ) from crash
        with self._lock:
            self.served += 1
        try:
            return self._archiver.store(obj, shared_archiver_data)
        except SimulatedCrash as crash:
            raise self._died("mid store commit") from crash

    def attach_recognition(self, object_id, side_table) -> None:
        """Accept one replica's share of a fanned-out recognition.

        Recognition results follow the same replica-write discipline as
        :meth:`store`: the ``cluster.replica_write`` site fires first
        (a transient there means this replica missed the recognition
        and owes a catch-up sync), then the single-node commit protocol
        of :meth:`Archiver.attach_recognition` runs.
        """
        if self._status is not NodeStatus.UP:
            raise NodeDownError(
                f"node {self.node_id} is {self._status.value}; "
                "not accepting writes"
            )
        try:
            fire(self._fault_plan, CLUSTER_REPLICA_WRITE)
        except SimulatedCrash as crash:
            self._status = NodeStatus.DOWN
            raise NodeDownError(
                f"node {self.node_id} crashed accepting a recognition"
            ) from crash
        with self._lock:
            self.served += 1
        try:
            self._archiver.attach_recognition(object_id, side_table)
        except SimulatedCrash as crash:
            raise self._died("mid recognition commit") from crash

    def receive_migration(self, obj):
        """Accept an object copy moved here by the rebalancer.

        Distinct from :meth:`store` so that ``cluster.migrate`` is the
        *only* site on this path — a test can fail migrations without
        also failing client writes.  DRAINING nodes refuse (data is
        moving off them, not onto them).
        """
        if self._status is not NodeStatus.UP:
            raise NodeDownError(
                f"node {self.node_id} is {self._status.value}; "
                "not accepting migrations"
            )
        try:
            fire(self._fault_plan, CLUSTER_MIGRATE)
        except SimulatedCrash as crash:
            self._status = NodeStatus.DOWN
            raise NodeDownError(
                f"node {self.node_id} crashed receiving a migration"
            ) from crash
        with self._lock:
            self.served += 1
        try:
            result = self._archiver.store(obj)
            # A migrated copy of a recognized object carries its
            # utterances baked into the rebuilt voice segments.
            # Materialize them as a first-class side table (full
            # journal-backed attach protocol) so this copy is
            # indistinguishable from one recognized here directly:
            # ``recognition_for`` stays truthful, and repair source
            # ranking never mistakes this copy for an unrecognized one.
            side_table = {
                segment.segment_id: list(segment.utterances)
                for segment in obj.voice_segments
                if segment.utterances
            }
            if side_table:
                self._archiver.attach_recognition(obj.object_id, side_table)
            return result
        except SimulatedCrash as crash:
            raise self._died("mid migration commit") from crash
