"""Online rebalancing: node join/leave with minimal-movement migration.

Membership changes are driven by *ring diffs*.  When a node joins or
leaves, the consistent-hash placement guarantees that each object's
replica set changes by at most the affected node
(see :mod:`repro.cluster.placement`), so the migration plan is exactly
the set of ``(object, new-owner)`` pairs the diff produces — no
wholesale reshuffle.

Migrations run *incrementally*: :meth:`Rebalancer.run` performs at
most ``max_steps`` moves per call, mirroring the
``IdleRecognizer.run(max_objects)`` idle-pass contract, so rebalancing
interleaves with serving instead of monopolising the devices.  A move
copies the object from a surviving replica (``fetch_object`` rebuilds
it in the ARCHIVED state) into the target node via
``receive_migration`` — the path that fires the ``cluster.migrate``
fault site.  Failed moves are re-queued and retried on the next pass.

The optical platters are write-once, so a *leaving* node's copies are
never erased — they simply stop being routed to (and are dead space if
the platter is ever re-mounted).  Minimal movement is therefore about
copies *added*, which is the only kind of movement that exists here.

:meth:`catch_up` converts the router's under-replication debt
(replicas that missed a quorum write) into migration steps, closing
the loop: a degraded write is repaired by the same machinery that
serves joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ClusterNode
from repro.cluster.placement import Placement
from repro.cluster.router import ClusterRouter
from repro.obs.context import bind as bind_span
from repro.obs.context import current as current_span
from repro.obs.spans import SpanKind as ObsSpanKind
from repro.obs.spans import SpanStatus as ObsSpanStatus
from repro.errors import (
    ClusterError,
    NodeDownError,
    ObjectNotFoundError,
    TornWriteError,
    TransientIOError,
)

#: Per-step failures a rebalance pass absorbs by re-queuing the step.
#: A torn write on the target belongs here for the same reason it is a
#: missed replica write at the router: the target's own commit
#: protocol already rolled the partial copy back, so the step simply
#: has not happened yet.
STEP_RETRY_ERRORS = (
    TransientIOError,
    TornWriteError,
    NodeDownError,
    ObjectNotFoundError,
)


@dataclass(frozen=True)
class MigrationStep:
    """Copy ``object_id`` from ``source`` onto ``target``."""

    object_id: object
    source: int
    target: int


@dataclass
class RebalanceReport:
    """Outcome of one incremental rebalance pass."""

    moved: int = 0
    bytes_moved: int = 0
    skipped: int = 0
    #: Steps whose target already held the copy and only needed the
    #: recognition side table brought up to date (catch-up repair of a
    #: missed ``attach_recognition``).
    synced: int = 0
    failed: int = 0
    #: Steps still queued after the pass (failures re-queue here).
    remaining: int = 0
    failures: list[tuple[MigrationStep, str]] = field(default_factory=list)


def plan_migrations(
    old: Placement,
    new: Placement,
    holdings: dict[int, set],
    *,
    source_key=None,
) -> list[MigrationStep]:
    """Diff two rings into the minimal list of copy steps.

    ``holdings`` maps node id → the object ids physically present
    there.  For every known object, each node that the *new* placement
    makes an owner but that holds no copy gets one step, sourced from
    any current holder (preferring holders that remain owners, so
    sources stay valid if a pass is interrupted).  Objects whose new
    replica set is already satisfied produce no steps — that is the
    minimal-movement property, inherited directly from the ring.

    ``source_key`` optionally ranks candidate sources: a callable
    ``(node_id, object_id) -> comparable`` of which the maximum wins,
    with remain-owner status and node id breaking ties.  The
    rebalancer ranks by recognition richness: copies of a recognized
    object are not interchangeable — one replica may have missed the
    (write-quorum-1) ``attach_recognition`` — and migrating from the
    poorest holder while a richer one exists would silently shed the
    recognition from the serving set.  Richness *dominates* the
    remain-owner preference for the same reason: a stale-but-staying
    source loses data, a rich-but-leaving source merely needs its
    drain gated on the queue (which :meth:`Rebalancer.finish_leave`
    already enforces).
    """
    steps: list[MigrationStep] = []
    every_object = sorted(
        {oid for held in holdings.values() for oid in held}, key=str
    )
    for object_id in every_object:
        holders = [nid for nid, held in holdings.items() if object_id in held]
        if not holders:  # pragma: no cover - every_object came from holdings
            continue
        new_set = new.replica_set(object_id)
        if source_key is None:
            preferred = [nid for nid in new_set if nid in holders] or holders
            source = preferred[0]
        else:
            source = max(
                holders,
                key=lambda nid: (
                    source_key(nid, object_id), nid in new_set, -nid
                ),
            )
        for target in new_set:
            if target not in holders:
                steps.append(
                    MigrationStep(
                        object_id=object_id, source=source, target=target
                    )
                )
    return steps


class Rebalancer:
    """Drive membership changes and repair under-replication.

    Parameters
    ----------
    router:
        The cluster whose placement this rebalancer maintains.  The
        router's :class:`~repro.cluster.metrics.ClusterMetrics`
        records every migration.
    """

    def __init__(self, router: ClusterRouter) -> None:
        self._router = router
        self._pending: list[MigrationStep] = []
        #: Nodes removed from routing but still readable as migration
        #: sources (a leaving node serves reads while it drains).
        self._detached: dict[int, ClusterNode] = {}

    @property
    def pending(self) -> list[MigrationStep]:
        """Queued steps (copy; mutating it does not affect the queue)."""
        return list(self._pending)

    def _holdings(self) -> dict[int, set]:
        holdings = {
            node_id: set(node.object_ids())
            for node_id, node in self._router.nodes.items()
        }
        for node_id, node in self._detached.items():
            if node.serves_reads:
                holdings[node_id] = set(node.object_ids())
        return holdings

    def _enqueue(self, steps: list[MigrationStep]) -> int:
        queued = set(self._pending)
        fresh = [step for step in steps if step not in queued]
        self._pending.extend(fresh)
        return len(fresh)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, node: ClusterNode, *, now_s: float = 0.0) -> int:
        """Admit ``node`` and queue the copies the ring diff demands.

        The node serves immediately; until its copies arrive, reads
        for them fail over to the old replicas.  Returns the number of
        steps queued.
        """
        holdings = self._holdings()
        holdings.setdefault(node.node_id, set(node.object_ids()))
        old = self._router.add_node(node, now_s=now_s)
        steps = plan_migrations(
            old, self._router.placement, holdings,
            source_key=self._source_rank,
        )
        return self._enqueue(steps)

    def leave(self, node_id: int, *, now_s: float = 0.0) -> int:
        """Start removing ``node_id``; queue the copies that replace it.

        The node drains: it stops taking writes but keeps serving
        reads (and acts as a migration source) until its data has
        moved.  Call :meth:`run` until the queue empties, then
        :meth:`finish_leave`.  Returns the number of steps queued.
        """
        node = self._router.node(node_id)
        holdings = self._holdings()
        node.drain()
        old = self._router.remove_node(node_id, now_s=now_s)
        self._detached[node_id] = node
        steps = plan_migrations(
            old, self._router.placement, holdings,
            source_key=self._source_rank,
        )
        return self._enqueue(steps)

    def finish_leave(self, node_id: int) -> None:
        """Shut a drained node down once its data is safe elsewhere.

        Raises
        ------
        ClusterError
            If queued migrations still read from the node, or still
            concern objects it holds — until those copies land, the
            drained node is the fallback replica.
        """
        node = self._detached.get(node_id)
        held = (
            set(node.object_ids())
            if node is not None and node.serves_reads else set()
        )
        blocking = [
            step for step in self._pending
            if step.source == node_id or step.object_id in held
        ]
        if blocking:
            raise ClusterError(
                f"node {node_id} still backs {len(blocking)} queued "
                "migrations"
            )
        node = self._detached.pop(node_id, None)
        if node is not None:
            node.mark_down()

    def rejoin(self, node_id: int, *, now_s: float = 0.0) -> int:
        """Bring a recovered node back into the ring.

        The node must already be UP (call
        :meth:`~repro.cluster.node.ClusterNode.recover` first).  Its
        surviving copies count as holdings, so the ring diff only
        queues what it missed while away.
        """
        node = self._detached.pop(node_id, None)
        if node is None:
            raise ClusterError(f"node {node_id} is not detached")
        if not node.is_up:
            raise ClusterError(
                f"node {node_id} must recover before rejoining"
            )
        return self.join(node, now_s=now_s)

    def crash_detach(self, node_id: int, *, now_s: float = 0.0) -> int:
        """Take a crashed node out of routing and re-protect its data.

        The queued copies restore full replication on the surviving
        nodes; if the node later recovers, :meth:`rejoin` folds it
        back in.
        """
        node = self._router.node(node_id)
        holdings = self._holdings()
        holdings.pop(node_id, None)  # a DOWN node sources nothing
        old = self._router.remove_node(node_id, now_s=now_s)
        self._detached[node_id] = node
        steps = plan_migrations(
            old, self._router.placement, holdings,
            source_key=self._source_rank,
        )
        return self._enqueue(steps)

    # ------------------------------------------------------------------
    # repair + execution
    # ------------------------------------------------------------------

    def catch_up(self) -> int:
        """Queue repairs for writes that missed replicas.

        Drains the router's under-replicated list into migration
        steps (sourced from any live holder) and returns how many
        were queued; stale entries for nodes that have since left are
        dropped.  A debt entry whose target already holds the object
        is a missed *recognition*, not a missed store — it still
        queues a step, and :meth:`run` resolves it by syncing the
        recognition side table instead of copying bytes.  Among the
        candidate sources the holder with the richest recognition
        table wins, so a sync step always reads from a replica that
        actually has the terms to offer.
        """
        debt = self._router.under_replicated
        self._router.under_replicated = []
        holdings = self._holdings()
        steps: list[MigrationStep] = []
        for object_id, node_id in debt:
            if node_id not in self._router.nodes:
                continue
            holders = [
                nid for nid, held in holdings.items()
                if object_id in held and nid != node_id
            ]
            if not holders:
                # No surviving copy: leave the debt recorded.
                self._router.under_replicated.append((object_id, node_id))
                continue
            source = max(
                holders,
                key=lambda nid: (self._recognition_size(nid, object_id), -nid),
            )
            steps.append(
                MigrationStep(
                    object_id=object_id, source=source, target=node_id
                )
            )
        return self._enqueue(steps)

    def _source_rank(self, node_id: int, object_id) -> int:
        """Source-preference key: richest recognition table wins."""
        return self._recognition_size(node_id, object_id)

    def _recognition_size(self, node_id: int, object_id) -> int:
        """Utterances a node's copy carries (source-preference key)."""
        node = self._router.nodes.get(node_id) or self._detached.get(node_id)
        if node is None:
            return 0
        table = node.archiver.recognition_for(object_id)
        return sum(len(utterances) for utterances in table.values())

    def _source_node(self, node_id: int) -> ClusterNode | None:
        node = self._router.nodes.get(node_id)
        if node is None:
            node = self._detached.get(node_id)
        if node is None or not node.serves_reads:
            return None
        return node

    def run(
        self, max_steps: int | None = None, *, now_s: float = 0.0
    ) -> RebalanceReport:
        """Perform up to ``max_steps`` queued migrations (all if None).

        A step whose target already holds the copy carries no bytes:
        if a live source has a richer recognition side table the step
        *syncs* it across (counted in ``synced``), otherwise it is
        skipped.  A step that fails transiently (or whose source is
        momentarily unusable) is re-queued for the next pass and
        counted in ``failed``.  Each successful move records a
        ``CLUSTER_MIGRATE`` event with the bytes that crossed.
        """
        report = RebalanceReport()
        budget = len(self._pending) if max_steps is None else max_steps
        retry: list[MigrationStep] = []
        metrics = self._router.metrics
        obs = self._router.obs
        while self._pending and budget > 0:
            step = self._pending.pop(0)
            budget -= 1
            target = self._router.nodes.get(step.target)
            if target is None:
                report.skipped += 1
                continue
            if step.object_id in target:
                self._sync_recognition(step, target, retry, report)
                continue
            source = self._source_node(step.source)
            if source is None:
                self._requeue(step, "source unavailable", retry, report)
                continue
            active = None
            if obs is not None:
                active = obs.start(
                    current_span(), "migrate", ObsSpanKind.MIGRATE, now_s,
                    object=str(step.object_id), source=step.source,
                    target=step.target,
                )
            # The source read goes through the node's serve guard, not
            # the bare archiver: if the source process dies mid-read
            # (an armed crash deep in its stack), the boundary
            # translates it into NodeDownError and the step re-queues
            # against a surviving holder instead of killing the
            # rebalancer.
            try:
                if active is not None:
                    with bind_span(active.context):
                        obj, _ = source.serve("fetch_object", step.object_id)
                        record = target.receive_migration(obj)
                else:
                    obj, _ = source.serve("fetch_object", step.object_id)
                    record = target.receive_migration(obj)
            except STEP_RETRY_ERRORS as e:
                metrics.on_migrate(
                    step.object_id, step.source, step.target, 0, now_s,
                    ok=False,
                )
                if active is not None:
                    active.finish(
                        now_s, status=ObsSpanStatus.RETRIED,
                        error=type(e).__name__,
                    )
                self._requeue(step, type(e).__name__, retry, report)
                continue
            report.moved += 1
            report.bytes_moved += record.extent.length
            metrics.on_migrate(
                step.object_id, step.source, step.target,
                record.extent.length, now_s,
            )
            if active is not None:
                active.finish(now_s, bytes=record.extent.length)
        self._pending.extend(retry)
        report.remaining = len(self._pending)
        return report

    def _sync_recognition(
        self,
        step: MigrationStep,
        target: ClusterNode,
        retry: list[MigrationStep],
        report: RebalanceReport,
    ) -> None:
        """Resolve a step whose target already holds the object.

        The copy is there; what may be missing is the recognition side
        table (the target missed an ``attach_recognition`` fan-out, or
        received its copy by migration before the source was
        recognized).  If the pinned source offers segments the target's
        table does not already agree on, attach them through the
        target's replica-write path — the same guarded, journaled
        commit a client fan-out uses — otherwise the step is a no-op
        skip.
        """
        source = self._source_node(step.source)
        if source is None:
            self._requeue(step, "source unavailable", retry, report)
            return
        table = source.archiver.recognition_for(step.object_id)
        current = target.archiver.recognition_for(step.object_id)
        if not table or all(
            current.get(segment_id) == utterances
            for segment_id, utterances in table.items()
        ):
            report.skipped += 1
            return
        try:
            target.attach_recognition(step.object_id, table)
        except STEP_RETRY_ERRORS as e:
            self._requeue(step, type(e).__name__, retry, report)
            return
        report.synced += 1

    def _requeue(
        self,
        step: MigrationStep,
        reason: str,
        retry: list[MigrationStep],
        report: RebalanceReport,
    ) -> None:
        report.failed += 1
        report.failures.append((step, reason))
        retry.append(step)
