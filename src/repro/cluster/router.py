"""Quorum writes, load-balanced failover reads, and the cluster replay.

The :class:`ClusterRouter` is the client-facing face of the replicated
object service.  It owns a :class:`~repro.cluster.placement.Placement`
over its member nodes and implements the paper-faithful request paths:

**Writes** fan out to all ``R`` replicas of the object's replica set
and succeed once ``W`` of them ack (default: a majority).  Replicas
that miss the write (transient fault, down node) are remembered as
*under-replicated* so the rebalancer's catch-up pass can repair them —
a degraded write is a repair obligation, not a lost one.

**Reads** are load-balanced across the replica set (deterministic
rotation) and fail over: :class:`~repro.errors.TransientIOError`,
:class:`~repro.errors.NodeDownError` and a replica that simply does
not hold the copy yet (mid-rebalance) all mean "try the next replica".
Only when every replica is exhausted does the client see an error —
and it sees a *retryable* one if any replica failed transiently, so
:func:`repro.delivery.pipeline.fetch_with_retry` composes unchanged.

:func:`replay_cluster` is the cluster analogue of
:func:`repro.server.loadgen.replay_virtual`: a deterministic
virtual-time replay with one device timeline per node,
join-shortest-queue replica choice, optional per-node caches, and
optional hedged reads — the engine behind the C-CLUSTER benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode
from repro.cluster.placement import Placement
from repro.errors import (
    ClusterError,
    NodeDownError,
    ObjectNotFoundError,
    QuorumWriteError,
    TornWriteError,
    TransientIOError,
)
from repro.obs.context import bind as bind_span
from repro.obs.context import current as current_span
from repro.obs.spans import SpanKind as ObsSpanKind
from repro.obs.spans import SpanStatus as ObsSpanStatus
from repro.server.loadgen import LoadRequest
from repro.server.metrics import percentile as shared_percentile
from repro.storage.cache import LRUCache

#: Per-replica failures the read path fails over on.  A missing copy is
#: routable too: during a rebalance a replica may not hold the object
#: *yet*, and during catch-up repair it may not hold it *anymore* —
#: another replica does.
FAILOVER_ERRORS = (TransientIOError, NodeDownError, ObjectNotFoundError)

#: Per-replica failures the write fan-out absorbs as a missed replica.
#: A torn replica write belongs here: the replica's own commit
#: protocol already rolled the partial write back (dead extent, journal
#: abort), so from the cluster's point of view that replica simply
#: missed the write — the quorum decides the store's fate and catch-up
#: repair re-copies it, exactly as for a transient miss.
MISSED_WRITE_ERRORS = (TransientIOError, TornWriteError, NodeDownError)

#: A recognition can additionally miss a replica that does not hold the
#: copy yet (mid-rebalance): the later full-object copy bakes the
#: recognition in, so the miss is repairable the same way.
MISSED_RECOGNITION_ERRORS = MISSED_WRITE_ERRORS + (ObjectNotFoundError,)

#: Operations the router can place: the first parameter must be the
#: object id.  (Absolute/extent reads are node-relative coordinates —
#: the same object lives at different platter offsets on each replica —
#: so they cannot be routed by content.)
ROUTABLE_OPS = ("fetch", "fetch_object", "read_piece_range")


class RouterFuture:
    """Synchronous future satisfying the ``ServerFuture.result`` shape.

    The router serves requests inline (its queueing lives in the
    replay's virtual timeline, not in host threads), so the future is
    already resolved when :meth:`ClusterRouter.submit` returns it —
    but the ``result(timeout)`` protocol is what
    :func:`~repro.delivery.pipeline.fetch_with_retry` speaks, so the
    delivery pipeline drives a cluster exactly as it drives a
    :class:`~repro.server.frontend.ServerFrontend`.
    """

    def __init__(self, payload=None, service_s: float = 0.0, error=None):
        self._payload = payload
        self._service_s = service_s
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout: float | None = 30.0) -> tuple:
        if self._error is not None:
            raise self._error
        return self._payload, self._service_s


@dataclass
class StoreOutcome:
    """What happened to one fanned-out store."""

    object_id: object
    replicas: list[int]
    acked: list[int]
    missed: list[int]

    @property
    def fully_replicated(self) -> bool:
        return not self.missed


@dataclass
class RecognitionOutcome:
    """What happened to one fanned-out ``attach_recognition``."""

    object_id: object
    replicas: list[int]
    acked: list[int]
    missed: list[int]

    @property
    def fully_replicated(self) -> bool:
        return not self.missed


class ClusterRouter:
    """Route reads and writes over a set of :class:`ClusterNode` s.

    Parameters
    ----------
    nodes:
        Member nodes (at least one; ids must be unique).
    replication:
        Target copies per object (capped at the node count).
    write_quorum:
        Acks required for a store to succeed; defaults to a majority
        of the *effective* replication factor.
    vnodes:
        Virtual points per node on the placement ring.
    metrics:
        Shared :class:`ClusterMetrics` (a fresh one if omitted).
    hedge_after_s:
        If set, a successful read whose service time exceeds this
        deadline is hedged on the next replica and the faster response
        wins.  ``None`` (default) disables hedging.
    """

    def __init__(
        self,
        nodes: list[ClusterNode],
        *,
        replication: int = 2,
        write_quorum: int | None = None,
        vnodes: int = 64,
        metrics: ClusterMetrics | None = None,
        hedge_after_s: float | None = None,
        obs=None,
    ) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate node ids: {sorted(ids)}")
        self._nodes: dict[int, ClusterNode] = {n.node_id: n for n in nodes}
        self._placement = Placement(ids, replication=replication, vnodes=vnodes)
        self._replication = replication
        self._vnodes = vnodes
        effective = self._placement.effective_replication
        if write_quorum is None:
            write_quorum = effective // 2 + 1
        if not 1 <= write_quorum <= effective:
            raise ClusterError(
                f"write quorum {write_quorum} outside 1..{effective}"
            )
        self.write_quorum = write_quorum
        self.metrics = metrics if metrics is not None else ClusterMetrics()
        self.hedge_after_s = hedge_after_s
        #: ``(object_id, node_id)`` pairs that missed a write and await
        #: catch-up repair by the rebalancer.
        self.under_replicated: list[tuple[object, int]] = []
        self._rotation = 0
        #: Nodes whose DOWN state the read path has already reported,
        #: so a long outage is one status event, not one per failover.
        self._seen_down: set[int] = set()
        self._obs = None
        if obs is not None:
            self.obs = obs

    @property
    def obs(self):
        """Optional span recorder, shared with every member archiver."""
        return self._obs

    @obs.setter
    def obs(self, recorder) -> None:
        # One recorder spans the whole cluster: member archivers emit
        # their codec/index leaf spans into it, parented (ambiently) on
        # whichever replica-attempt span is being served.
        self._obs = recorder
        for node in self._nodes.values():
            node.archiver.obs = recorder

    # ------------------------------------------------------------------
    # membership + placement
    # ------------------------------------------------------------------

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def nodes(self) -> dict[int, ClusterNode]:
        """Node id → node (live view; do not mutate)."""
        return self._nodes

    def node(self, node_id: int) -> ClusterNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterError(f"no node {node_id} in this cluster") from None

    def replica_set(self, object_id) -> list[int]:
        """The nodes holding (or owed) copies of ``object_id``."""
        return self._placement.replica_set(object_id)

    def add_node(self, node: ClusterNode, *, now_s: float = 0.0) -> Placement:
        """Admit a node and swap in the grown placement.

        Returns the *previous* placement so the rebalancer can diff the
        rings.  The new node serves reads immediately; reads for copies
        it does not hold yet fail over to the old replicas until the
        rebalancer moves them.
        """
        if node.node_id in self._nodes:
            raise ClusterError(f"node {node.node_id} already in the cluster")
        old = self._placement
        self._placement = old.with_node(node.node_id)
        self._nodes[node.node_id] = node
        if self._obs is not None:
            node.archiver.obs = self._obs
        self._refresh_quorum()
        self.metrics.on_node_status(node.node_id, "joined", now_s)
        return old

    def remove_node(self, node_id: int, *, now_s: float = 0.0) -> Placement:
        """Remove a node from routing; returns the previous placement."""
        if node_id not in self._nodes:
            raise ClusterError(f"no node {node_id} in this cluster")
        if len(self._nodes) == 1:
            raise ClusterError("cannot remove the last node")
        old = self._placement
        self._placement = old.without_node(node_id)
        del self._nodes[node_id]
        self._seen_down.discard(node_id)
        self._refresh_quorum()
        self.metrics.on_node_status(node_id, "left", now_s)
        return old

    def _refresh_quorum(self) -> None:
        # Keep the quorum a majority of the effective replication as
        # membership changes (a 1-node cluster must accept W=1).
        effective = self._placement.effective_replication
        self.write_quorum = min(self.write_quorum, effective)
        self.write_quorum = max(self.write_quorum, effective // 2 + 1)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def store(
        self, obj, shared_archiver_data=None, *, now_s: float = 0.0, ctx=None
    ) -> StoreOutcome:
        """Fan one store to all replicas; succeed on a write quorum.

        Raises
        ------
        QuorumWriteError
            If fewer than :attr:`write_quorum` replicas acked.  The
            replicas that did ack keep their copies (stores are
            idempotent per object id), so the under-replicated record
            still lets catch-up repair converge.
        """
        replicas = self._placement.replica_set(obj.object_id)
        active = None
        if self._obs is not None:
            active = self._obs.start(
                ctx if ctx is not None else current_span(),
                "cluster:write", ObsSpanKind.CLUSTER, now_s,
                object=str(obj.object_id), replicas=len(replicas),
            )
        acked: list[int] = []
        missed: list[int] = []
        ack_times: list[float] = []
        for node_id in replicas:
            node = self._nodes[node_id]
            try:
                if active is not None:
                    with bind_span(active.context):
                        record = node.store(obj, shared_archiver_data)
                else:
                    record = node.store(obj, shared_archiver_data)
            except MISSED_WRITE_ERRORS as error:
                missed.append(node_id)
                self.metrics.on_replica_write(node_id, False)
                if active is not None:
                    self._obs.emit(
                        active.context, f"replica:{node_id}",
                        ObsSpanKind.CLUSTER, now_s, now_s,
                        status=ObsSpanStatus.ERROR,
                        node=node_id, error=type(error).__name__,
                    )
                continue
            acked.append(node_id)
            self.metrics.on_replica_write(node_id, True)
            # Ack-time estimate for the quorum histogram: a cold seek
            # plus the transfer of the stored extent on that node's
            # device.  Replicas write in parallel, so the quorum is met
            # when the W-th fastest ack lands.
            geometry = node.archiver.disk.geometry
            ack_time = geometry.access_time(0, record.extent)
            ack_times.append(ack_time)
            if active is not None:
                self._obs.emit(
                    active.context, f"replica:{node_id}",
                    ObsSpanKind.CLUSTER, now_s, now_s + ack_time,
                    node=node_id,
                )
        quorum_met = len(acked) >= self.write_quorum
        if quorum_met:
            quorum_latency = sorted(ack_times)[self.write_quorum - 1]
        else:
            quorum_latency = max(ack_times, default=0.0)
        self.metrics.on_write(
            obj.object_id, len(acked), len(replicas), quorum_latency, now_s,
            quorum_met=quorum_met,
        )
        if active is not None:
            active.finish(
                now_s + quorum_latency,
                status=(
                    ObsSpanStatus.OK if quorum_met else ObsSpanStatus.ERROR
                ),
                acked=len(acked), quorum=self.write_quorum,
            )
        for node_id in missed:
            self.under_replicated.append((obj.object_id, node_id))
        if not quorum_met:
            raise QuorumWriteError(
                f"store of {obj.object_id} acked by {len(acked)} of "
                f"{len(replicas)} replicas (need {self.write_quorum})"
            )
        return StoreOutcome(
            object_id=obj.object_id, replicas=replicas, acked=acked,
            missed=missed,
        )

    def attach_recognition(
        self, object_id, side_table, *, now_s: float = 0.0, ctx=None
    ) -> RecognitionOutcome:
        """Fan one recognition to all replicas; succeed on any ack.

        Recognition is derived data — recomputable from the archived
        media — so its write quorum is 1: a single durably journaled
        application is enough for the result to survive, and every
        replica that missed it (transient, torn, down, or simply not
        holding the copy yet mid-rebalance) is recorded as
        under-replicated so the rebalancer's catch-up pass syncs the
        side table (or copies the whole object, which bakes the
        recognition in).

        Raises
        ------
        QuorumWriteError
            If no replica applied the recognition.  The misses stay
            recorded, but with zero durable applications there is
            nothing for catch-up to sync *from*, so the caller must
            retry the recognition itself.
        """
        replicas = self._placement.replica_set(object_id)
        active = None
        if self._obs is not None:
            active = self._obs.start(
                ctx if ctx is not None else current_span(),
                "cluster:recognize", ObsSpanKind.CLUSTER, now_s,
                object=str(object_id), replicas=len(replicas),
            )
        acked: list[int] = []
        missed: list[int] = []
        for node_id in replicas:
            node = self._nodes[node_id]
            try:
                if active is not None:
                    with bind_span(active.context):
                        node.attach_recognition(object_id, side_table)
                else:
                    node.attach_recognition(object_id, side_table)
            except MISSED_RECOGNITION_ERRORS as error:
                missed.append(node_id)
                self.metrics.on_replica_write(node_id, False)
                if active is not None:
                    self._obs.emit(
                        active.context, f"replica:{node_id}",
                        ObsSpanKind.CLUSTER, now_s, now_s,
                        status=ObsSpanStatus.ERROR,
                        node=node_id, error=type(error).__name__,
                    )
                continue
            acked.append(node_id)
            self.metrics.on_replica_write(node_id, True)
            if active is not None:
                self._obs.emit(
                    active.context, f"replica:{node_id}",
                    ObsSpanKind.CLUSTER, now_s, now_s,
                    node=node_id,
                )
        if active is not None:
            active.finish(
                now_s,
                status=ObsSpanStatus.OK if acked else ObsSpanStatus.ERROR,
                acked=len(acked),
            )
        if acked:
            # Misses become repair debt only once one copy is durable.
            for node_id in missed:
                self.under_replicated.append((object_id, node_id))
            return RecognitionOutcome(
                object_id=object_id, replicas=replicas, acked=acked,
                missed=missed,
            )
        raise QuorumWriteError(
            f"recognition of {object_id} applied by no replica "
            f"(of {len(replicas)})"
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _read_order(self, replicas: list[int]) -> list[int]:
        """Deterministic rotation over the replica set (load balance)."""
        start = self._rotation % len(replicas)
        self._rotation += 1
        return replicas[start:] + replicas[:start]

    def request(
        self,
        op: str,
        *params,
        station: str = "ws-0",
        arrival_s: float = 0.0,
        ctx=None,
    ) -> tuple:
        """Serve one routable read with failover; ``(payload, service_s)``.

        When a span recorder is attached, the whole routed read is one
        ``route:<op>`` span (the router *is* the frontend protocol for
        its clients) with one ``cluster:read`` child per replica
        attempt: failed-over attempts finish ``retried``, hedge losers
        ``hedged_loser``, and the winning attempt carries the device /
        cache leaf spans plus whatever the member archiver emitted
        under it (codec decodes, index shard lookups).

        Raises
        ------
        TransientIOError
            Every replica failed and at least one failure was
            transient — the request is retryable.
        ClusterError
            Every replica failed hard (down / missing copy).
        """
        if op not in ROUTABLE_OPS:
            raise ClusterError(
                f"operation {op!r} is not routable (needs an object id); "
                f"routable: {ROUTABLE_OPS}"
            )
        object_id = params[0]
        route = None
        if self._obs is not None:
            route = self._obs.start(
                ctx if ctx is not None else current_span(),
                f"route:{op}", ObsSpanKind.SERVER, arrival_s,
                baggage={"station": station},
                object=str(object_id), op=op,
            )
        order = self._read_order(self._placement.replica_set(object_id))
        errors: list[Exception] = []
        for position, node_id in enumerate(order):
            node = self._nodes[node_id]
            attempt = None
            if route is not None:
                attempt = self._obs.start(
                    route.context, "cluster:read", ObsSpanKind.CLUSTER,
                    arrival_s, node=node_id, op=op,
                )
            try:
                if attempt is not None:
                    with bind_span(attempt.context):
                        payload, service = node.serve(op, *params)
                else:
                    payload, service = node.serve(op, *params)
            except FAILOVER_ERRORS as error:
                errors.append(error)
                if attempt is not None:
                    attempt.finish(
                        arrival_s, status=ObsSpanStatus.RETRIED,
                        error=type(error).__name__,
                    )
                if not node.is_up and node_id not in self._seen_down:
                    self._seen_down.add(node_id)
                    self.metrics.on_node_status(node_id, "down", arrival_s)
                next_id = (
                    order[position + 1] if position + 1 < len(order) else None
                )
                self.metrics.on_failover(node_id, next_id, op, arrival_s)
                continue
            if node_id in self._seen_down:
                self._seen_down.discard(node_id)
                self.metrics.on_node_status(node_id, "up", arrival_s)
            primary_service = service
            payload, service, served_by = self._maybe_hedge(
                op, params, order, position, payload, service, arrival_s,
                parent=route.context if route is not None else None,
            )
            self.metrics.on_read(
                served_by, station, service, service, arrival_s + service
            )
            if attempt is not None:
                if served_by == node_id:
                    self._attempt_leaf(attempt.context, arrival_s, service)
                    attempt.finish(arrival_s + service)
                else:
                    attempt.finish(
                        arrival_s + primary_service,
                        status=ObsSpanStatus.HEDGED_LOSER,
                    )
                route.finish(arrival_s + service, served_by=served_by)
            return payload, service
        self.metrics.on_read_failed(station, object_id, arrival_s)
        if route is not None:
            route.finish(
                arrival_s, status=ObsSpanStatus.ERROR,
                attempts=len(order),
            )
        transient = [e for e in errors if isinstance(e, TransientIOError)]
        if transient:
            raise TransientIOError(
                f"all {len(order)} replicas of {object_id} failed "
                "transiently"
            ) from transient[-1]
        raise ClusterError(
            f"no replica of {object_id} could serve {op}: "
            + "; ".join(type(e).__name__ for e in errors)
        ) from (errors[-1] if errors else None)

    def _attempt_leaf(self, ctx, arrival_s: float, service: float) -> None:
        """Device/cache attribution under the winning replica attempt."""
        if service > 0.0:
            self._obs.emit(
                ctx, "device", ObsSpanKind.DEVICE,
                arrival_s, arrival_s + service,
            )
        else:
            self._obs.emit(
                ctx, "cache", ObsSpanKind.CACHE, arrival_s, arrival_s,
                hit=True,
            )

    def _maybe_hedge(
        self, op, params, order, position, payload, service, arrival_s,
        parent=None,
    ):
        """Hedge a slow read on the next replica; fastest response wins."""
        if self.hedge_after_s is None or service <= self.hedge_after_s:
            return payload, service, order[position]
        for hedge_id in order[position + 1:]:
            node = self._nodes[hedge_id]
            attempt = None
            if self._obs is not None and parent is not None:
                attempt = self._obs.start(
                    parent, "cluster:read", ObsSpanKind.CLUSTER,
                    arrival_s, node=hedge_id, op=op, hedge=True,
                )
            try:
                if attempt is not None:
                    with bind_span(attempt.context):
                        hedge_payload, hedge_service = node.serve(op, *params)
                else:
                    hedge_payload, hedge_service = node.serve(op, *params)
            except FAILOVER_ERRORS as error:
                if attempt is not None:
                    attempt.finish(
                        arrival_s, status=ObsSpanStatus.HEDGED_LOSER,
                        error=type(error).__name__,
                    )
                continue
            won = hedge_service < service
            self.metrics.on_hedge(order[position], hedge_id, won, arrival_s)
            if attempt is not None:
                if won:
                    self._attempt_leaf(
                        attempt.context, arrival_s, hedge_service
                    )
                attempt.finish(
                    arrival_s + hedge_service,
                    status=(
                        ObsSpanStatus.OK if won
                        else ObsSpanStatus.HEDGED_LOSER
                    ),
                )
            if won:
                return hedge_payload, hedge_service, hedge_id
            return payload, service, order[position]
        return payload, service, order[position]

    def fetch(self, object_id, *, station: str = "ws-0", arrival_s: float = 0.0):
        """Fetch the stored form; returns a ``FetchResult``."""
        payload, _ = self.request(
            "fetch", object_id, station=station, arrival_s=arrival_s
        )
        return payload

    def fetch_object(
        self, object_id, *, station: str = "ws-0", arrival_s: float = 0.0
    ):
        """Rebuild the full object; ``(MultimediaObject, service_s)``."""
        return self.request(
            "fetch_object", object_id, station=station, arrival_s=arrival_s
        )

    # ------------------------------------------------------------------
    # frontend protocol (what fetch_with_retry speaks)
    # ------------------------------------------------------------------

    def submit(
        self,
        op: str,
        *params,
        station: str = "ws-0",
        arrival_s: float = 0.0,
        ctx=None,
    ) -> RouterFuture:
        """Admit one request; returns a resolved :class:`RouterFuture`.

        Validation errors (unroutable op) raise immediately, exactly as
        :meth:`ServerFrontend.submit` rejects unknown ops at admission;
        per-replica failures surface from ``result()`` so retry loops
        see them where they expect to.
        """
        if op not in ROUTABLE_OPS:
            raise ClusterError(
                f"operation {op!r} is not routable (needs an object id); "
                f"routable: {ROUTABLE_OPS}"
            )
        try:
            payload, service = self.request(
                op, *params, station=station, arrival_s=arrival_s, ctx=ctx
            )
        except (ClusterError, TransientIOError) as error:
            return RouterFuture(error=error)
        return RouterFuture(payload=payload, service_s=service)


# ----------------------------------------------------------------------
# deterministic virtual-time replay (the C-CLUSTER engine)
# ----------------------------------------------------------------------


@dataclass
class ClusterLoadReport:
    """Aggregate outcome of :func:`replay_cluster`."""

    latencies: list[float] = field(default_factory=list)
    failed_reads: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    cache_hits: int = 0
    piggybacks: int = 0
    #: node id -> reads served there.
    node_reads: dict[int, int] = field(default_factory=dict)
    #: node id -> simulated busy seconds on that node's device.
    node_busy_s: dict[int, float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.latencies)

    def percentile(self, p: float) -> float:
        return shared_percentile(self.latencies, p)

    @property
    def p50_s(self) -> float:
        return self.percentile(50)

    @property
    def p95_s(self) -> float:
        return self.percentile(95)

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0


class _NodeTimeline:
    """Virtual device state for one node during a replay."""

    __slots__ = ("node", "geometry", "device_free", "head", "cache", "flights")

    def __init__(self, node: ClusterNode, cache_bytes: int | None) -> None:
        self.node = node
        self.geometry = node.archiver.disk.geometry
        self.device_free = 0.0
        self.head = 0
        self.cache = LRUCache(cache_bytes) if cache_bytes else None
        self.flights: dict[str, float] = {}


def replay_cluster(
    router: ClusterRouter,
    schedule: list[LoadRequest],
    *,
    cache_bytes: int | None = None,
    hedge_fraction: float | None = None,
    hedge_floor_s: float = 0.05,
) -> ClusterLoadReport:
    """Replay a schedule against the cluster in virtual time.

    The cluster analogue of
    :func:`repro.server.loadgen.replay_virtual`: each node is an
    independent FIFO device timeline with its own head position and
    optional LRU cache.  For every request the router's replica set is
    consulted; replicas that are down, faulted, or missing the copy
    are failed over (``cluster.node_crash`` fires on each considered
    node's own fault plan, so an armed crash kills exactly the node —
    and only the node — the plan targets).  Among the healthy replicas
    the *shortest queue* serves — the load-balance rule that makes
    N nodes behave like an N-server queue instead of N/1 independent
    ones.

    With ``hedge_fraction`` set, a request whose predicted wait on the
    chosen node exceeds ``hedge_floor_s + hedge_fraction ×`` (its own
    service time) is also issued to the next-shortest replica; both
    devices are charged (hedges are not free) and the earlier finish
    wins.

    Fully deterministic for a given schedule and fault plan; the
    archiver is only consulted for extents, so the replay is
    O(requests).
    """
    timelines = {
        node_id: _NodeTimeline(node, cache_bytes)
        for node_id, node in router.nodes.items()
    }
    report = ClusterLoadReport()
    for node_id in router.nodes:
        report.node_reads[node_id] = 0
        report.node_busy_s[node_id] = 0.0
    metrics = router.metrics

    for request in sorted(schedule, key=lambda r: (r.arrival_s, r.request_id)):
        arrival = request.arrival_s
        key = f"obj/{request.object_id}"
        replicas = router.placement.replica_set(request.object_id)

        # Probe replicas in ring order: each probe passes the node's
        # serve guard, so an armed node crash fires here and the dead
        # replica is failed over, not counted as a failed read.
        candidates: list[tuple[_NodeTimeline, object]] = []
        for position, node_id in enumerate(replicas):
            timeline = timelines.get(node_id)
            if timeline is None:
                continue
            try:
                record = timeline.node.record(request.object_id)
            except FAILOVER_ERRORS:
                node = timeline.node
                if not node.is_up and node_id not in router._seen_down:
                    router._seen_down.add(node_id)
                    metrics.on_node_status(node_id, "down", arrival)
                next_id = (
                    replicas[position + 1]
                    if position + 1 < len(replicas) else None
                )
                report.failovers += 1
                metrics.on_failover(node_id, next_id, "fetch", arrival)
                continue
            candidates.append((timeline, record.extent))

        if not candidates:
            report.failed_reads += 1
            metrics.on_read_failed(request.station, request.object_id, arrival)
            continue

        # Cheapest outcomes first: a cache hit or an in-flight
        # piggyback on any healthy replica beats touching a device.
        hit = next(
            (
                (t, e) for t, e in candidates
                if t.cache is not None and t.cache.get(key) is not None
            ),
            None,
        )
        flight = min(
            (t for t, _ in candidates if t.flights.get(key, 0.0) > arrival),
            key=lambda t: (t.flights[key], t.node.node_id),
            default=None,
        )
        if flight is not None:
            timeline = flight
            finish = timeline.flights[key]
            latency = finish - arrival
            report.piggybacks += 1
            served_by, service = timeline.node.node_id, 0.0
        elif hit is not None:
            timeline, _ = hit
            latency = 0.0
            report.cache_hits += 1
            served_by, service = timeline.node.node_id, 0.0
        else:
            # Join the shortest queue among healthy replicas.
            candidates.sort(
                key=lambda pair: (pair[0].device_free, pair[0].node.node_id)
            )
            timeline, extent = candidates[0]
            start = max(timeline.device_free, arrival)
            service = timeline.geometry.access_time(timeline.head, extent)
            finish = start + service
            hedged = False
            if hedge_fraction is not None and len(candidates) > 1:
                deadline = arrival + hedge_floor_s + hedge_fraction * service
                if finish > deadline:
                    alt, alt_extent = candidates[1]
                    alt_start = max(alt.device_free, arrival)
                    alt_service = alt.geometry.access_time(
                        alt.head, alt_extent
                    )
                    alt_finish = alt_start + alt_service
                    # Hedges are not free: both devices do the work.
                    _charge(report, alt, alt_extent, alt_start, alt_service)
                    report.hedges += 1
                    won = alt_finish < finish
                    metrics.on_hedge(
                        timeline.node.node_id, alt.node.node_id, won, arrival
                    )
                    if won:
                        report.hedge_wins += 1
                    hedged = True
                    winner_finish = min(finish, alt_finish)
            _charge(report, timeline, extent, start, service)
            if timeline.cache is not None:
                timeline.cache.put(key, bytes(extent.length))
                timeline.flights[key] = finish
            if hedged:
                finish = winner_finish
            latency = finish - arrival
            served_by = timeline.node.node_id
        report.latencies.append(latency)
        report.node_reads[served_by] += 1
        metrics.on_read(
            served_by, request.station, latency, service, arrival + latency
        )
    return report


def _charge(
    report: ClusterLoadReport,
    timeline: _NodeTimeline,
    extent,
    start: float,
    service: float,
) -> None:
    """Charge one device read to a node's virtual timeline."""
    timeline.device_free = start + service
    timeline.head = extent.end
    report.node_busy_s[timeline.node.node_id] += service
