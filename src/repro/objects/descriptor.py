"""The multimedia object descriptor.

"The data interrelationships that are useful for multimedia object
presentation and browsing are encoded within the multimedia object
descriptor...  Thus the object descriptor points either to offsets
within the composition file or to offsets within the archiver."

The descriptor is the only serialized metadata: it locates every data
piece (text, voice, image, message recordings) either inside the
object's own composition file or at an extent of the archiver (to avoid
duplication for archived/mailed-within-organization objects).  Archiving
rebases composition offsets; mailing outside the organization resolves
archiver pointers by copying the data in.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace

from repro.errors import DescriptorError
from repro.ids import ObjectId


class DataSource(enum.Enum):
    """Where a data piece physically lives."""

    COMPOSITION = "composition"
    ARCHIVER = "archiver"


class DataKind(enum.Enum):
    """What a data piece contains."""

    TEXT = "text"
    VOICE = "voice"
    IMAGE = "image"
    MESSAGE_VOICE = "message_voice"
    META = "meta"


@dataclass(frozen=True, slots=True)
class DataLocation:
    """One entry of the descriptor's data map.

    ``offset``/``length`` address bytes in the composition file (for
    COMPOSITION entries) or an extent of the archiver (for ARCHIVER
    entries).
    """

    tag: str
    kind: DataKind
    source: DataSource
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise DescriptorError(f"invalid data location: {self}")


@dataclass
class Descriptor:
    """Serializable presentation metadata of one object."""

    object_id: ObjectId
    driving_mode: str
    locations: list[DataLocation] = field(default_factory=list)
    attributes: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def location(self, tag: str) -> DataLocation:
        """Find a data piece by tag.

        Raises
        ------
        DescriptorError
            If no piece has that tag.
        """
        for loc in self.locations:
            if loc.tag == tag:
                return loc
        raise DescriptorError(f"descriptor has no data tag {tag!r}")

    def has_tag(self, tag: str) -> bool:
        """Whether a data piece with ``tag`` exists."""
        return any(loc.tag == tag for loc in self.locations)

    def archiver_tags(self) -> list[str]:
        """Tags of all pieces still pointing into the archiver."""
        return [l.tag for l in self.locations if l.source is DataSource.ARCHIVER]

    def rebased(self, base_offset: int) -> "Descriptor":
        """Composition offsets incremented by ``base_offset``.

        "In the case that objects are archived the offsets of the
        descriptor have to be incremented by the offset where the
        composition file is placed within the archiver."  A negative
        ``base_offset`` undoes a prior rebase (when shipping the stored
        form back out as a composition-relative unit); offsets must not
        go negative.

        Raises
        ------
        DescriptorError
            If any composition offset would become negative.
        """
        moved = []
        for loc in self.locations:
            if loc.source is DataSource.COMPOSITION:
                new_offset = loc.offset + base_offset
                if new_offset < 0:
                    raise DescriptorError(
                        f"rebase by {base_offset} drives {loc.tag!r} negative"
                    )
                moved.append(replace(loc, offset=new_offset))
            else:
                moved.append(loc)
        return Descriptor(
            object_id=self.object_id,
            driving_mode=self.driving_mode,
            locations=moved,
            attributes=dict(self.attributes),
            extra=dict(self.extra),
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the descriptor to a JSON byte string."""
        payload = {
            "object_id": self.object_id.value,
            "driving_mode": self.driving_mode,
            "locations": [
                {
                    "tag": loc.tag,
                    "kind": loc.kind.value,
                    "source": loc.source.value,
                    "offset": loc.offset,
                    "length": loc.length,
                }
                for loc in self.locations
            ],
            "attributes": self.attributes,
            "extra": self.extra,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Descriptor":
        """Rebuild a descriptor from its serialized form.

        Raises
        ------
        DescriptorError
            If the bytes are not a valid descriptor.
        """
        try:
            payload = json.loads(data.decode("utf-8"))
            return cls(
                object_id=ObjectId(payload["object_id"]),
                driving_mode=payload["driving_mode"],
                locations=[
                    DataLocation(
                        tag=entry["tag"],
                        kind=DataKind(entry["kind"]),
                        source=DataSource(entry["source"]),
                        offset=entry["offset"],
                        length=entry["length"],
                    )
                    for entry in payload["locations"]
                ],
                attributes=payload.get("attributes", {}),
                extra=payload.get("extra", {}),
            )
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise DescriptorError(f"malformed descriptor bytes: {exc}") from exc
