"""Relevant objects and relevances.

"Relevant objects are objects which contain information related to the
information which exists in a section of a given (parent) object.
Relevant objects are independent multimedia objects (e.g. they have
existence by themselves) in contrast to voice logical messages and
visual logical messages which have only existence as a part of a
multimedia object."

A :class:`RelevantLink` lives in the *parent* object's descriptor: it
pairs an on-screen indicator with the target object and with the
*relevances* — the sections of the target (text spans, image regions,
voice segments) that relate to the parent section the indicator marks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.ids import ImageId, IndicatorId, ObjectId, SegmentId
from repro.images.geometry import Polygon
from repro.objects.anchors import Anchor


class RelevanceKind(enum.Enum):
    """Medium of a relevance inside the relevant object."""

    TEXT = "text"
    IMAGE = "image"
    VOICE = "voice"


@dataclass
class Relevance:
    """One related section inside the relevant (target) object.

    "Relevances to text sections are indicated graphically with
    beginning and end indicators.  Relevances to images are indicated
    by closed polygons displayed at the top of the image.  Relevances
    to voice segments are indicated by the fact that the voice segment
    is played independently."
    """

    kind: RelevanceKind
    segment_id: SegmentId | None = None
    text_start: int = 0
    text_end: int = 0
    image_id: ImageId | None = None
    region: Polygon | None = None
    voice_start: float = 0.0
    voice_end: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is RelevanceKind.TEXT:
            if self.segment_id is None or self.text_end < self.text_start:
                raise DescriptorError("text relevance needs a segment and a span")
        elif self.kind is RelevanceKind.IMAGE:
            if self.image_id is None or self.region is None:
                raise DescriptorError("image relevance needs an image and a polygon")
        elif self.kind is RelevanceKind.VOICE:
            if self.segment_id is None or self.voice_end <= self.voice_start:
                raise DescriptorError("voice relevance needs a segment and a span")


@dataclass
class RelevantLink:
    """A relevant-object indicator in the parent object.

    Attributes
    ----------
    indicator_id:
        Identity of the on-screen indicator ("the user can browse
        through a relevant object by explicitly selecting the relevant
        object indicator using the mouse").
    label:
        Text shown beside the indicator (e.g. "Hospitals").
    target_object_id:
        The relevant object.  It may be the parent itself — "an object
        may have several relevant objects (including itself)".
    parent_anchor:
        The section of the parent object the relevant object relates
        to; the indicator is displayed while the user browses inside
        this section.  ``None`` makes the indicator global.
    relevances:
        Related sections inside the target object.
    """

    indicator_id: IndicatorId
    label: str
    target_object_id: ObjectId
    parent_anchor: Anchor | None = None
    relevances: list[Relevance] = field(default_factory=list)
