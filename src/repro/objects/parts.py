"""Text and voice segments: the one-dimensional parts of an object.

Symmetry is the point of the paper: a :class:`TextSegment` and a
:class:`VoiceSegment` expose the same trio of browsable aspects —
a presentation form (visual pages / audio pages), logical components
(the :class:`~repro.objects.logical.LogicalIndex`), and content terms
for pattern matching (tokenized text / recognized utterances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.audio.pauses import PauseIndex
from repro.audio.recognition import RecognizedUtterance
from repro.audio.signal import Recording
from repro.ids import SegmentId
from repro.objects.logical import LogicalIndex


@dataclass
class TextSegment:
    """A text segment holding declarative markup.

    The markup is parsed on demand into a document, plain text, and a
    logical index (derived from the tags the author inserted: "For
    objects which have been generated interactively in a given
    environment, these subdivisions can be easily identified by the
    tags that the user inserts in order to format the text").
    """

    segment_id: SegmentId
    markup: str

    @cached_property
    def document(self):
        """The parsed markup document (:class:`repro.text.markup.Document`)."""
        from repro.text.markup import parse_markup

        return parse_markup(self.markup)

    @cached_property
    def plain_text(self) -> str:
        """Tag-free text of the segment, the offset space for anchors."""
        return self.document.plain_text

    @cached_property
    def logical_index(self) -> LogicalIndex:
        """Logical structure derived from the markup tags."""
        return self.document.logical_index

    @property
    def nbytes(self) -> int:
        """Storage size of the raw markup."""
        return len(self.markup.encode("utf-8"))


@dataclass
class VoiceSegment:
    """A voice segment: digitized speech plus its MINOS-side metadata.

    Attributes
    ----------
    segment_id:
        Identifier within the owning object.
    recording:
        The digitized voice.
    logical_index:
        Logical components, identified manually "at the time of the
        insertion by pressing the appropriate buttons (or at some later
        point in time)".  Empty when the segment was never edited.
    utterances:
        Recognized utterances produced at insertion or idle time; they
        give the voice part content addressability symmetric to text.
    """

    segment_id: SegmentId
    recording: Recording
    logical_index: LogicalIndex = field(default_factory=LogicalIndex.empty)
    utterances: list[RecognizedUtterance] = field(default_factory=list)

    @cached_property
    def pause_index(self) -> PauseIndex:
        """Detected and classified pauses (built on first use).

        Pause browsing "is always available to the user, independently
        on the degree of manual editing" — hence it is derived from the
        waveform, not from the logical index.
        """
        return PauseIndex.build(self.recording)

    @property
    def duration(self) -> float:
        """Length of the voice segment in seconds."""
        return self.recording.duration

    @property
    def nbytes(self) -> int:
        """Storage size of the companded waveform."""
        return self.recording.nbytes

    def utterance_terms(self) -> set[str]:
        """Distinct recognized terms (feeds the server's voice index)."""
        return {u.term for u in self.utterances}
