"""The designer's presentation-form specification.

A visual mode object's presentation form is an ordered sequence of
items: flowed text (with embedded images), full-page images,
transparency sets, overwrite pages, process simulations and tours.
An audio mode object's presentation form is the ordered voice part.
The presentation manager compiles this specification, together with
the object's parts, into the concrete page sequence the user browses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.errors import DescriptorError
from repro.ids import ImageId, MessageId, SegmentId


@dataclass(frozen=True, slots=True)
class TextFlow:
    """Flow a text segment (and its embedded images) into pages."""

    segment_id: SegmentId


@dataclass(frozen=True, slots=True)
class ImagePage:
    """A page devoted to one image."""

    image_id: ImageId


class TransparencyMode(enum.Enum):
    """Designer-chosen way of displaying a transparency set.

    STACKED: "displaying every transparency on the top of one another
    (and on the top of the last page before the transparency set)".
    SEPARATE: "displaying every transparency of the set separately, on
    the top of the last page before the transparency set".
    """

    STACKED = "stacked"
    SEPARATE = "separate"


@dataclass(frozen=True)
class TransparencySet:
    """An ordered set of consecutive transparencies."""

    members: tuple[ImageId, ...]
    mode: TransparencyMode = TransparencyMode.STACKED

    def __init__(
        self, members, mode: TransparencyMode = TransparencyMode.STACKED
    ) -> None:
        object.__setattr__(self, "members", tuple(members))
        object.__setattr__(self, "mode", mode)
        if not self.members:
            raise DescriptorError("a transparency set needs at least one member")


@dataclass(frozen=True, slots=True)
class OverwritePage:
    """A page whose drawn pixels replace the previous page's content
    while leaving everything else intact."""

    image_id: ImageId


class SimStepKind(enum.Enum):
    """How a process-simulation step composes with the previous page."""

    NEW_PAGE = "new_page"
    TRANSPARENCY = "transparency"
    OVERWRITE = "overwrite"


@dataclass(frozen=True, slots=True)
class SimStep:
    """One automatically displayed page of a process simulation.

    ``message_id`` optionally names a logical message attached to the
    step; when it is an audio message, "the next visual page is only
    shown after the logical audio message has been played".
    """

    image_id: ImageId
    kind: SimStepKind = SimStepKind.NEW_PAGE
    message_id: MessageId | None = None


@dataclass(frozen=True)
class ProcessSimulation:
    """An ordered set of consecutive visual pages shown automatically.

    ``interval_s`` is "the relative speed by which pages are placed one
    on the top of another... set at object creation time but it may be
    altered by the user".
    """

    steps: tuple[SimStep, ...]
    interval_s: float = 1.0

    def __init__(self, steps, interval_s: float = 1.0) -> None:
        object.__setattr__(self, "steps", tuple(steps))
        object.__setattr__(self, "interval_s", interval_s)
        if not self.steps:
            raise DescriptorError("a process simulation needs at least one step")
        if self.interval_s <= 0:
            raise DescriptorError(
                f"simulation interval must be positive: {self.interval_s}"
            )


@dataclass(frozen=True, slots=True)
class TourStop:
    """One position of the tour's rectangle, with an optional message."""

    x: int
    y: int
    message_id: MessageId | None = None


@dataclass(frozen=True)
class Tour:
    """A designer-defined sequence of views on an image.

    "A tour is defined by a rectangle and a sequence of points
    indicating the position of the rectangle on the large image or on a
    representation of it."
    """

    image_id: ImageId
    window_width: int
    window_height: int
    stops: tuple[TourStop, ...]
    dwell_s: float = 2.0

    def __init__(
        self,
        image_id: ImageId,
        window_width: int,
        window_height: int,
        stops,
        dwell_s: float = 2.0,
    ) -> None:
        object.__setattr__(self, "image_id", image_id)
        object.__setattr__(self, "window_width", window_width)
        object.__setattr__(self, "window_height", window_height)
        object.__setattr__(self, "stops", tuple(stops))
        object.__setattr__(self, "dwell_s", dwell_s)
        if self.window_width <= 0 or self.window_height <= 0:
            raise DescriptorError("tour window must have positive size")
        if not self.stops:
            raise DescriptorError("a tour needs at least one stop")
        if self.dwell_s <= 0:
            raise DescriptorError(f"tour dwell must be positive: {self.dwell_s}")


PresentationItem = Union[
    TextFlow, ImagePage, TransparencySet, OverwritePage, ProcessSimulation, Tour
]


@dataclass
class PresentationSpec:
    """The ordered presentation form of a visual mode object.

    Audio mode objects use ``audio_order`` instead: the sequence of
    voice segments forming the object voice part.
    """

    items: list[PresentationItem] = field(default_factory=list)
    audio_order: list[SegmentId] = field(default_factory=list)
    audio_page_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.audio_page_seconds <= 0:
            raise DescriptorError(
                f"audio page length must be positive: {self.audio_page_seconds}"
            )
