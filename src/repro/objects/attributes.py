"""Attribute part of a multimedia object.

Attributes are the formatted-data component of an object (author, date,
patient id, ...).  They are what traditional DBMS machinery handles
well; here they feed the server's attribute index for content queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

AttributeValue = Union[str, int, float, bool]


@dataclass
class AttributeSet:
    """An immutable-by-convention mapping of attribute names to values.

    Values are restricted to scalar types so the set is trivially
    serializable into the object descriptor.
    """

    _values: dict[str, AttributeValue] = field(default_factory=dict)

    @classmethod
    def of(cls, **values: AttributeValue) -> "AttributeSet":
        """Build an attribute set from keyword arguments."""
        instance = cls()
        for name, value in values.items():
            instance.set(name, value)
        return instance

    def set(self, name: str, value: AttributeValue) -> None:
        """Set an attribute, validating the value type."""
        if not isinstance(value, (str, int, float, bool)):
            raise TypeError(
                f"attribute {name!r} has unsupported type {type(value).__name__}"
            )
        self._values[name] = value

    def get(self, name: str, default: AttributeValue | None = None):
        """Read an attribute, returning ``default`` when absent."""
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[str, AttributeValue]]:
        return iter(sorted(self._values.items()))

    def names(self) -> list[str]:
        """Attribute names, sorted."""
        return sorted(self._values)

    def as_dict(self) -> dict[str, AttributeValue]:
        """A plain-dict copy, for the descriptor."""
        return dict(self._values)

    def matches(self, **criteria: AttributeValue) -> bool:
        """Equality match on every criterion (used by attribute queries)."""
        return all(self._values.get(name) == value for name, value in criteria.items())
