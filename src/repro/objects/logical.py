"""Logical structure of text and voice segments.

"A text segment of a multimedia object in MINOS may be logically
subdivided into title, abstract, chapters, and references.  Each
chapter is subdivided into sections, sections into paragraphs,
paragraphs into sentences and sentences into words.  A voice segment of
a multimedia object in MINOS may also be subdivided into logical
components as in text."

The same tree type serves both media: positions are character offsets
for text and seconds for voice.  The paper stresses that the *degree*
of logical markup varies per object (only chapters for one object,
chapters+sections+paragraphs for another); the tree simply contains
whatever units were identified, and the browsing menus are derived from
what is present.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator


class LogicalUnitKind(enum.Enum):
    """Kinds of logical unit, from coarsest to finest."""

    TITLE = "title"
    ABSTRACT = "abstract"
    CHAPTER = "chapter"
    SECTION = "section"
    PARAGRAPH = "paragraph"
    SENTENCE = "sentence"
    WORD = "word"
    REFERENCES = "references"

    @property
    def rank(self) -> int:
        """Nesting rank; smaller values nest outside larger ones."""
        return _RANKS[self]


_RANKS = {
    LogicalUnitKind.TITLE: 0,
    LogicalUnitKind.ABSTRACT: 0,
    LogicalUnitKind.REFERENCES: 0,
    LogicalUnitKind.CHAPTER: 1,
    LogicalUnitKind.SECTION: 2,
    LogicalUnitKind.PARAGRAPH: 3,
    LogicalUnitKind.SENTENCE: 4,
    LogicalUnitKind.WORD: 5,
}


@dataclass
class LogicalUnit:
    """One node of the logical structure tree.

    ``start`` and ``end`` are character offsets for text segments and
    seconds for voice segments; the tree code never interprets them
    beyond ordering.
    """

    kind: LogicalUnitKind
    start: float
    end: float
    label: str = ""
    children: list["LogicalUnit"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"logical unit has negative extent: [{self.start}, {self.end})"
            )

    def contains(self, position: float) -> bool:
        """Whether ``position`` falls inside this unit."""
        return self.start <= position < self.end

    def walk(self) -> Iterator["LogicalUnit"]:
        """Pre-order traversal of this unit and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class LogicalIndex:
    """Flat, queryable index over a forest of logical units.

    Supports the browsing operations the paper derives from logical
    structure: "see or hear the page with the next or previous start of
    a logical unit (such as chapter, section, etc.)" — and reports
    which unit kinds are present, which determines the menu options.
    """

    def __init__(self, roots: list[LogicalUnit]) -> None:
        self._roots = list(roots)
        self._by_kind: dict[LogicalUnitKind, list[LogicalUnit]] = {}
        for root in self._roots:
            for unit in root.walk():
                self._by_kind.setdefault(unit.kind, []).append(unit)
        for units in self._by_kind.values():
            units.sort(key=lambda u: u.start)
        self._starts: dict[LogicalUnitKind, list[float]] = {
            kind: [u.start for u in units] for kind, units in self._by_kind.items()
        }

    @property
    def roots(self) -> list[LogicalUnit]:
        """Top-level units."""
        return list(self._roots)

    def kinds_present(self) -> set[LogicalUnitKind]:
        """Unit kinds that were identified for this segment."""
        return set(self._by_kind)

    def units(self, kind: LogicalUnitKind) -> list[LogicalUnit]:
        """All units of ``kind``, in position order."""
        return list(self._by_kind.get(kind, ()))

    def count(self, kind: LogicalUnitKind) -> int:
        """Number of units of ``kind``."""
        return len(self._by_kind.get(kind, ()))

    def next_start(self, kind: LogicalUnitKind, position: float) -> LogicalUnit | None:
        """First unit of ``kind`` starting strictly after ``position``."""
        starts = self._starts.get(kind)
        if not starts:
            return None
        i = bisect_right(starts, position)
        if i >= len(starts):
            return None
        return self._by_kind[kind][i]

    def previous_start(
        self, kind: LogicalUnitKind, position: float
    ) -> LogicalUnit | None:
        """Last unit of ``kind`` starting strictly before ``position``."""
        starts = self._starts.get(kind)
        if not starts:
            return None
        i = bisect_right(starts, position) - 1
        # bisect_right lands on units starting at or before `position`;
        # step back once more when we are exactly at a unit start.
        if i >= 0 and starts[i] == position:
            i -= 1
        if i < 0:
            return None
        return self._by_kind[kind][i]

    def enclosing(self, kind: LogicalUnitKind, position: float) -> LogicalUnit | None:
        """The unit of ``kind`` containing ``position``, if any."""
        units = self._by_kind.get(kind)
        if not units:
            return None
        starts = self._starts[kind]
        i = bisect_right(starts, position) - 1
        if i < 0:
            return None
        unit = units[i]
        return unit if unit.contains(position) else None

    @classmethod
    def empty(cls) -> "LogicalIndex":
        """An index with no logical structure at all.

        Per the paper, "it may not be desirable to manually edit all
        incoming information" — such objects still support page and
        pause browsing, just no logical-unit options.
        """
        return cls([])
