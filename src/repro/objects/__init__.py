"""The multimedia object model.

"The unit of information in MINOS is a multimedia object.  Multimedia
objects may be composed of attributes, an object text part (collection
of text segments), an object voice part (collection of voice segments),
and an object image part (collection of images)."

This package defines that model: parts and segments, the logical
structure tree (title/abstract/chapter/section/paragraph/sentence/word)
shared symmetrically by text and voice, anchors, voice and visual
logical messages, relevant-object links with relevances, the object
descriptor, and the :class:`~repro.objects.model.MultimediaObject`
container with its editing/archived state machine.
"""

from repro.objects.attributes import AttributeSet
from repro.objects.logical import LogicalIndex, LogicalUnit, LogicalUnitKind
from repro.objects.anchors import (
    Anchor,
    ImageAnchor,
    TextAnchor,
    VoiceAnchor,
    VoicePointAnchor,
)
from repro.objects.parts import TextSegment, VoiceSegment
from repro.objects.messages import VisualMessage, VisualMessageContent, VoiceMessage
from repro.objects.relationships import Relevance, RelevanceKind, RelevantLink
from repro.objects.presentation import (
    ImagePage,
    PresentationItem,
    PresentationSpec,
    ProcessSimulation,
    SimStep,
    SimStepKind,
    TextFlow,
    Tour,
    TourStop,
    TransparencyMode,
    TransparencySet,
    OverwritePage,
)
from repro.objects.descriptor import DataKind, DataLocation, DataSource, Descriptor
from repro.objects.model import DrivingMode, MultimediaObject, ObjectState

__all__ = [
    "DataKind",
    "DataLocation",
    "DataSource",
    "Descriptor",
    "ImagePage",
    "OverwritePage",
    "PresentationItem",
    "PresentationSpec",
    "ProcessSimulation",
    "SimStep",
    "SimStepKind",
    "TextFlow",
    "Tour",
    "TourStop",
    "TransparencyMode",
    "TransparencySet",
    "VisualMessageContent",
    "Anchor",
    "AttributeSet",
    "DrivingMode",
    "ImageAnchor",
    "LogicalIndex",
    "LogicalUnit",
    "LogicalUnitKind",
    "MultimediaObject",
    "ObjectState",
    "Relevance",
    "RelevanceKind",
    "RelevantLink",
    "TextAnchor",
    "TextSegment",
    "VisualMessage",
    "VoiceAnchor",
    "VoicePointAnchor",
    "VoiceMessage",
    "VoiceSegment",
]
