"""Voice and visual logical messages.

"Voice logical messages are unstructured audio segments (typically
short).  They can be attached to either visual mode objects or audio
mode objects...  The semantics are that the voice logical message will
be played when the user first branches into the corresponding segments
during browsing."

"Visual logical messages are short (at most one visual page long)
segments of visual information (text and/or images).  They are
unstructured in the sense that they are always displayed in the same
page of the presentation form (top part)."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.signal import Recording
from repro.errors import DescriptorError
from repro.ids import ImageId, MessageId
from repro.objects.anchors import Anchor, TextAnchor, VoiceAnchor, VoicePointAnchor


@dataclass
class VoiceMessage:
    """A short, unstructured audio annotation attached to anchors.

    May be attached to overlapping text segments or images; each anchor
    triggers independently.  On audio mode objects "the logical voice
    message is played before the voice of the related segment".
    """

    message_id: MessageId
    recording: Recording
    #: Branch-trigger anchors.  May be empty for messages that are
    #: played only when a tour stop or process-simulation step
    #: references them by id.
    anchors: list[Anchor] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Playback length in seconds."""
        return self.recording.duration

    def anchors_covering_text(self, segment_id, offset: int) -> list[TextAnchor]:
        """Text anchors of this message covering a character offset."""
        return [
            a
            for a in self.anchors
            if isinstance(a, TextAnchor)
            and a.segment_id == segment_id
            and a.covers(offset)
        ]

    def anchors_covering_voice(self, segment_id, time: float) -> list[Anchor]:
        """Voice anchors (span or point) of this message covering a time.

        Point anchors trigger when playback enters a small neighbourhood
        after the point — a point has zero measure, and the paper wants
        the message to play when the user "branches into" that spot.
        """
        hits: list[Anchor] = []
        for anchor in self.anchors:
            if isinstance(anchor, VoiceAnchor):
                if anchor.segment_id == segment_id and anchor.covers(time):
                    hits.append(anchor)
            elif isinstance(anchor, VoicePointAnchor):
                if anchor.segment_id == segment_id and 0 <= time - anchor.time < 1.0:
                    hits.append(anchor)
        return hits


@dataclass
class VisualMessageContent:
    """The content of a visual logical message: text and/or images.

    Limited to one visual page; the paginator enforces the limit when
    the message is rendered into the pinned (top) region.
    """

    text: str = ""
    image_ids: list[ImageId] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.text and not self.image_ids:
            raise DescriptorError("a visual message needs text and/or images")


@dataclass
class VisualMessage:
    """A one-page visual annotation pinned to the top of the display.

    On a visual mode object the message stays at the top of the page
    while "the lower part of the screen is devoted to the display of
    parts of the related visual segment" — exactly the x-ray example of
    Figures 3 and 4.  ``display_once`` implements the user option that
    the message "is displayed only once whenever the user branches
    during browsing from a non-related segment at any position within a
    related segment".
    """

    message_id: MessageId
    content: VisualMessageContent
    #: Branch-trigger anchors; may be empty for tour/simulation-step
    #: messages (see :class:`VoiceMessage`).
    anchors: list[Anchor] = field(default_factory=list)
    display_once: bool = False

    def covers_text(self, segment_id, start: int, end: int) -> bool:
        """Whether any text anchor overlaps the span ``[start, end)``."""
        return any(
            isinstance(a, TextAnchor)
            and a.segment_id == segment_id
            and a.overlaps(start, end)
            for a in self.anchors
        )

    def covers_voice(self, segment_id, time: float) -> bool:
        """Whether any voice anchor covers playback position ``time``."""
        return any(
            isinstance(a, VoiceAnchor)
            and a.segment_id == segment_id
            and a.covers(time)
            for a in self.anchors
        )
