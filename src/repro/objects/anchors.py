"""Anchors: the places inside an object that messages and links attach to.

The paper is precise about this: voice logical messages on visual mode
objects "may be associated with text segments or images.  (Text is
linear.  Two points identify the beginning and the end of a text
segment.  The two points may coincide.)  When attached to audio mode
objects they may be associated with voice segments or with particular
points within the object voice part."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.ids import ImageId, SegmentId


@dataclass(frozen=True, slots=True)
class TextAnchor:
    """A span of a text segment, in character offsets.

    ``start == end`` is legal — "the two points may coincide" — and
    denotes a single insertion point.
    """

    segment_id: SegmentId
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid text anchor span [{self.start}, {self.end}]")

    def covers(self, offset: float) -> bool:
        """Whether a character offset falls inside the anchored span.

        A zero-length anchor covers exactly its point.
        """
        if self.start == self.end:
            return offset == self.start
        return self.start <= offset < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """Whether the anchored span intersects ``[start, end)``."""
        if self.start == self.end:
            return start <= self.start < end
        return self.start < end and start < self.end


@dataclass(frozen=True, slots=True)
class ImageAnchor:
    """Attachment to one image of the object image part."""

    image_id: ImageId


@dataclass(frozen=True, slots=True)
class VoiceAnchor:
    """A time span of a voice segment, in seconds."""

    segment_id: SegmentId
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid voice anchor span [{self.start}, {self.end}]")

    def covers(self, time: float) -> bool:
        """Whether a playback position falls inside the anchored span."""
        return self.start <= time < self.end


@dataclass(frozen=True, slots=True)
class VoicePointAnchor:
    """A particular point within the object voice part."""

    segment_id: SegmentId
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"invalid voice point anchor at {self.time}")


Anchor = Union[TextAnchor, ImageAnchor, VoiceAnchor, VoicePointAnchor]
