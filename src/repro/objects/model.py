"""The multimedia object itself.

"Multimedia objects may be in an editing state or in an archived state.
Objects in an editing state are allowed to be modified.  Objects in the
archived state are not allowed to be modified.  The presentation and
browsing capabilities described in this paper are applicable to
multimedia objects which are in the archived state."

"Each multimedia object has a driving mode associated with it.  The
driving mode is the principal way of presenting the information in the
object, and it can be either visual or audio."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DescriptorError, ObjectStateError
from repro.ids import ImageId, MessageId, ObjectId, SegmentId
from repro.images.image import Image
from repro.objects.attributes import AttributeSet
from repro.objects.messages import VisualMessage, VoiceMessage
from repro.objects.parts import TextSegment, VoiceSegment
from repro.objects.presentation import PresentationSpec
from repro.objects.relationships import RelevantLink


class DrivingMode(enum.Enum):
    """Principal way of presenting the object."""

    VISUAL = "visual"
    AUDIO = "audio"


class ObjectState(enum.Enum):
    """Lifecycle state of a multimedia object."""

    EDITING = "editing"
    ARCHIVED = "archived"


@dataclass
class MultimediaObject:
    """A complete multimedia object.

    The object carries its parts, its logical messages, its
    relationships to other objects ("information about the related
    objects is kept within the object itself"), and its presentation
    specification.  Mutation is only permitted while EDITING.
    """

    object_id: ObjectId
    driving_mode: DrivingMode = DrivingMode.VISUAL
    attributes: AttributeSet = field(default_factory=AttributeSet)
    text_segments: list[TextSegment] = field(default_factory=list)
    voice_segments: list[VoiceSegment] = field(default_factory=list)
    images: list[Image] = field(default_factory=list)
    voice_messages: list[VoiceMessage] = field(default_factory=list)
    visual_messages: list[VisualMessage] = field(default_factory=list)
    relevant_links: list[RelevantLink] = field(default_factory=list)
    presentation: PresentationSpec = field(default_factory=PresentationSpec)
    state: ObjectState = ObjectState.EDITING

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------

    def _require_editing(self) -> None:
        if self.state is not ObjectState.EDITING:
            raise ObjectStateError(
                f"object {self.object_id} is archived and cannot be modified"
            )

    def require_archived(self) -> None:
        """Raise unless the object is archived (presentable)."""
        if self.state is not ObjectState.ARCHIVED:
            raise ObjectStateError(
                f"object {self.object_id} is still being edited; archive it "
                "before presenting through the archiver interface"
            )

    def archive(self) -> "MultimediaObject":
        """Transition to the archived state.

        Validates referential integrity first: every identifier named
        by messages, links and the presentation spec must resolve.
        """
        self._require_editing()
        self.validate()
        self.state = ObjectState.ARCHIVED
        return self

    # ------------------------------------------------------------------
    # mutation (editing state only)
    # ------------------------------------------------------------------

    def add_text_segment(self, segment: TextSegment) -> None:
        """Append a text segment to the object text part."""
        self._require_editing()
        self.text_segments.append(segment)

    def add_voice_segment(self, segment: VoiceSegment) -> None:
        """Append a voice segment to the object voice part."""
        self._require_editing()
        self.voice_segments.append(segment)

    def add_image(self, image: Image) -> None:
        """Append an image to the object image part."""
        self._require_editing()
        self.images.append(image)

    def attach_voice_message(self, message: VoiceMessage) -> None:
        """Attach a voice logical message."""
        self._require_editing()
        self.voice_messages.append(message)

    def attach_visual_message(self, message: VisualMessage) -> None:
        """Attach a visual logical message."""
        self._require_editing()
        self.visual_messages.append(message)

    def add_relevant_link(self, link: RelevantLink) -> None:
        """Record a relationship to a relevant object."""
        self._require_editing()
        self.relevant_links.append(link)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def text_segment(self, segment_id: SegmentId) -> TextSegment:
        """Find a text segment by id.

        Raises
        ------
        DescriptorError
            If the segment does not exist.
        """
        for segment in self.text_segments:
            if segment.segment_id == segment_id:
                return segment
        raise DescriptorError(
            f"object {self.object_id} has no text segment {segment_id}"
        )

    def voice_segment(self, segment_id: SegmentId) -> VoiceSegment:
        """Find a voice segment by id."""
        for segment in self.voice_segments:
            if segment.segment_id == segment_id:
                return segment
        raise DescriptorError(
            f"object {self.object_id} has no voice segment {segment_id}"
        )

    def image(self, image_id: ImageId) -> Image:
        """Find an image by id."""
        for image in self.images:
            if image.image_id == image_id:
                return image
        raise DescriptorError(f"object {self.object_id} has no image {image_id}")

    def message(self, message_id: MessageId) -> VoiceMessage | VisualMessage:
        """Find a logical message (voice or visual) by id."""
        for message in self.voice_messages:
            if message.message_id == message_id:
                return message
        for message in self.visual_messages:
            if message.message_id == message_id:
                return message
        raise DescriptorError(
            f"object {self.object_id} has no logical message {message_id}"
        )

    def related_object_ids(self) -> list[ObjectId]:
        """Identifiers of all relevant objects, in link order."""
        return [link.target_object_id for link in self.relevant_links]

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity of the object's internal wiring.

        Raises
        ------
        DescriptorError
            On the first dangling reference found.
        """
        from repro.objects.anchors import (
            ImageAnchor,
            TextAnchor,
            VoiceAnchor,
            VoicePointAnchor,
        )
        from repro.objects.presentation import (
            ImagePage,
            OverwritePage,
            ProcessSimulation,
            TextFlow,
            Tour,
            TransparencySet,
        )

        text_ids = {s.segment_id for s in self.text_segments}
        voice_ids = {s.segment_id for s in self.voice_segments}
        image_ids = {i.image_id for i in self.images}
        message_ids = {m.message_id for m in self.voice_messages} | {
            m.message_id for m in self.visual_messages
        }

        def check_anchor(anchor, owner: str) -> None:
            if isinstance(anchor, TextAnchor) and anchor.segment_id not in text_ids:
                raise DescriptorError(f"{owner}: dangling text anchor {anchor}")
            if isinstance(anchor, ImageAnchor) and anchor.image_id not in image_ids:
                raise DescriptorError(f"{owner}: dangling image anchor {anchor}")
            if (
                isinstance(anchor, (VoiceAnchor, VoicePointAnchor))
                and anchor.segment_id not in voice_ids
            ):
                raise DescriptorError(f"{owner}: dangling voice anchor {anchor}")

        for message in self.voice_messages + self.visual_messages:
            for anchor in message.anchors:
                check_anchor(anchor, f"message {message.message_id}")
        for message in self.visual_messages:
            for image_id in message.content.image_ids:
                if image_id not in image_ids:
                    raise DescriptorError(
                        f"visual message {message.message_id} references "
                        f"missing image {image_id}"
                    )
        for link in self.relevant_links:
            if link.parent_anchor is not None:
                check_anchor(link.parent_anchor, f"link {link.indicator_id}")
        for item in self.presentation.items:
            if isinstance(item, TextFlow) and item.segment_id not in text_ids:
                raise DescriptorError(f"presentation: missing text {item.segment_id}")
            elif isinstance(item, (ImagePage, OverwritePage)):
                if item.image_id not in image_ids:
                    raise DescriptorError(
                        f"presentation: missing image {item.image_id}"
                    )
            elif isinstance(item, TransparencySet):
                for member in item.members:
                    if member not in image_ids:
                        raise DescriptorError(
                            f"presentation: missing transparency {member}"
                        )
            elif isinstance(item, ProcessSimulation):
                for step in item.steps:
                    if step.image_id not in image_ids:
                        raise DescriptorError(
                            f"presentation: missing simulation image {step.image_id}"
                        )
                    if step.message_id is not None and step.message_id not in message_ids:
                        raise DescriptorError(
                            "presentation: missing simulation message "
                            f"{step.message_id}"
                        )
            elif isinstance(item, Tour):
                if item.image_id not in image_ids:
                    raise DescriptorError(
                        f"presentation: missing tour image {item.image_id}"
                    )
                for stop in item.stops:
                    if stop.message_id is not None and stop.message_id not in message_ids:
                        raise DescriptorError(
                            f"presentation: missing tour message {stop.message_id}"
                        )
        for segment_id in self.presentation.audio_order:
            if segment_id not in voice_ids:
                raise DescriptorError(
                    f"presentation: missing voice segment {segment_id}"
                )

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate total storage size of the object's parts."""
        total = 0
        for segment in self.text_segments:
            total += segment.nbytes
        for segment in self.voice_segments:
            total += segment.nbytes
        for image in self.images:
            total += image.nbytes
        for message in self.voice_messages:
            total += message.recording.nbytes
        return total
