"""Pause detection and short/long-pause classification.

The paper's browse-near-context mechanism: "Pause is a segment of
digitized voice which does not contain any sound (in practice the
intensity of the registered sound is very small).  The user may specify
that the audio is replayed starting from a number of short or long
pauses back from the current position...  The exact timing for short
and long pauses depends on the speaker and the section of the speech.
It is decided from the current context by sampling."

We implement exactly that: an energy-envelope silence detector over the
sampled waveform, plus two classifiers — a fixed-threshold baseline and
the paper's adaptive, context-sampling classifier — and a
:class:`PauseIndex` that answers "rewind N short/long pauses from t".
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.audio.signal import Recording
from repro.errors import AudioError


class PauseKind(enum.Enum):
    """Classification of a detected pause."""

    SHORT = "short"
    LONG = "long"


@dataclass(frozen=True, slots=True)
class Pause:
    """A detected stretch of (near-)silence."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return self.end - self.start

    @property
    def midpoint(self) -> float:
        """Centre of the pause, used for boundary matching."""
        return (self.start + self.end) / 2


def frame_rms(
    recording: Recording, frame_ms: float = 20.0
) -> tuple[np.ndarray, float]:
    """Root-mean-square energy per frame.

    Returns the RMS array and the frame duration in seconds.
    """
    frame_len = max(int(recording.sample_rate * frame_ms / 1000.0), 1)
    n_frames = len(recording.samples) // frame_len
    if n_frames == 0:
        raise AudioError("recording shorter than one analysis frame")
    trimmed = recording.samples[: n_frames * frame_len]
    frames = trimmed.reshape(n_frames, frame_len)
    rms = np.sqrt((frames.astype(np.float64) ** 2).mean(axis=1))
    return rms, frame_len / recording.sample_rate


def detect_silences(
    recording: Recording,
    frame_ms: float = 20.0,
    min_duration: float = 0.05,
) -> list[Pause]:
    """Find all pauses (low-energy runs) in a recording.

    The silence threshold adapts to the recording: it sits a small way
    up from the noise floor (10th percentile of frame energy) towards
    the speech level (90th percentile), so recordings with different
    gain or noise floors need no manual tuning.
    """
    rms, frame_s = frame_rms(recording, frame_ms)
    floor = float(np.percentile(rms, 10))
    speech = float(np.percentile(rms, 90))
    if speech <= floor:
        return []  # flat signal: nothing distinguishable as speech
    threshold = floor + 0.10 * (speech - floor)
    silent = rms < threshold

    pauses: list[Pause] = []
    run_start: int | None = None
    for i, is_silent in enumerate(silent):
        if is_silent and run_start is None:
            run_start = i
        elif not is_silent and run_start is not None:
            pause = Pause(run_start * frame_s, i * frame_s)
            if pause.duration >= min_duration:
                pauses.append(pause)
            run_start = None
    if run_start is not None:
        pause = Pause(run_start * frame_s, len(silent) * frame_s)
        if pause.duration >= min_duration:
            pauses.append(pause)
    return pauses


class FixedPauseClassifier:
    """Baseline classifier: one global duration threshold."""

    def __init__(self, long_threshold: float = 0.4) -> None:
        if long_threshold <= 0:
            raise AudioError(f"threshold must be positive: {long_threshold}")
        self._threshold = long_threshold

    def classify(self, pauses: list[Pause]) -> list[PauseKind]:
        """Label each pause SHORT or LONG."""
        return [
            PauseKind.LONG if p.duration >= self._threshold else PauseKind.SHORT
            for p in pauses
        ]


class AdaptivePauseClassifier:
    """Context-sampling classifier, per the paper.

    For each pause, the durations of the pauses inside a window of
    ``window_s`` seconds around it are sampled and clustered (2-means
    on log-durations).  Speech gaps are naturally *three*-tiered —
    word, sentence, and paragraph gaps — so after separating the word
    gaps the classifier re-splits the upper cluster; LONG means the
    top tier (paragraph-scale) only.  When the local context has too
    few samples to resolve the tiers, the global recording supplies
    the thresholds, so mid-paragraph word gaps are never promoted to
    LONG.
    """

    def __init__(self, window_s: float = 60.0, separation: float = 1.8) -> None:
        if window_s <= 0:
            raise AudioError(f"window must be positive: {window_s}")
        self._window = window_s
        self._separation = separation

    def classify(self, pauses: list[Pause]) -> list[PauseKind]:
        """Label each pause SHORT or LONG using local context."""
        if not pauses:
            return []
        global_split = self._top_tier_threshold([p.duration for p in pauses])
        kinds: list[PauseKind] = []
        for pause in pauses:
            context = [
                p.duration
                for p in pauses
                if abs(p.midpoint - pause.midpoint) <= self._window / 2
            ]
            split = self._top_tier_threshold(context)
            if split is None:
                split = global_split
            if split is None:
                kinds.append(PauseKind.SHORT)
            else:
                kinds.append(
                    PauseKind.LONG if pause.duration >= split else PauseKind.SHORT
                )
        return kinds

    def _top_tier_threshold(self, durations: list[float]) -> float | None:
        """Threshold above which a pause belongs to the top duration tier.

        First split separates the dominant word-gap cluster from the
        rest; a second split of the remainder separates sentence gaps
        from paragraph gaps.  Returns None when no tiers are resolvable.
        """
        first = self._two_means(durations)
        if first is None:
            return None
        upper = [d for d in durations if d >= first]
        second = self._two_means(upper, min_count=4)
        return second if second is not None else first

    def _two_means(
        self, durations: list[float], min_count: int = 4
    ) -> float | None:
        """2-means split of log-durations; None when unimodal."""
        if len(durations) < min_count:
            return None
        logs = np.log(np.asarray(durations, dtype=np.float64))
        low, high = logs.min(), logs.max()
        if high - low < 1e-9:
            return None
        c0, c1 = low, high
        for _ in range(20):
            assign = np.abs(logs - c0) <= np.abs(logs - c1)
            if assign.all() or not assign.any():
                return None
            new_c0, new_c1 = logs[assign].mean(), logs[~assign].mean()
            if abs(new_c0 - c0) < 1e-9 and abs(new_c1 - c1) < 1e-9:
                break
            c0, c1 = new_c0, new_c1
        if c1 < c0:
            c0, c1 = c1, c0
        if np.exp(c1) / np.exp(c0) < self._separation:
            return None  # clusters too close: treat context as unimodal
        return float(np.exp((c0 + c1) / 2))


class PauseIndex:
    """Indexed pauses of a recording, answering rewind queries.

    This is what backs the browsing options "replay starting from a
    number of short or long pauses back from the current position".
    """

    def __init__(self, pauses: list[Pause], kinds: list[PauseKind]) -> None:
        if len(pauses) != len(kinds):
            raise AudioError("pauses and kinds must be parallel lists")
        order = sorted(range(len(pauses)), key=lambda i: pauses[i].start)
        self._pauses = [pauses[i] for i in order]
        self._kinds = [kinds[i] for i in order]
        self._starts = [p.start for p in self._pauses]

    @classmethod
    def build(
        cls,
        recording: Recording,
        classifier: AdaptivePauseClassifier | FixedPauseClassifier | None = None,
    ) -> "PauseIndex":
        """Detect and classify all pauses of ``recording``."""
        classifier = classifier or AdaptivePauseClassifier()
        pauses = detect_silences(recording)
        return cls(pauses, classifier.classify(pauses))

    def __len__(self) -> int:
        return len(self._pauses)

    @property
    def pauses(self) -> list[Pause]:
        """All pauses, in time order."""
        return list(self._pauses)

    def of_kind(self, kind: PauseKind) -> list[Pause]:
        """All pauses of one kind, in time order."""
        return [p for p, k in zip(self._pauses, self._kinds) if k is kind]

    def rewind_position(self, position: float, kind: PauseKind, count: int) -> float:
        """Where playback resumes after "``count`` ``kind`` pauses back".

        Returns the *end* of the ``count``-th matching pause before
        ``position`` — i.e. the start of the speech that follows it —
        or 0.0 when there are fewer matching pauses, which replays from
        the beginning.
        """
        if count <= 0:
            raise AudioError(f"rewind count must be positive: {count}")
        i = bisect_left(self._starts, position) - 1
        remaining = count
        while i >= 0:
            pause = self._pauses[i]
            if pause.end <= position and self._kinds[i] is kind:
                remaining -= 1
                if remaining == 0:
                    return pause.end
            i -= 1
        return 0.0
