"""Synthetic digitized speech with ground-truth annotations.

This module stands in for MINOS's voice digitization hardware.  Given a
text script and a :class:`SpeakerProfile`, :func:`synthesize_speech`
renders a sampled waveform in which each word is a burst of
syllable-shaped energy and the gaps between words, sentences and
paragraphs follow the profile's (jittered) timing.  The returned
:class:`Recording` carries the exact word/sentence/paragraph timing as
ground truth, so the pause-detection benchmarks can score the paper's
short/long-pause heuristics against reality.

The waveform itself is honest sampled audio: pause detection and audio
paging downstream look only at ``recording.samples``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import AudioError

_VOWEL_GROUPS = re.compile(r"[aeiouy]+", re.IGNORECASE)
_SENTENCE_END = re.compile(r"[.!?]")


@dataclass(frozen=True, slots=True)
class TimedWord:
    """Ground-truth placement of one spoken word."""

    word: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Spoken duration in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class SpeakerProfile:
    """Timing and level parameters of a simulated speaker.

    The paper notes that "the exact timing for short and long pauses
    depends on the speaker and the section of the speech"; two profiles
    with different gap scales exercise the adaptive classifier.

    All times are in seconds; ``jitter`` is the relative standard
    deviation applied to every gap and syllable duration.
    """

    name: str = "default"
    syllable_duration: float = 0.16
    word_gap: float = 0.12
    sentence_gap: float = 0.45
    paragraph_gap: float = 1.1
    amplitude: float = 0.6
    noise_level: float = 0.004
    jitter: float = 0.15
    pitch_hz: float = 140.0

    def __post_init__(self) -> None:
        if not (0 < self.word_gap < self.sentence_gap < self.paragraph_gap):
            raise AudioError(
                "speaker gaps must satisfy 0 < word < sentence < paragraph: "
                f"{self.word_gap}, {self.sentence_gap}, {self.paragraph_gap}"
            )
        if not 0 <= self.jitter < 0.5:
            raise AudioError(f"jitter must be in [0, 0.5): {self.jitter}")


class Recording:
    """Digitized voice plus the annotations MINOS keeps alongside it.

    A recording is either *materialized* (constructed from a float32
    waveform, the historical path) or *lazy*: constructed from the
    companded ``encoded`` bytes plus a ``decoder`` callable, in which
    case the waveform is expanded on first access to :attr:`samples`.
    Mu-law companding is exactly one byte per sample, so duration,
    storage size and audio paging are all computable without decoding —
    an object open ships and holds the encoded bytes, and the expansion
    cost is paid at first *playback* (``PLAY_VOICE``), not at open time.

    Attributes
    ----------
    samples:
        Float32 waveform in ``[-1, 1]``.  Reading this on a lazy
        recording decodes it (and fires ``on_decode`` once).
    sample_rate:
        Samples per second.
    words:
        Ground-truth word timing (empty for recordings whose
        provenance carries no transcript).
    sentence_ends, paragraph_ends:
        Ground-truth boundary times (end of the final word of each
        sentence / paragraph).
    speaker:
        Name of the speaker profile used at synthesis time.
    on_decode:
        Optional one-shot callback ``cb(recording)`` invoked when a
        lazy recording materializes — the presentation manager hooks
        the DECODE_VOICE trace event here.
    """

    def __init__(
        self,
        samples: np.ndarray | None = None,
        sample_rate: int = 0,
        words: list[TimedWord] | None = None,
        sentence_ends: list[float] | None = None,
        paragraph_ends: list[float] | None = None,
        speaker: str = "unknown",
        *,
        encoded: bytes | None = None,
        decoder=None,
        on_decode=None,
    ) -> None:
        if sample_rate <= 0:
            raise AudioError(f"sample rate must be positive: {sample_rate}")
        self.sample_rate = sample_rate
        self.words = list(words) if words is not None else []
        self.sentence_ends = list(sentence_ends) if sentence_ends is not None else []
        self.paragraph_ends = (
            list(paragraph_ends) if paragraph_ends is not None else []
        )
        self.speaker = speaker
        self.on_decode = on_decode
        if samples is not None:
            self._samples: np.ndarray | None = self._coerce(samples)
            self._encoded: bytes | None = None
            self._decoder = None
        else:
            if encoded is None:
                raise AudioError("a recording needs samples or encoded bytes")
            if decoder is None:
                raise AudioError("a lazy recording needs a decoder")
            self._samples = None
            self._encoded = encoded
            self._decoder = decoder

    @staticmethod
    def _coerce(samples: np.ndarray) -> np.ndarray:
        if samples.ndim != 1:
            raise AudioError(f"recording must be mono, got shape {samples.shape}")
        if samples.dtype != np.float32:
            samples = samples.astype(np.float32)
        return samples

    @property
    def is_materialized(self) -> bool:
        """Whether the waveform has been decoded (always True when the
        recording was constructed from samples)."""
        return self._samples is not None

    @property
    def samples(self) -> np.ndarray:
        """The waveform, decoding the companded bytes on first access."""
        if self._samples is None:
            assert self._decoder is not None and self._encoded is not None
            self._samples = self._coerce(self._decoder(self._encoded))
            self._encoded = None
            self._decoder = None
            if self.on_decode is not None:
                callback, self.on_decode = self.on_decode, None
                callback(self)
        return self._samples

    @samples.setter
    def samples(self, value: np.ndarray) -> None:
        self._samples = self._coerce(value)
        self._encoded = None
        self._decoder = None

    def materialize(self) -> "Recording":
        """Force the waveform to be decoded; returns self."""
        __ = self.samples
        return self

    @property
    def n_samples(self) -> int:
        """Sample count, available without decoding (mu-law is one byte
        per sample)."""
        if self._samples is not None:
            return len(self._samples)
        assert self._encoded is not None
        return len(self._encoded)

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return self.n_samples / self.sample_rate

    @property
    def nbytes(self) -> int:
        """Storage size after 8-bit companding (1 byte per sample)."""
        return self.n_samples

    def __repr__(self) -> str:
        state = "materialized" if self.is_materialized else "lazy"
        return (
            f"Recording({state}, n_samples={self.n_samples}, "
            f"sample_rate={self.sample_rate}, speaker={self.speaker!r})"
        )

    def slice(self, start: float, end: float) -> "Recording":
        """Return the sub-recording covering ``[start, end)`` seconds.

        Annotations are re-based so the slice is self-contained.
        """
        start = max(0.0, start)
        end = min(self.duration, end)
        if end <= start:
            raise AudioError(f"empty recording slice [{start}, {end})")
        i0 = int(start * self.sample_rate)
        i1 = int(end * self.sample_rate)
        words = [
            TimedWord(w.word, w.start - start, w.end - start)
            for w in self.words
            if start <= w.start < end
        ]
        return Recording(
            samples=self.samples[i0:i1].copy(),
            sample_rate=self.sample_rate,
            words=words,
            sentence_ends=[t - start for t in self.sentence_ends if start <= t < end],
            paragraph_ends=[t - start for t in self.paragraph_ends if start <= t < end],
            speaker=self.speaker,
        )

    def transcript_text(self) -> str:
        """Plain-text transcript reconstructed from the word annotations."""
        return " ".join(w.word for w in self.words)


def synthesize_speech(
    text: str,
    profile: SpeakerProfile | None = None,
    sample_rate: int = 8000,
    seed: int = 0,
) -> Recording:
    """Render ``text`` as a synthetic digitized-speech recording.

    Paragraphs are separated by blank lines; sentences end at ``.``,
    ``!`` or ``?``.  Each word becomes a burst of syllable-shaped
    energy whose length scales with its vowel groups.  All gaps are
    jittered with a seeded RNG so recordings are reproducible.

    Raises
    ------
    AudioError
        If ``text`` contains no words.
    """
    profile = profile or SpeakerProfile()
    rng = np.random.default_rng(seed)
    paragraphs = [p.strip() for p in re.split(r"\n\s*\n", text) if p.strip()]
    if not paragraphs:
        raise AudioError("cannot synthesize speech from empty text")

    chunks: list[np.ndarray] = []
    words: list[TimedWord] = []
    sentence_ends: list[float] = []
    paragraph_ends: list[float] = []
    cursor = 0.0  # seconds

    def jittered(value: float) -> float:
        scale = 1.0 + profile.jitter * float(rng.standard_normal())
        return max(value * scale, value * 0.3)

    def append_silence(duration: float) -> None:
        nonlocal cursor
        n = int(round(duration * sample_rate))
        noise = rng.standard_normal(n).astype(np.float32) * profile.noise_level
        chunks.append(noise)
        cursor += n / sample_rate

    for p_index, paragraph in enumerate(paragraphs):
        sentences = [s for s in _split_sentences(paragraph) if s]
        for s_index, sentence in enumerate(sentences):
            tokens = sentence.split()
            for w_index, token in enumerate(tokens):
                burst, duration = _word_burst(
                    token, profile, sample_rate, rng, jittered
                )
                start = cursor
                chunks.append(burst)
                cursor += duration
                words.append(TimedWord(_normalize(token), start, cursor))
                if w_index < len(tokens) - 1:
                    append_silence(jittered(profile.word_gap))
            sentence_ends.append(cursor)
            if s_index < len(sentences) - 1:
                append_silence(jittered(profile.sentence_gap))
        paragraph_ends.append(cursor)
        if p_index < len(paragraphs) - 1:
            append_silence(jittered(profile.paragraph_gap))

    if not words:
        raise AudioError("cannot synthesize speech from text with no words")

    samples = np.concatenate(chunks)
    np.clip(samples, -1.0, 1.0, out=samples)
    return Recording(
        samples=samples,
        sample_rate=sample_rate,
        words=words,
        sentence_ends=sentence_ends,
        paragraph_ends=paragraph_ends,
        speaker=profile.name,
    )


def _split_sentences(paragraph: str) -> list[str]:
    parts = _SENTENCE_END.split(paragraph)
    return [part.strip() for part in parts if part.strip()]


def _normalize(token: str) -> str:
    return re.sub(r"[^\w'-]", "", token).lower()


def _syllable_count(token: str) -> int:
    return max(1, len(_VOWEL_GROUPS.findall(token)))


def _word_burst(
    token: str,
    profile: SpeakerProfile,
    sample_rate: int,
    rng: np.random.Generator,
    jittered,
) -> tuple[np.ndarray, float]:
    """One word's waveform: concatenated raised-cosine syllable bursts."""
    syllables = _syllable_count(token)
    pieces: list[np.ndarray] = []
    for _ in range(syllables):
        duration = jittered(profile.syllable_duration)
        n = max(int(round(duration * sample_rate)), 8)
        t = np.arange(n, dtype=np.float32) / sample_rate
        envelope = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(n) / n))
        carrier = np.sin(2.0 * np.pi * profile.pitch_hz * t)
        texture = rng.standard_normal(n).astype(np.float32) * 0.25
        pieces.append(
            (profile.amplitude * envelope * (carrier + texture)).astype(np.float32)
        )
    burst = np.concatenate(pieces)
    return burst, len(burst) / sample_rate
