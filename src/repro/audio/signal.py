"""Synthetic digitized speech with ground-truth annotations.

This module stands in for MINOS's voice digitization hardware.  Given a
text script and a :class:`SpeakerProfile`, :func:`synthesize_speech`
renders a sampled waveform in which each word is a burst of
syllable-shaped energy and the gaps between words, sentences and
paragraphs follow the profile's (jittered) timing.  The returned
:class:`Recording` carries the exact word/sentence/paragraph timing as
ground truth, so the pause-detection benchmarks can score the paper's
short/long-pause heuristics against reality.

The waveform itself is honest sampled audio: pause detection and audio
paging downstream look only at ``recording.samples``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AudioError

_VOWEL_GROUPS = re.compile(r"[aeiouy]+", re.IGNORECASE)
_SENTENCE_END = re.compile(r"[.!?]")


@dataclass(frozen=True, slots=True)
class TimedWord:
    """Ground-truth placement of one spoken word."""

    word: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Spoken duration in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class SpeakerProfile:
    """Timing and level parameters of a simulated speaker.

    The paper notes that "the exact timing for short and long pauses
    depends on the speaker and the section of the speech"; two profiles
    with different gap scales exercise the adaptive classifier.

    All times are in seconds; ``jitter`` is the relative standard
    deviation applied to every gap and syllable duration.
    """

    name: str = "default"
    syllable_duration: float = 0.16
    word_gap: float = 0.12
    sentence_gap: float = 0.45
    paragraph_gap: float = 1.1
    amplitude: float = 0.6
    noise_level: float = 0.004
    jitter: float = 0.15
    pitch_hz: float = 140.0

    def __post_init__(self) -> None:
        if not (0 < self.word_gap < self.sentence_gap < self.paragraph_gap):
            raise AudioError(
                "speaker gaps must satisfy 0 < word < sentence < paragraph: "
                f"{self.word_gap}, {self.sentence_gap}, {self.paragraph_gap}"
            )
        if not 0 <= self.jitter < 0.5:
            raise AudioError(f"jitter must be in [0, 0.5): {self.jitter}")


@dataclass
class Recording:
    """Digitized voice plus the annotations MINOS keeps alongside it.

    Attributes
    ----------
    samples:
        Float32 waveform in ``[-1, 1]``.
    sample_rate:
        Samples per second.
    words:
        Ground-truth word timing (empty for recordings whose
        provenance carries no transcript).
    sentence_ends, paragraph_ends:
        Ground-truth boundary times (end of the final word of each
        sentence / paragraph).
    speaker:
        Name of the speaker profile used at synthesis time.
    """

    samples: np.ndarray
    sample_rate: int
    words: list[TimedWord] = field(default_factory=list)
    sentence_ends: list[float] = field(default_factory=list)
    paragraph_ends: list[float] = field(default_factory=list)
    speaker: str = "unknown"

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise AudioError(f"sample rate must be positive: {self.sample_rate}")
        if self.samples.ndim != 1:
            raise AudioError(f"recording must be mono, got shape {self.samples.shape}")
        if self.samples.dtype != np.float32:
            self.samples = self.samples.astype(np.float32)

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return len(self.samples) / self.sample_rate

    @property
    def nbytes(self) -> int:
        """Storage size after 8-bit companding (1 byte per sample)."""
        return len(self.samples)

    def slice(self, start: float, end: float) -> "Recording":
        """Return the sub-recording covering ``[start, end)`` seconds.

        Annotations are re-based so the slice is self-contained.
        """
        start = max(0.0, start)
        end = min(self.duration, end)
        if end <= start:
            raise AudioError(f"empty recording slice [{start}, {end})")
        i0 = int(start * self.sample_rate)
        i1 = int(end * self.sample_rate)
        words = [
            TimedWord(w.word, w.start - start, w.end - start)
            for w in self.words
            if start <= w.start < end
        ]
        return Recording(
            samples=self.samples[i0:i1].copy(),
            sample_rate=self.sample_rate,
            words=words,
            sentence_ends=[t - start for t in self.sentence_ends if start <= t < end],
            paragraph_ends=[t - start for t in self.paragraph_ends if start <= t < end],
            speaker=self.speaker,
        )

    def transcript_text(self) -> str:
        """Plain-text transcript reconstructed from the word annotations."""
        return " ".join(w.word for w in self.words)


def synthesize_speech(
    text: str,
    profile: SpeakerProfile | None = None,
    sample_rate: int = 8000,
    seed: int = 0,
) -> Recording:
    """Render ``text`` as a synthetic digitized-speech recording.

    Paragraphs are separated by blank lines; sentences end at ``.``,
    ``!`` or ``?``.  Each word becomes a burst of syllable-shaped
    energy whose length scales with its vowel groups.  All gaps are
    jittered with a seeded RNG so recordings are reproducible.

    Raises
    ------
    AudioError
        If ``text`` contains no words.
    """
    profile = profile or SpeakerProfile()
    rng = np.random.default_rng(seed)
    paragraphs = [p.strip() for p in re.split(r"\n\s*\n", text) if p.strip()]
    if not paragraphs:
        raise AudioError("cannot synthesize speech from empty text")

    chunks: list[np.ndarray] = []
    words: list[TimedWord] = []
    sentence_ends: list[float] = []
    paragraph_ends: list[float] = []
    cursor = 0.0  # seconds

    def jittered(value: float) -> float:
        scale = 1.0 + profile.jitter * float(rng.standard_normal())
        return max(value * scale, value * 0.3)

    def append_silence(duration: float) -> None:
        nonlocal cursor
        n = int(round(duration * sample_rate))
        noise = rng.standard_normal(n).astype(np.float32) * profile.noise_level
        chunks.append(noise)
        cursor += n / sample_rate

    for p_index, paragraph in enumerate(paragraphs):
        sentences = [s for s in _split_sentences(paragraph) if s]
        for s_index, sentence in enumerate(sentences):
            tokens = sentence.split()
            for w_index, token in enumerate(tokens):
                burst, duration = _word_burst(
                    token, profile, sample_rate, rng, jittered
                )
                start = cursor
                chunks.append(burst)
                cursor += duration
                words.append(TimedWord(_normalize(token), start, cursor))
                if w_index < len(tokens) - 1:
                    append_silence(jittered(profile.word_gap))
            sentence_ends.append(cursor)
            if s_index < len(sentences) - 1:
                append_silence(jittered(profile.sentence_gap))
        paragraph_ends.append(cursor)
        if p_index < len(paragraphs) - 1:
            append_silence(jittered(profile.paragraph_gap))

    if not words:
        raise AudioError("cannot synthesize speech from text with no words")

    samples = np.concatenate(chunks)
    np.clip(samples, -1.0, 1.0, out=samples)
    return Recording(
        samples=samples,
        sample_rate=sample_rate,
        words=words,
        sentence_ends=sentence_ends,
        paragraph_ends=paragraph_ends,
        speaker=profile.name,
    )


def _split_sentences(paragraph: str) -> list[str]:
    parts = _SENTENCE_END.split(paragraph)
    return [part.strip() for part in parts if part.strip()]


def _normalize(token: str) -> str:
    return re.sub(r"[^\w'-]", "", token).lower()


def _syllable_count(token: str) -> int:
    return max(1, len(_VOWEL_GROUPS.findall(token)))


def _word_burst(
    token: str,
    profile: SpeakerProfile,
    sample_rate: int,
    rng: np.random.Generator,
    jittered,
) -> tuple[np.ndarray, float]:
    """One word's waveform: concatenated raised-cosine syllable bursts."""
    syllables = _syllable_count(token)
    pieces: list[np.ndarray] = []
    for _ in range(syllables):
        duration = jittered(profile.syllable_duration)
        n = max(int(round(duration * sample_rate)), 8)
        t = np.arange(n, dtype=np.float32) / sample_rate
        envelope = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(n) / n))
        carrier = np.sin(2.0 * np.pi * profile.pitch_hz * t)
        texture = rng.standard_normal(n).astype(np.float32) * 0.25
        pieces.append(
            (profile.amplitude * envelope * (carrier + texture)).astype(np.float32)
        )
    burst = np.concatenate(pieces)
    return burst, len(burst) / sample_rate
