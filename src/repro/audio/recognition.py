"""Limited-vocabulary voice recognition, simulated.

The paper's design point: "Voice recognition is not taking place at the
time of browsing.  Instead, some voice segments have been recognized at
the time of voice insertion, or at machine's idle time, from the
digitized voice.  The recognized voice segments are used to provide
content addressibility and browsing by using the same access methods
as in text."

We cannot run a 1986 recognition device, so :class:`VocabularyRecognizer`
simulates one: it consumes the recording's transcript annotations (the
stand-in for the acoustic signal the device would hear), keeps only
words inside its limited vocabulary, and injects misses and confusions
at configurable rates with a seeded RNG.  What matters for the paper —
*when* recognition runs, *what* it yields (term + time offset pairs),
and how recognition quality bounds browse-time search recall — is fully
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audio.signal import Recording
from repro.errors import RecognitionError


@dataclass(frozen=True, slots=True)
class RecognizedUtterance:
    """One recognized word, anchored at a point of the voice part."""

    term: str
    time: float


class VocabularyRecognizer:
    """Simulated limited-vocabulary, speaker-independent recognizer.

    Parameters
    ----------
    vocabulary:
        The closed set of words the device can recognize.
    miss_rate:
        Probability that an in-vocabulary spoken word is not detected.
    confusion_rate:
        Probability that a detected in-vocabulary word is reported as a
        *different* vocabulary word (substitution error).
    seed:
        RNG seed; recognition of the same recording is reproducible.
    """

    def __init__(
        self,
        vocabulary: list[str],
        miss_rate: float = 0.05,
        confusion_rate: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not vocabulary:
            raise RecognitionError("recognizer vocabulary must be non-empty")
        if not 0 <= miss_rate < 1:
            raise RecognitionError(f"miss rate must be in [0, 1): {miss_rate}")
        if not 0 <= confusion_rate < 1:
            raise RecognitionError(
                f"confusion rate must be in [0, 1): {confusion_rate}"
            )
        self._vocabulary = sorted({w.lower() for w in vocabulary})
        self._vocab_set = set(self._vocabulary)
        self._miss_rate = miss_rate
        self._confusion_rate = confusion_rate
        self._seed = seed

    @property
    def vocabulary(self) -> list[str]:
        """The recognizer's closed vocabulary, sorted."""
        return list(self._vocabulary)

    def recognize(self, recording: Recording) -> list[RecognizedUtterance]:
        """Run recognition over a recording (insertion/idle-time step).

        Raises
        ------
        RecognitionError
            If the recording has no transcript annotations — i.e. no
            simulated acoustic content to recognize.
        """
        if not recording.words:
            raise RecognitionError(
                "recording carries no transcript; nothing to recognize"
            )
        rng = np.random.default_rng(self._seed)
        utterances: list[RecognizedUtterance] = []
        for word in recording.words:
            token = word.word.lower()
            if token not in self._vocab_set:
                continue
            if rng.random() < self._miss_rate:
                continue  # device failed to detect the word
            term = token
            if len(self._vocabulary) > 1 and rng.random() < self._confusion_rate:
                term = self._confuse(token, rng)
            utterances.append(RecognizedUtterance(term=term, time=word.start))
        return utterances

    def _confuse(self, token: str, rng: np.random.Generator) -> str:
        others = [w for w in self._vocabulary if w != token]
        return others[int(rng.integers(len(others)))]
