"""Audio pages.

The paper: "Audio pages (or voice pages) in a speech are consecutive
partitions of the audio object part which are of approximately constant
time length.  The user can advance several voice pages at a time...
A difference that we would like to accept is that speech is not
interrupted at the end of each voice page" — pages are navigation
units, not playback units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audio.signal import Recording
from repro.errors import AudioError


@dataclass(frozen=True, slots=True)
class AudioPage:
    """One voice page: a time interval of the object voice part."""

    number: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Page length in seconds."""
        return self.end - self.start


class AudioPager:
    """Partitions a recording into approximately constant-length pages.

    The final page absorbs any remainder shorter than half a page, so
    no page is degenerately small.
    """

    def __init__(self, recording: Recording, page_seconds: float = 10.0) -> None:
        if page_seconds <= 0:
            raise AudioError(f"page length must be positive: {page_seconds}")
        self._recording = recording
        self._page_seconds = page_seconds
        self._pages = self._build_pages()

    def _build_pages(self) -> list[AudioPage]:
        duration = self._recording.duration
        pages: list[AudioPage] = []
        start = 0.0
        number = 1
        while start < duration:
            end = start + self._page_seconds
            remainder = duration - end
            if 0 < remainder < self._page_seconds / 2:
                end = duration  # absorb the short tail
            end = min(end, duration)
            pages.append(AudioPage(number=number, start=start, end=end))
            start = end
            number += 1
        if not pages:
            raise AudioError("cannot page an empty recording")
        return pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def pages(self) -> list[AudioPage]:
        """All pages in order."""
        return list(self._pages)

    @property
    def page_seconds(self) -> float:
        """Nominal page duration."""
        return self._page_seconds

    def page(self, number: int) -> AudioPage:
        """Look up a page by 1-based number.

        Raises
        ------
        AudioError
            If the number is out of range.
        """
        if not 1 <= number <= len(self._pages):
            raise AudioError(
                f"audio page {number} out of range 1..{len(self._pages)}"
            )
        return self._pages[number - 1]

    def page_at(self, position: float) -> AudioPage:
        """The page containing time ``position`` (clamped to the ends)."""
        if position <= 0:
            return self._pages[0]
        for page in self._pages:
            if page.start <= position < page.end:
                return page
        return self._pages[-1]
