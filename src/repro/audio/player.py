"""Simulated voice output device.

Playback advances the shared :class:`~repro.workstation.clock.SimClock`
and records every played interval on the session trace, so tests can
assert exactly what the user heard and when.  Interactive behaviour —
the user pressing *interrupt* while speech plays — is modelled by
starting playback (:meth:`AudioPlayer.play`), letting the caller
advance the clock, and then calling :meth:`AudioPlayer.interrupt`,
which settles how much was actually heard.
"""

from __future__ import annotations

import enum

from repro.audio.signal import Recording
from repro.errors import PlaybackStateError
from repro.clock import SimClock
from repro.trace import EventKind, Trace


class PlayerState(enum.Enum):
    """Playback state machine."""

    IDLE = "idle"
    PLAYING = "playing"
    INTERRUPTED = "interrupted"
    FINISHED = "finished"


class AudioPlayer:
    """Plays one recording against the simulated clock.

    Parameters
    ----------
    recording:
        The voice data to play.
    clock:
        Shared simulated clock; playing N seconds advances it by N.
    trace:
        Trace receiving PLAY/INTERRUPT/RESUME/SEEK events.
    label:
        Identifier included in trace events (segment id, message id).
    """

    def __init__(
        self,
        recording: Recording,
        clock: SimClock,
        trace: Trace,
        label: str = "voice",
    ) -> None:
        self._recording = recording
        self._clock = clock
        self._trace = trace
        self._label = label
        self._position = 0.0
        self._state = PlayerState.IDLE
        self._play_started_at: float | None = None
        self._play_from: float = 0.0

    @property
    def state(self) -> PlayerState:
        """Current playback state."""
        return self._state

    @property
    def position(self) -> float:
        """Current position in the recording, in seconds.

        While playing, reflects the clock's progress since playback
        started.
        """
        if self._state is PlayerState.PLAYING:
            assert self._play_started_at is not None
            elapsed = self._clock.now - self._play_started_at
            return min(self._play_from + elapsed, self._recording.duration)
        return self._position

    @property
    def recording(self) -> Recording:
        """The recording being played."""
        return self._recording

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    def play(self) -> None:
        """Start (or restart) playback from the current position.

        Raises
        ------
        PlaybackStateError
            If already playing.
        """
        if self._state is PlayerState.PLAYING:
            raise PlaybackStateError("already playing")
        # First playback of a lazily-shipped recording expands the
        # companded bytes here — never at open time.
        self._recording.materialize()
        if self._position >= self._recording.duration:
            self._position = 0.0
        self._play_from = self._position
        self._play_started_at = self._clock.now
        self._state = PlayerState.PLAYING
        self._trace.record(
            self._clock.now,
            EventKind.PLAY_VOICE,
            label=self._label,
            from_s=round(self._play_from, 3),
        )

    def interrupt(self) -> float:
        """Stop playback at the current clock time; return the position.

        Models the user's *interrupt voice output* menu option.

        Raises
        ------
        PlaybackStateError
            If not playing.
        """
        if self._state is not PlayerState.PLAYING:
            raise PlaybackStateError(f"cannot interrupt in state {self._state.value}")
        self._position = self.position
        self._state = PlayerState.INTERRUPTED
        self._play_started_at = None
        self._trace.record(
            self._clock.now,
            EventKind.INTERRUPT_VOICE,
            label=self._label,
            at_s=round(self._position, 3),
        )
        return self._position

    def resume(self) -> None:
        """Resume from the position where playback was interrupted."""
        if self._state is PlayerState.PLAYING:
            raise PlaybackStateError("already playing")
        self._trace.record(
            self._clock.now,
            EventKind.RESUME_VOICE,
            label=self._label,
            from_s=round(self._position, 3),
        )
        self._play_from = self._position
        self._play_started_at = self._clock.now
        self._state = PlayerState.PLAYING

    def seek(self, position: float) -> None:
        """Move the playback position without playing.

        Raises
        ------
        PlaybackStateError
            If called while playing (interrupt first).
        """
        if self._state is PlayerState.PLAYING:
            raise PlaybackStateError("cannot seek while playing; interrupt first")
        clamped = min(max(position, 0.0), self._recording.duration)
        self._position = clamped
        self._trace.record(
            self._clock.now,
            EventKind.SEEK_VOICE,
            label=self._label,
            to_s=round(clamped, 3),
        )

    def play_through(self, seconds: float | None = None) -> float:
        """Play for ``seconds`` (or to the end), advancing the clock.

        Convenience for non-interactive playback (logical messages,
        labels, tours).  Returns the new position.
        """
        if self._state is not PlayerState.PLAYING:
            self.play()
        assert self._play_started_at is not None
        remaining = self._recording.duration - self._play_from
        span = remaining if seconds is None else min(seconds, remaining)
        self._clock.advance(max(span, 0.0))
        self._position = self._play_from + span
        self._play_started_at = None
        if self._position >= self._recording.duration:
            self._state = PlayerState.FINISHED
        else:
            self._state = PlayerState.INTERRUPTED
        return self._position
