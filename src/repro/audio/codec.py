"""8-bit mu-law companding, for storage sizing.

MINOS stored digitized voice on the optical archiver.  We compand the
float waveform to one byte per sample (the standard telephony mu-law
curve) so that recordings have realistic archive sizes and the
formation/archiver pipelines move real bytes.
"""

from __future__ import annotations

import numpy as np

from repro.audio.signal import Recording
from repro.errors import AudioError

_MU = 255.0


def mu_law_encode(samples: np.ndarray) -> bytes:
    """Compand float samples in [-1, 1] to unsigned bytes."""
    if samples.ndim != 1:
        raise AudioError(f"expected mono samples, got shape {samples.shape}")
    x = np.clip(samples.astype(np.float64), -1.0, 1.0)
    y = np.sign(x) * np.log1p(_MU * np.abs(x)) / np.log1p(_MU)
    quantized = np.round((y + 1.0) / 2.0 * 255.0).astype(np.uint8)
    return quantized.tobytes()


def mu_law_decode(data: bytes) -> np.ndarray:
    """Expand mu-law bytes back to float32 samples in [-1, 1]."""
    quantized = np.frombuffer(data, dtype=np.uint8).astype(np.float64)
    y = quantized / 255.0 * 2.0 - 1.0
    x = np.sign(y) * ((1.0 + _MU) ** np.abs(y) - 1.0) / _MU
    return x.astype(np.float32)


def encode_recording(recording: Recording) -> bytes:
    """Encode a recording's waveform for archival (1 byte/sample)."""
    return mu_law_encode(recording.samples)


def decode_recording(data: bytes, sample_rate: int, speaker: str = "unknown") -> Recording:
    """Rebuild a recording from archived bytes.

    Annotations are not stored in the waveform stream; MINOS keeps them
    in the object descriptor, so a decoded recording starts bare.
    """
    return Recording(
        samples=mu_law_decode(data), sample_rate=sample_rate, speaker=speaker
    )
