"""Audio substrate: synthetic digitized voice and everything built on it.

The original MINOS ran against voice digitization hardware on a SUN-3.
We substitute a synthesizer (:mod:`repro.audio.signal`) that produces
sampled waveforms with speech-like syllable envelopes and controlled
inter-word / inter-sentence / inter-paragraph silences, carrying ground
truth annotations.  Everything downstream — pause detection, audio
paging, playback, recognition — operates on the sampled data exactly as
it would on real digitized voice, and the ground truth lets benchmarks
*measure* how well the paper's pause heuristics track real boundaries.
"""

from repro.audio.signal import Recording, SpeakerProfile, TimedWord, synthesize_speech
from repro.audio.pauses import (
    AdaptivePauseClassifier,
    FixedPauseClassifier,
    Pause,
    PauseIndex,
    PauseKind,
    detect_silences,
)
from repro.audio.pages import AudioPage, AudioPager
from repro.audio.recognition import RecognizedUtterance, VocabularyRecognizer
from repro.audio.player import AudioPlayer, PlayerState
from repro.audio.codec import mu_law_decode, mu_law_encode

__all__ = [
    "AdaptivePauseClassifier",
    "AudioPage",
    "AudioPager",
    "AudioPlayer",
    "FixedPauseClassifier",
    "Pause",
    "PauseIndex",
    "PauseKind",
    "PlayerState",
    "RecognizedUtterance",
    "Recording",
    "SpeakerProfile",
    "TimedWord",
    "VocabularyRecognizer",
    "detect_silences",
    "mu_law_decode",
    "mu_law_encode",
    "synthesize_speech",
]
