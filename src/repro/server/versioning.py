"""Version control on the archiver.

The optical platter is write-once, so versioning is naturally
append-only: storing a new version of a logical object never disturbs
the previous one.  The store keeps, per logical name, the chain of
object identifiers in version order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VersionError
from repro.ids import ObjectId
from repro.objects.model import MultimediaObject
from repro.server.archiver import Archiver, StoredObjectRecord


@dataclass
class VersionChain:
    """All versions of one logical object, oldest first."""

    name: str
    versions: list[ObjectId] = field(default_factory=list)

    @property
    def latest(self) -> ObjectId:
        """The most recent version's object id."""
        if not self.versions:
            raise VersionError(f"no versions recorded for {self.name!r}")
        return self.versions[-1]


class VersionStore:
    """Names logical objects and tracks their version chains."""

    def __init__(self, archiver: Archiver) -> None:
        self._archiver = archiver
        self._chains: dict[str, VersionChain] = {}

    def commit(self, name: str, obj: MultimediaObject) -> StoredObjectRecord:
        """Store ``obj`` as the next version of logical object ``name``.

        Raises
        ------
        VersionError
            If this object id is already a version of ``name``.
        """
        chain = self._chains.setdefault(name, VersionChain(name=name))
        if obj.object_id in chain.versions:
            raise VersionError(
                f"object {obj.object_id} is already a version of {name!r}"
            )
        record = self._archiver.store(obj)
        chain.versions.append(obj.object_id)
        return record

    def chain(self, name: str) -> VersionChain:
        """The version chain of a logical object.

        Raises
        ------
        VersionError
            If the name is unknown.
        """
        chain = self._chains.get(name)
        if chain is None:
            raise VersionError(f"no versions recorded for {name!r}")
        return chain

    def latest(self, name: str) -> tuple[MultimediaObject, float]:
        """Fetch the latest version of a logical object."""
        return self._archiver.fetch_object(self.chain(name).latest)

    def fetch_version(self, name: str, index: int) -> tuple[MultimediaObject, float]:
        """Fetch a specific version (0-based, oldest first).

        Raises
        ------
        VersionError
            If the index is out of range.
        """
        chain = self.chain(name)
        if not 0 <= index < len(chain.versions):
            raise VersionError(
                f"{name!r} has {len(chain.versions)} versions; no index {index}"
            )
        return self._archiver.fetch_object(chain.versions[index])

    def names(self) -> list[str]:
        """All logical object names."""
        return sorted(self._chains)
