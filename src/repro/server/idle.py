"""Idle-time voice recognition.

"Voice recognition is not taking place at the time of browsing.
Instead, some voice segments have been recognized at the time of voice
insertion, **or at machine's idle time**, from the digitized voice."

The :class:`IdleRecognizer` is that background worker: it scans the
archiver for audio content whose voice segments carry no recognized
utterances, runs the recognizer over them, stores the results in a
side table (the optical platter is write-once, so the stored bytes are
never touched), and folds the new terms into the content indexes —
both the legacy :class:`~repro.server.access.ContentIndex` and the
archive-wide :class:`~repro.index.ArchiveIndex`, whose voice channel
is re-versioned per object.  The archiver consults the side table when
rebuilding objects, so browsing sessions opened afterwards can
pattern-search the newly recognized speech.

A failing object (e.g. a recording with no recognizable content) does
not abort the sweep: the failure is recorded per object in the
:class:`IdleRunReport` and the sweep continues — idle work must drain
the whole backlog, not stop at the first bad recording.

The sweep ends with the other idle-time duty of the index: segment
compaction, which merges each shard's runs and physically drops voice
postings superseded by the sweep's own re-recognitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.recognition import RecognizedUtterance, VocabularyRecognizer
from repro.errors import RecognitionError
from repro.faults.registry import IDLE_COMPACT
from repro.ids import ObjectId, SegmentId
from repro.server.archiver import Archiver


@dataclass
class IdleRunReport:
    """What one idle-time sweep accomplished."""

    objects_scanned: int = 0
    segments_recognized: int = 0
    utterances_found: int = 0
    terms_indexed: int = 0
    processed_object_ids: list[ObjectId] = field(default_factory=list)
    # Per-object recognition failures: (object_id, reason).  A failure
    # never aborts the sweep.
    failures: list[tuple[ObjectId, str]] = field(default_factory=list)
    # Idle-time index compaction run at the end of the sweep.
    index_segments_merged: int = 0
    index_postings_dropped: int = 0

    @property
    def failed_object_ids(self) -> list[ObjectId]:
        """Objects whose recognition failed this sweep."""
        return [object_id for object_id, _ in self.failures]


class IdleRecognizer:
    """Background recognition over stored voice segments."""

    def __init__(
        self,
        archiver: Archiver,
        recognizer: VocabularyRecognizer,
        compact_index: bool = True,
    ) -> None:
        self._archiver = archiver
        self._recognizer = recognizer
        self._compact_index = compact_index
        self._done: set[ObjectId] = set()

    @property
    def pending(self) -> list[ObjectId]:
        """Stored objects not yet swept."""
        return [
            object_id
            for object_id in self._archiver.object_ids()
            if object_id not in self._done
        ]

    def run(self, max_objects: int | None = None) -> IdleRunReport:
        """Sweep up to ``max_objects`` stored objects (all by default).

        Only voice segments with no recognized utterances are
        processed — insertion-time recognition is never redone.  A
        :class:`~repro.errors.RecognitionError` on one object is
        recorded in the report and the sweep moves on to the next.

        The sweep is crash-idempotent: an object joins ``_done`` only
        once its recognition has committed (or terminally failed), so a
        sweep interrupted by a crash — including one injected inside
        :meth:`Archiver.attach_recognition` or at the ``idle.compact``
        site — can simply be re-run.  Re-running converges: committed
        recognitions are skipped (their segments already carry
        utterances), the interrupted object is re-recognized from
        scratch, and compaction's commit point is the atomic segment
        swap, so a half-done compaction leaves the old segments fully
        readable and the retry merges them again.
        """
        report = IdleRunReport()
        for object_id in self.pending:
            if max_objects is not None and report.objects_scanned >= max_objects:
                break
            report.objects_scanned += 1
            try:
                self._sweep_object(object_id, report)
            except RecognitionError as exc:
                report.failures.append((object_id, str(exc)))
            # Marked done only now: a crash mid-sweep leaves the object
            # pending, so the next run retries instead of skipping it.
            self._done.add(object_id)
        self._compact(report)
        return report

    def _sweep_object(self, object_id: ObjectId, report: IdleRunReport) -> None:
        obj, _ = self._archiver.fetch_object(object_id)
        side_table: dict[SegmentId, list[RecognizedUtterance]] = {}
        terms: set[str] = set()
        for segment in obj.voice_segments:
            if segment.utterances:
                continue  # recognized at insertion time
            try:
                utterances = self._recognizer.recognize(segment.recording)
            except RecognitionError as exc:
                report.failures.append(
                    (object_id, f"{segment.segment_id}: {exc}")
                )
                continue
            if not utterances:
                continue
            side_table[segment.segment_id] = utterances
            report.segments_recognized += 1
            report.utterances_found += len(utterances)
            terms.update(u.term for u in utterances)
        if side_table:
            self._archiver.attach_recognition(object_id, side_table)
            report.terms_indexed += len(terms)
            report.processed_object_ids.append(object_id)

    def _compact(self, report: IdleRunReport) -> None:
        archive_index = getattr(self._archiver, "archive_index", None)
        if not self._compact_index or archive_index is None:
            return
        fault_plan = getattr(self._archiver, "fault_plan", None)
        if fault_plan is not None:
            fault_plan.fire(IDLE_COMPACT)
        for result in archive_index.compact():
            report.index_segments_merged += result.segments_merged
            report.index_postings_dropped += result.postings_dropped
