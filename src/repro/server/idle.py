"""Idle-time voice recognition.

"Voice recognition is not taking place at the time of browsing.
Instead, some voice segments have been recognized at the time of voice
insertion, **or at machine's idle time**, from the digitized voice."

The :class:`IdleRecognizer` is that background worker: it scans the
archiver for audio content whose voice segments carry no recognized
utterances, runs the recognizer over them, stores the results in a
side table (the optical platter is write-once, so the stored bytes are
never touched), and folds the new terms into the content index.  The
archiver consults the side table when rebuilding objects, so browsing
sessions opened afterwards can pattern-search the newly recognized
speech.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.recognition import RecognizedUtterance, VocabularyRecognizer
from repro.ids import ObjectId, SegmentId
from repro.server.archiver import Archiver


@dataclass
class IdleRunReport:
    """What one idle-time sweep accomplished."""

    objects_scanned: int = 0
    segments_recognized: int = 0
    utterances_found: int = 0
    terms_indexed: int = 0
    processed_object_ids: list[ObjectId] = field(default_factory=list)


class IdleRecognizer:
    """Background recognition over stored voice segments."""

    def __init__(self, archiver: Archiver, recognizer: VocabularyRecognizer) -> None:
        self._archiver = archiver
        self._recognizer = recognizer
        self._done: set[ObjectId] = set()

    @property
    def pending(self) -> list[ObjectId]:
        """Stored objects not yet swept."""
        return [
            object_id
            for object_id in self._archiver.object_ids()
            if object_id not in self._done
        ]

    def run(self, max_objects: int | None = None) -> IdleRunReport:
        """Sweep up to ``max_objects`` stored objects (all by default).

        Only voice segments with no recognized utterances are
        processed — insertion-time recognition is never redone.
        """
        report = IdleRunReport()
        for object_id in self.pending:
            if max_objects is not None and report.objects_scanned >= max_objects:
                break
            report.objects_scanned += 1
            self._done.add(object_id)
            obj, _ = self._archiver.fetch_object(object_id)
            side_table: dict[SegmentId, list[RecognizedUtterance]] = {}
            terms: set[str] = set()
            for segment in obj.voice_segments:
                if segment.utterances:
                    continue  # recognized at insertion time
                utterances = self._recognizer.recognize(segment.recording)
                if not utterances:
                    continue
                side_table[segment.segment_id] = utterances
                report.segments_recognized += 1
                report.utterances_found += len(utterances)
                terms.update(u.term for u in utterances)
            if side_table:
                self._archiver.attach_recognition(object_id, side_table)
                report.terms_indexed += len(terms)
                report.processed_object_ids.append(object_id)
        return report
