"""Deterministic multi-workstation load generation and replay.

Two replay modes exercise the serving stack:

``replay_virtual``
    A discrete-event replay in *simulated time*: one shared optical
    device, FIFO service, optional shared cache with single-flight
    piggybacking.  Fully deterministic for a given schedule, so the
    C-CONC benchmark can assert latency-curve shapes (p95 grows with
    contention; the cache flattens it) with exact numbers.

``replay_threaded``
    Drives a real :class:`~repro.server.frontend.ServerFrontend` with
    one OS thread per workstation.  Thread interleaving is up to the
    host scheduler, so per-request latencies vary run to run — but the
    *totals* (device reads, device busy time, bytes served, cache
    effectiveness) are the quantities the queueing claim is about, and
    those are asserted on.

Schedules are generated from a seeded RNG: per-station Poisson
arrivals over a zipf-skewed object popularity distribution — a few hot
documents take most of the traffic, the regime where a shared cache
pays off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArchiverError, ServerBusyError
from repro.ids import ObjectId
from repro.server.archiver import Archiver, CachingArchiver
from repro.server.frontend import ServerFrontend
from repro.server.metrics import ServerMetrics
from repro.server.metrics import percentile as shared_percentile
from repro.storage.cache import LRUCache


@dataclass(frozen=True)
class LoadRequest:
    """One workstation request in an arrival schedule."""

    request_id: int
    station: str
    arrival_s: float
    object_id: ObjectId


@dataclass
class LoadReport:
    """Aggregate outcome of a replay."""

    latencies: list[float] = field(default_factory=list)
    device_busy_s: float = 0.0
    device_reads: int = 0
    cache_hits: int = 0
    piggybacks: int = 0
    rejected: int = 0

    @property
    def completed(self) -> int:
        """Number of requests that completed."""
        return len(self.latencies)

    def percentile(self, p: float) -> float:
        """Latency percentile in simulated seconds (0.0 if empty)."""
        return shared_percentile(self.latencies, p)

    @property
    def p50_s(self) -> float:
        """Median simulated latency."""
        return self.percentile(50)

    @property
    def p95_s(self) -> float:
        """95th-percentile simulated latency."""
        return self.percentile(95)

    @property
    def mean_s(self) -> float:
        """Mean simulated latency."""
        return float(np.mean(self.latencies)) if self.latencies else 0.0


def zipf_weights(n: int, skew: float = 1.1) -> np.ndarray:
    """Normalized zipf popularity weights over ``n`` ranked items."""
    if n <= 0:
        raise ArchiverError(f"popularity needs at least one item: {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -skew
    return weights / weights.sum()


def build_schedule(
    object_ids: list[ObjectId],
    *,
    stations: int,
    rate_per_station_s: float,
    duration_s: float,
    skew: float = 1.1,
    seed: int = 0,
) -> list[LoadRequest]:
    """A deterministic multi-station arrival schedule.

    Each of ``stations`` workstations issues Poisson arrivals at
    ``rate_per_station_s`` for ``duration_s`` simulated seconds, each
    request targeting an object drawn from a zipf(``skew``) popularity
    distribution over ``object_ids``.  Requests are returned sorted by
    arrival time with ids in arrival order.

    Raises
    ------
    ArchiverError
        If there are no objects or no stations.
    """
    if not object_ids:
        raise ArchiverError("schedule needs at least one object")
    if stations <= 0:
        raise ArchiverError(f"schedule needs at least one station: {stations}")
    weights = zipf_weights(len(object_ids), skew)
    rng = np.random.default_rng(seed)
    raw: list[tuple[float, str, ObjectId]] = []
    for station in range(stations):
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / rate_per_station_s))
            if now >= duration_s:
                break
            target = object_ids[int(rng.choice(len(object_ids), p=weights))]
            raw.append((now, f"ws-{station}", target))
    raw.sort(key=lambda row: row[0])
    return [
        LoadRequest(
            request_id=index, station=station, arrival_s=arrival,
            object_id=object_id,
        )
        for index, (arrival, station, object_id) in enumerate(raw)
    ]


def station_subset(
    schedule: list[LoadRequest], stations: int
) -> list[LoadRequest]:
    """The requests of the first ``stations`` workstations only.

    Contention experiments need *nested* workloads: the 4-user load is
    exactly the 2-user load plus two more stations' streams, so any
    latency growth is attributable to added contention, not to a
    different random draw.
    """
    keep = {f"ws-{i}" for i in range(stations)}
    return [request for request in schedule if request.station in keep]


def replay_virtual(
    archiver: Archiver | CachingArchiver,
    schedule: list[LoadRequest],
    *,
    cache_bytes: int | None = None,
    metrics: ServerMetrics | None = None,
) -> LoadReport:
    """Replay a schedule in virtual time against one shared device.

    The device serves fetches FIFO in arrival order; each fetch's
    service time comes from the device geometry and head position, so
    queueing delay emerges exactly as in Section 5.  With
    ``cache_bytes`` set, a shared LRU cache absorbs repeats and
    in-flight fetches absorb concurrent duplicates (single-flight):
    a request arriving while its object is already being fetched
    completes when that fetch does, adding no device work.

    The archiver is only consulted for object extents — no bytes are
    actually read, which keeps the replay O(requests).
    """
    geometry = archiver.disk.geometry
    cache = LRUCache(cache_bytes) if cache_bytes else None
    flights: dict[str, float] = {}  # key -> finish time of last fetch
    report = LoadReport()
    device_free = 0.0
    head = 0
    for request in sorted(schedule, key=lambda r: (r.arrival_s, r.request_id)):
        key = f"obj/{request.object_id}"
        extent = archiver.record(request.object_id).extent
        arrival = request.arrival_s
        service = 0.0
        if cache is not None and flights.get(key, 0.0) > arrival:
            # Piggyback on the in-flight fetch of the same object.
            finish = flights[key]
            latency = finish - arrival
            report.piggybacks += 1
        elif cache is not None and cache.get(key) is not None:
            finish = arrival
            latency = 0.0
            report.cache_hits += 1
        else:
            start = max(device_free, arrival)
            service = geometry.access_time(head, extent)
            finish = start + service
            device_free = finish
            head = extent.end
            report.device_busy_s += service
            report.device_reads += 1
            latency = finish - arrival
            if cache is not None:
                cache.put(key, bytes(extent.length))
                flights[key] = finish
        report.latencies.append(latency)
        if metrics is not None:
            metrics.on_complete(
                request.station, "fetch", latency, service, finish,
                cache_hit=(service == 0.0),
            )
    return report


def replay_threaded(
    frontend: ServerFrontend,
    schedule: list[LoadRequest],
    *,
    timeout_s: float = 60.0,
) -> LoadReport:
    """Replay a schedule through a live frontend, one thread per station.

    Each station thread issues its own requests in arrival order
    (closed-loop: it waits for each response before issuing the next,
    like a real workstation session).  Rejected requests
    (:class:`ServerBusyError`) are counted, not retried.  Device totals
    are reported as deltas over the replay.
    """
    disk = frontend.archiver.disk
    busy_before = disk.stats.busy_time_s
    reads_before = disk.stats.reads
    report = LoadReport()
    lock = threading.Lock()
    by_station: dict[str, list[LoadRequest]] = {}
    for request in sorted(schedule, key=lambda r: (r.arrival_s, r.request_id)):
        by_station.setdefault(request.station, []).append(request)

    def run_station(requests: list[LoadRequest]) -> None:
        for request in requests:
            try:
                future = frontend.submit(
                    "fetch", request.object_id, station=request.station,
                    arrival_s=request.arrival_s,
                )
                _, service = future.result(timeout=timeout_s)
            except ServerBusyError:
                with lock:
                    report.rejected += 1
                continue
            with lock:
                report.latencies.append(service)
                if service == 0.0:
                    report.cache_hits += 1

    threads = [
        threading.Thread(target=run_station, args=(requests,), daemon=True)
        for requests in by_station.values()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    report.device_busy_s = disk.stats.busy_time_s - busy_before
    report.device_reads = disk.stats.reads - reads_before
    if isinstance(frontend.archiver, CachingArchiver):
        flights = frontend.archiver.flight_stats.snapshot()
        report.piggybacks = flights.piggybacks
    return report
