"""Content queries and the sequential miniature browsing interface.

"Users in this environment may not be able to express precisely what
they want.  Miniatures of qualifying objects may be returned to the
user using a sequential browsing interface in order to facilitate
browsing through a large number of objects that may qualify."

A miniature is a small representation of the object: a reduced bitmap
of its first image (or first visual-page text) for visual mode objects,
or an audio-mode marker plus a short voice sample for audio mode
objects.  The stream generator accounts both the archiver service time
and the network shipping time per card, so the C-MINI benchmark can
compare it with shipping full objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.audio.signal import Recording
from repro.ids import ImageId, ObjectId
from repro.images.image import Image
from repro.images.miniature import make_miniature
from repro.objects.attributes import AttributeValue
from repro.objects.model import DrivingMode, MultimediaObject
from repro.server.archiver import Archiver
from repro.server.network import NetworkLink


@dataclass
class MiniatureCard:
    """One entry of the sequential browsing stream."""

    object_id: ObjectId
    driving_mode: str
    summary: str
    nbytes: int
    miniature: Image | None
    voice_sample: Recording | None
    available_at_s: float  # simulated time the card reaches the screen


class QueryInterface:
    """Evaluates content queries and ships result streams."""

    def __init__(
        self,
        archiver: Archiver,
        link: NetworkLink | None = None,
        miniature_scale: int = 8,
        voice_sample_s: float = 3.0,
    ) -> None:
        self._archiver = archiver
        self._link = link or NetworkLink()
        self._scale = miniature_scale
        self._voice_sample_s = voice_sample_s
        # Miniature cards are materialized once per object — modelling
        # MINOS building them at archive/idle time — so serving one at
        # browse time costs a single card-sized read, not an object
        # reconstruction.
        self._cards: dict[ObjectId, MiniatureCard] = {}

    def select(
        self, terms: list[str] | None = None, **criteria: AttributeValue
    ) -> list[ObjectId]:
        """Evaluate a content query; returns qualifying object ids.

        Results are returned in storage order so the stream is stable.
        """
        matching = self._archiver.index.search(terms=terms, **criteria)
        return [oid for oid in self._archiver.object_ids() if oid in matching]

    # ------------------------------------------------------------------
    # result shipping
    # ------------------------------------------------------------------

    def miniature_stream(self, object_ids: list[ObjectId]) -> Iterator[MiniatureCard]:
        """Ship miniatures of the qualifying objects, one at a time.

        Cards arrive sequentially; each card's ``available_at_s``
        accumulates archiver service plus network transfer, modelling
        the user watching miniatures "pass through the screen".
        """
        now = 0.0
        for object_id in object_ids:
            card = self._card_for(object_id)
            record = self._archiver.record(object_id)
            _, service = self._archiver.read_absolute(
                record.extent.offset,
                min(card.nbytes, record.extent.length),
            )
            now += service + self._link.transfer_time(card.nbytes)
            yield MiniatureCard(
                object_id=card.object_id,
                driving_mode=card.driving_mode,
                summary=card.summary,
                nbytes=card.nbytes,
                miniature=card.miniature,
                voice_sample=card.voice_sample,
                available_at_s=now,
            )

    def full_object_stream(
        self, object_ids: list[ObjectId]
    ) -> Iterator[tuple[ObjectId, int, float]]:
        """Ship complete objects instead (the baseline C-MINI compares).

        Yields ``(object_id, nbytes, available_at_s)``.
        """
        now = 0.0
        for object_id in object_ids:
            record = self._archiver.record(object_id)
            _, service = self._archiver.read_absolute(
                record.extent.offset, record.extent.length
            )
            now += service + self._link.transfer_time(record.extent.length)
            yield object_id, record.extent.length, now

    # ------------------------------------------------------------------
    # miniature construction
    # ------------------------------------------------------------------

    def _card_for(self, object_id: ObjectId) -> MiniatureCard:
        """The materialized miniature card of an object (built once)."""
        card = self._cards.get(object_id)
        if card is None:
            obj, _ = self._archiver.fetch_object(object_id)
            card = self._make_card(obj)
            self._cards[object_id] = card
        return card

    def _make_card(self, obj: MultimediaObject) -> MiniatureCard:
        miniature: Image | None = None
        voice_sample: Recording | None = None
        summary = ""
        nbytes = 64  # card framing overhead

        if obj.driving_mode is DrivingMode.AUDIO:
            summary = "[audio mode object]"
            if obj.voice_segments:
                segment = obj.voice_segments[0]
                end = min(self._voice_sample_s, segment.duration)
                voice_sample = segment.recording.slice(0.0, end)
                nbytes += voice_sample.nbytes
        else:
            full_images = [i for i in obj.images if not i.is_representation]
            if full_images:
                image = full_images[0]
                scale = min(
                    self._scale, max(2, min(image.width, image.height) // 8)
                )
                miniature = make_miniature(
                    image, scale, ImageId(f"{image.image_id}-mini")
                )
                nbytes += miniature.nbytes
            if obj.text_segments:
                first_line = obj.text_segments[0].plain_text.strip().splitlines()
                summary = first_line[0][:64] if first_line else ""
                nbytes += len(summary)
        return MiniatureCard(
            object_id=obj.object_id,
            driving_mode=obj.driving_mode.value,
            summary=summary,
            nbytes=nbytes,
            miniature=miniature,
            voice_sample=voice_sample,
            available_at_s=0.0,
        )
