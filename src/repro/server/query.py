"""Content queries and the sequential miniature browsing interface.

"Users in this environment may not be able to express precisely what
they want.  Miniatures of qualifying objects may be returned to the
user using a sequential browsing interface in order to facilitate
browsing through a large number of objects that may qualify."

A miniature is a small representation of the object: a reduced bitmap
of its first image (or first visual-page text) for visual mode objects,
or an audio-mode marker plus a short voice sample for audio mode
objects.  The stream generator accounts both the archiver service time
and the network shipping time per card, so the C-MINI benchmark can
compare it with shipping full objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.audio.signal import Recording
from repro.errors import QueryError
from repro.formatter.archive import object_token_units
from repro.ids import ImageId, ObjectId
from repro.images.image import Image
from repro.images.miniature import make_miniature
from repro.index import BOTH, matches_units, parse_query, terms_query
from repro.index.planner import Node
from repro.index.postings import validate_channel
from repro.objects.attributes import AttributeValue
from repro.objects.model import DrivingMode, MultimediaObject
from repro.server.archiver import Archiver
from repro.server.network import NetworkLink


@dataclass
class MiniatureCard:
    """One entry of the sequential browsing stream."""

    object_id: ObjectId
    driving_mode: str
    summary: str
    nbytes: int
    miniature: Image | None
    voice_sample: Recording | None
    available_at_s: float  # simulated time the card reaches the screen


class QueryInterface:
    """Evaluates content queries and ships result streams."""

    def __init__(
        self,
        archiver: Archiver,
        link: NetworkLink | None = None,
        miniature_scale: int = 8,
        voice_sample_s: float = 3.0,
    ) -> None:
        self._archiver = archiver
        self._link = link or NetworkLink()
        self._scale = miniature_scale
        self._voice_sample_s = voice_sample_s
        # Miniature cards are materialized once per object — modelling
        # MINOS building them at archive/idle time — so serving one at
        # browse time costs a single card-sized read, not an object
        # reconstruction.
        self._cards: dict[ObjectId, MiniatureCard] = {}

    def select(
        self,
        terms: list[str] | None = None,
        *,
        channel: str = BOTH,
        use_index: bool = True,
        **criteria: AttributeValue,
    ) -> list[ObjectId]:
        """Evaluate a content query; returns qualifying object ids.

        Results are returned in storage order so the stream is stable.

        ``channel`` filters term matches to ``"text"``, ``"voice"`` or
        ``"both"`` — the symmetric access method of the archive index.
        With ``use_index=True`` (the default) term queries are served
        by the archive-wide index and never touch object media; with
        ``use_index=False`` they are evaluated by scanning and
        rebuilding every stored object — the linear-cost baseline the
        C-SEARCH benchmark compares against, and the oracle the
        property suite holds the index to.

        Attribute-only queries are always answered from descriptor
        attributes alone: no object media is ever opened for them.

        Raises
        ------
        QueryError
            If neither terms nor attribute criteria are given.
        """
        validate_channel(channel)
        if not terms and not criteria:
            raise QueryError("query needs terms or attribute criteria")
        matched: set[ObjectId] | None = None
        if terms:
            if use_index:
                matched = self._archive_index().search_terms(
                    list(terms), channel=channel
                )
            else:
                matched = self._scan_query(terms_query(list(terms)), channel)
        if criteria:
            # Attribute predicates are evaluated on descriptor data
            # only — never by opening object media — so an
            # attribute-only query short-circuits past both term paths.
            attr_matched = self._archiver.index.search_attributes(**criteria)
            matched = attr_matched if matched is None else matched & attr_matched
        return self._in_storage_order(matched, use_index=use_index)

    def search(
        self, query: str, *, channel: str = BOTH, use_index: bool = True
    ) -> list[ObjectId]:
        """Evaluate a term/phrase/boolean content query string.

        The full planner grammar applies: ``budget AND (urgent OR
        "optical disk") NOT radiology``, with quoted phrases matching
        consecutive tokens within one segment or label.  Results are in
        storage order.  ``use_index=False`` evaluates the same query by
        scanning every stored object (the oracle baseline).

        Raises
        ------
        QueryError
            On malformed queries.
        """
        validate_channel(channel)
        node = parse_query(query)
        if use_index:
            return self._archive_index().query(node, channel=channel)
        return self._in_storage_order(
            self._scan_query(node, channel), use_index=False
        )

    # ------------------------------------------------------------------
    # query internals
    # ------------------------------------------------------------------

    def _archive_index(self):
        index = getattr(self._archiver, "archive_index", None)
        if index is None:
            raise QueryError(
                "index-served queries need an archiver with an archive "
                "index; pass use_index=False to scan"
            )
        return index

    def _scan_query(self, node: Node, channel: str) -> set[ObjectId]:
        """The linear baseline: rebuild and test every stored object."""
        hits: set[ObjectId] = set()
        for object_id in self._archiver.object_ids():
            obj, _ = self._archiver.fetch_object(object_id)
            if matches_units(node, channel, object_token_units(obj)):
                hits.add(object_id)
        return hits

    def _in_storage_order(
        self, matched: set[ObjectId], use_index: bool
    ) -> list[ObjectId]:
        if use_index:
            index = getattr(self._archiver, "archive_index", None)
            if index is not None:
                # Index-served ordering: sort the result set by its
                # storage ordinals instead of scanning the whole
                # archive's id list.
                return index.in_storage_order(matched)
        return [oid for oid in self._archiver.object_ids() if oid in matched]

    # ------------------------------------------------------------------
    # result shipping
    # ------------------------------------------------------------------

    def miniature_stream(self, object_ids: list[ObjectId]) -> Iterator[MiniatureCard]:
        """Ship miniatures of the qualifying objects, one at a time.

        Cards arrive sequentially; each card's ``available_at_s``
        accumulates archiver service plus network transfer, modelling
        the user watching miniatures "pass through the screen".
        """
        now = 0.0
        for object_id in object_ids:
            card = self._card_for(object_id)
            record = self._archiver.record(object_id)
            _, service = self._archiver.read_absolute(
                record.extent.offset,
                min(card.nbytes, record.extent.length),
            )
            now += service + self._link.transfer_time(card.nbytes)
            yield MiniatureCard(
                object_id=card.object_id,
                driving_mode=card.driving_mode,
                summary=card.summary,
                nbytes=card.nbytes,
                miniature=card.miniature,
                voice_sample=card.voice_sample,
                available_at_s=now,
            )

    def full_object_stream(
        self, object_ids: list[ObjectId]
    ) -> Iterator[tuple[ObjectId, int, float]]:
        """Ship complete objects instead (the baseline C-MINI compares).

        Yields ``(object_id, nbytes, available_at_s)``.
        """
        now = 0.0
        for object_id in object_ids:
            record = self._archiver.record(object_id)
            _, service = self._archiver.read_absolute(
                record.extent.offset, record.extent.length
            )
            now += service + self._link.transfer_time(record.extent.length)
            yield object_id, record.extent.length, now

    # ------------------------------------------------------------------
    # miniature construction
    # ------------------------------------------------------------------

    def _card_for(self, object_id: ObjectId) -> MiniatureCard:
        """The materialized miniature card of an object (built once)."""
        card = self._cards.get(object_id)
        if card is None:
            obj, _ = self._archiver.fetch_object(object_id)
            card = self._make_card(obj)
            self._cards[object_id] = card
        return card

    def _make_card(self, obj: MultimediaObject) -> MiniatureCard:
        miniature: Image | None = None
        voice_sample: Recording | None = None
        summary = ""
        nbytes = 64  # card framing overhead

        if obj.driving_mode is DrivingMode.AUDIO:
            summary = "[audio mode object]"
            if obj.voice_segments:
                segment = obj.voice_segments[0]
                end = min(self._voice_sample_s, segment.duration)
                voice_sample = segment.recording.slice(0.0, end)
                nbytes += voice_sample.nbytes
        else:
            full_images = [i for i in obj.images if not i.is_representation]
            if full_images:
                image = full_images[0]
                scale = min(
                    self._scale, max(2, min(image.width, image.height) // 8)
                )
                miniature = make_miniature(
                    image, scale, ImageId(f"{image.image_id}-mini")
                )
                nbytes += miniature.nbytes
            if obj.text_segments:
                first_line = obj.text_segments[0].plain_text.strip().splitlines()
                summary = first_line[0][:64] if first_line else ""
                nbytes += len(summary)
        return MiniatureCard(
            object_id=obj.object_id,
            driving_mode=obj.driving_mode.value,
            summary=summary,
            nbytes=nbytes,
            miniature=miniature,
            voice_sample=voice_sample,
            available_at_s=0.0,
        )
