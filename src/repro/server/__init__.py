"""The multimedia object server subsystem (Section 5).

"The multimedia object server subsystem is optical disk based...  It is
used to store objects in an archived state.  The major concern in the
server subsystem is performance...  The subsystem provides access
methods, scheduling, cashing, version control."  [sic]

Workstations talk to the server over a simulated network link; the
presentation manager "requests the appropriate pieces of information
from the multimedia object server subsystems" — which is why the
archiver supports partial (byte-range) reads of stored data pieces:
views fetch windows, not whole images.
"""

from repro.server.network import NetworkLink
from repro.server.access import ContentIndex
from repro.server.archiver import (
    Archiver,
    CachingArchiver,
    FetchResult,
    FlightStats,
    StoredObjectRecord,
)
from repro.server.frontend import ServerFrontend, ServerFuture, ServerRequest
from repro.server.loadgen import (
    LoadReport,
    LoadRequest,
    build_schedule,
    replay_threaded,
    replay_virtual,
    station_subset,
    zipf_weights,
)
from repro.server.metrics import Histogram, MetricsSnapshot, ServerMetrics
from repro.server.scheduler import (
    CompletedRequest,
    DiskRequest,
    simulate_schedule,
    total_seek_distance,
)
from repro.server.versioning import VersionStore
from repro.server.idle import IdleRecognizer, IdleRunReport
from repro.server.query import MiniatureCard, QueryInterface

__all__ = [
    "Archiver",
    "CachingArchiver",
    "CompletedRequest",
    "ContentIndex",
    "DiskRequest",
    "FetchResult",
    "FlightStats",
    "Histogram",
    "IdleRecognizer",
    "IdleRunReport",
    "LoadReport",
    "LoadRequest",
    "MetricsSnapshot",
    "MiniatureCard",
    "NetworkLink",
    "QueryInterface",
    "ServerFrontend",
    "ServerFuture",
    "ServerMetrics",
    "ServerRequest",
    "StoredObjectRecord",
    "VersionStore",
    "build_schedule",
    "replay_threaded",
    "replay_virtual",
    "simulate_schedule",
    "station_subset",
    "total_seek_distance",
    "zipf_weights",
]
