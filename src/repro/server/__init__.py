"""The multimedia object server subsystem (Section 5).

"The multimedia object server subsystem is optical disk based...  It is
used to store objects in an archived state.  The major concern in the
server subsystem is performance...  The subsystem provides access
methods, scheduling, cashing, version control."  [sic]

Workstations talk to the server over a simulated network link; the
presentation manager "requests the appropriate pieces of information
from the multimedia object server subsystems" — which is why the
archiver supports partial (byte-range) reads of stored data pieces:
views fetch windows, not whole images.
"""

from repro.server.network import NetworkLink
from repro.server.access import ContentIndex
from repro.server.archiver import Archiver, FetchResult, StoredObjectRecord
from repro.server.scheduler import (
    CompletedRequest,
    DiskRequest,
    simulate_schedule,
)
from repro.server.versioning import VersionStore
from repro.server.idle import IdleRecognizer, IdleRunReport
from repro.server.query import MiniatureCard, QueryInterface

__all__ = [
    "Archiver",
    "CompletedRequest",
    "ContentIndex",
    "DiskRequest",
    "FetchResult",
    "IdleRecognizer",
    "IdleRunReport",
    "MiniatureCard",
    "NetworkLink",
    "QueryInterface",
    "StoredObjectRecord",
    "VersionStore",
    "simulate_schedule",
]
