"""Crash recovery: rebuild a consistent archive from device bytes.

``Archiver.recover()`` delegates here.  Recovery trusts exactly two
things: the bytes on the optical platter and the journal on the
magnetic disk (see :mod:`repro.storage.journal`).  Everything volatile
— record tables, recognition side tables, version tokens, the content
indexes, the staging cache — is discarded and reconstructed, so the
outcome is identical whether the process died at the first or the last
instruction of a commit protocol.

The decision procedure per journaled transaction:

========== ===================== =====================================
status     evidence              outcome
========== ===================== =====================================
sealed     (trusted)             republish (``stores_recovered``)
pending    platter crc matches   roll forward: publish + seal
pending    platter crc mismatch  roll back: dead extent + abort
aborted    —                     dead extent only
========== ===================== =====================================

After recovery every crash point lands in one of exactly two states:
*object fully archived and indexed* or *object absent with its space
accounted as reclaimable* — never in between.  ``unaccounted_bytes``
is the tiling check: owned extents plus dead extents must cover the
platter's allocated bytes exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.formatter.archive import archive_postings, unpack_archived
from repro.ids import ObjectId, SegmentId
from repro.server.access import ContentIndex
from repro.storage.blockdev import Extent
from repro.storage.journal import ABORTED, PENDING, SEALED

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.audio.recognition import RecognizedUtterance
    from repro.server.archiver import Archiver, StoredObjectRecord
    from repro.server.metrics import ServerMetrics


@dataclass
class RecoveryReport:
    """What one :meth:`Archiver.recover` call reconstructed."""

    journal_records_read: int = 0
    torn_journal_records: int = 0
    stores_recovered: int = 0
    stores_rolled_forward: int = 0
    stores_rolled_back: int = 0
    stores_aborted: int = 0
    recognitions_recovered: int = 0
    recognitions_rolled_forward: int = 0
    recognitions_rolled_back: int = 0
    recognitions_aborted: int = 0
    objects_recovered: int = 0
    index_postings: int = 0
    orphan_index_segments: int = 0
    cache_entries_dropped: int = 0
    #: Platter extents owned by no recovered object: reclaimable space
    #: left behind by rolled-back or aborted stores (WORM media cannot
    #: be rewritten, but allocators may skip over these).
    dead_extents: list[Extent] = field(default_factory=list)
    #: Allocated platter bytes neither owned nor dead — must be 0.
    unaccounted_bytes: int = 0

    @property
    def dead_bytes(self) -> int:
        """Total reclaimable bytes across all dead extents."""
        return sum(extent.length for extent in self.dead_extents)

    @property
    def rolled_back_any(self) -> bool:
        """Whether any transaction was rolled back."""
        return self.stores_rolled_back + self.recognitions_rolled_back > 0


def encode_side_table(side_table: dict) -> dict:
    """Serialize a recognition side table for the journal payload."""
    return {
        str(segment_id): [[u.term, u.time] for u in utterances]
        for segment_id, utterances in side_table.items()
    }


def decode_side_table(encoded: dict) -> dict:
    """Rebuild a recognition side table from a journal payload."""
    from repro.audio.recognition import RecognizedUtterance

    return {
        SegmentId(key): [
            RecognizedUtterance(term=term, time=time) for term, time in pairs
        ]
        for key, pairs in encoded.items()
    }


def _emit(metrics: "ServerMetrics | None", outcome: str, **detail) -> None:
    if metrics is not None:
        metrics.on_recovery(outcome, **detail)


def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce half-open ``(start, end)`` intervals into a sorted union."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def dead_extent_union(
    candidates: list[Extent], owned: list[Extent]
) -> list[Extent]:
    """Candidate dead extents, unioned and with owned bytes carved out.

    The result is a disjoint, sorted list of extents covering exactly
    the bytes that some failed intent claims and no live record owns —
    the space an allocator may reclaim.
    """
    dead = _merge([(e.offset, e.end) for e in candidates])
    walls = _merge([(e.offset, e.end) for e in owned])
    result: list[Extent] = []
    for start, end in dead:
        cursor = start
        for w_start, w_end in walls:
            if w_end <= cursor or w_start >= end:
                continue
            if w_start > cursor:
                result.append(Extent(cursor, w_start - cursor))
            cursor = max(cursor, w_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append(Extent(cursor, end - cursor))
    return result


def tiling_gap(archiver: "Archiver") -> int:
    """Allocated platter bytes with no journal evidence (0 when healthy).

    The read-only, any-time form of the recovery tiling check: every
    allocated byte must be owned by a live record or covered by some
    journaled store intent (a failed store's reclaimable remainder).  A
    positive gap means bytes reached the platter that no recovery could
    ever account for — a write-ahead violation (data appended without
    its journal intent), exactly the class of commit-protocol bug the
    simulation harness exists to catch.  Quiesce-time checkers call
    this on live nodes without disturbing them.
    """
    with archiver._lock:
        used = archiver._disk.used_bytes
        owned = [record.extent for record in archiver._records.values()]
        candidates: list[Extent] = []
        for entry in archiver._journal.replay().entries:
            if entry.kind != "store":
                continue
            offset = entry.payload["offset"]
            end = min(offset + entry.payload["length"], used)
            if end > offset:
                candidates.append(Extent(offset, end - offset))
        dead = dead_extent_union(candidates, owned)
        owned_total = sum(extent.length for extent in owned)
        return used - owned_total - sum(extent.length for extent in dead)


def recover_archiver(
    archiver: "Archiver", metrics: "ServerMetrics | None" = None
) -> RecoveryReport:
    """Rebuild ``archiver``'s volatile state from its devices + journal.

    Raises
    ------
    RecoveryError
        If a *sealed* transaction's platter bytes fail their checksum —
        sealed means durable, so this indicates real media corruption
        (or a commit-protocol bug), not an interrupted write.
    """
    from repro.server.archiver import StoredObjectRecord

    report = RecoveryReport()

    # ------------------------------------------------------------------
    # 1. Discard everything volatile.  A crash wiped main memory; the
    #    staging cache must never serve bytes the recovered descriptors
    #    do not own, so it is dropped wholesale.
    # ------------------------------------------------------------------
    with archiver._lock:
        archiver._records.clear()
        archiver._recognition_table.clear()
        archiver._versions.clear()
        archiver.index = ContentIndex()
        report.orphan_index_segments = archiver.archive_index.drop_orphans()
        archiver.archive_index.reset()
        if archiver._cache is not None:
            report.cache_entries_dropped = len(archiver._cache)
            archiver._cache.clear()

        # --------------------------------------------------------------
        # 2. Replay the journal in txid order.  A recognition always
        #    carries a larger txid than the store it extends, so a
        #    single ordered pass resolves every dependency.
        # --------------------------------------------------------------
        replay = archiver._journal.replay()
        report.journal_records_read = replay.records_read
        report.torn_journal_records = replay.torn_records_skipped
        used = archiver._disk.used_bytes
        dead: list[Extent] = []

        def clamp(offset: int, length: int) -> Extent | None:
            """The allocated part of an intended extent (None if none)."""
            end = min(offset + length, used)
            if end <= offset:
                return None
            return Extent(offset, end - offset)

        for entry in replay.entries:
            _emit(
                metrics, "replay", txid=entry.txid, txn=entry.kind,
                status=entry.status,
            )
            if entry.kind == "store":
                payload = entry.payload
                object_id = ObjectId(payload["object_id"])
                offset, length = payload["offset"], payload["length"]
                extent = Extent(offset, length)
                data: bytes | None = None
                if extent.end <= used:
                    data, _ = archiver.read_raw(extent)
                valid = (
                    data is not None
                    and zlib.crc32(data) == payload["crc"]
                )
                if entry.status == ABORTED:
                    report.stores_aborted += 1
                    partial = clamp(offset, length)
                    if partial is not None:
                        dead.append(partial)
                    continue
                if entry.status == SEALED and not valid:
                    raise RecoveryError(
                        f"sealed store of {object_id} fails its checksum "
                        f"at {extent}: media corruption"
                    )
                if valid:
                    descriptor, _composition = unpack_archived(data)
                    archiver._records[object_id] = StoredObjectRecord(
                        object_id=object_id,
                        extent=extent,
                        composition_base=payload["composition_base"],
                        descriptor=descriptor,
                    )
                    archiver._versions[object_id] = 1
                    if entry.status == PENDING:
                        archiver._journal.seal(entry.txid)
                        report.stores_rolled_forward += 1
                        _emit(
                            metrics, "rollforward", txid=entry.txid,
                            object_id=str(object_id),
                        )
                    else:
                        report.stores_recovered += 1
                else:
                    archiver._journal.abort(entry.txid)
                    report.stores_rolled_back += 1
                    partial = clamp(offset, length)
                    if partial is not None:
                        dead.append(partial)
                    _emit(
                        metrics, "rollback", txid=entry.txid,
                        object_id=str(object_id),
                    )
            elif entry.kind == "recognize":
                payload = entry.payload
                object_id = ObjectId(payload["object_id"])
                if entry.status == ABORTED:
                    report.recognitions_aborted += 1
                    continue
                if object_id not in archiver._records:
                    # The store this recognition extends rolled back.
                    if entry.status == PENDING:
                        archiver._journal.abort(entry.txid)
                    report.recognitions_rolled_back += 1
                    _emit(
                        metrics, "rollback", txid=entry.txid,
                        object_id=str(object_id),
                    )
                    continue
                # The journal carries the *complete merged* side table,
                # so assignment is idempotent and later records win.
                archiver._recognition_table[object_id] = decode_side_table(
                    payload["side_table"]
                )
                archiver._versions[object_id] = max(
                    archiver._versions[object_id], int(payload["version"])
                )
                if entry.status == PENDING:
                    archiver._journal.seal(entry.txid)
                    report.recognitions_rolled_forward += 1
                    _emit(
                        metrics, "rollforward", txid=entry.txid,
                        object_id=str(object_id),
                    )
                else:
                    report.recognitions_recovered += 1

        # --------------------------------------------------------------
        # 3. Rebuild both content indexes from the recovered objects.
        #    Iteration order is txid order, which is platter (storage)
        #    order, so query result ordering survives recovery.
        # --------------------------------------------------------------
        for object_id in list(archiver._records):
            obj, _ = archiver.fetch_object(object_id, _count=False)
            archiver.index.index_object(obj)
            report.index_postings += archiver.archive_index.insert_object(
                object_id,
                archive_postings(obj),
                version=archiver._versions[object_id],
            )
        report.objects_recovered = len(archiver._records)

        # --------------------------------------------------------------
        # 4. Tiling check: every allocated platter byte is owned by a
        #    recovered object or accounted as dead (reclaimable).
        #    Candidate dead extents are *intents*, and an intent may
        #    overstate what was written: a store that aborted before
        #    (or partway through) its platter append journals a full
        #    extent whose offsets a later successful store legitimately
        #    reuses.  Dead space is therefore the interval union of the
        #    candidates minus the owned extents — never bytes a live
        #    record owns, and never double-counted.
        # --------------------------------------------------------------
        owned_extents = [
            record.extent for record in archiver._records.values()
        ]
        owned = sum(extent.length for extent in owned_extents)
        report.dead_extents = dead_extent_union(dead, owned_extents)
        report.unaccounted_bytes = used - owned - report.dead_bytes

    _emit(
        metrics, "complete",
        objects=report.objects_recovered,
        rolled_forward=report.stores_rolled_forward
        + report.recognitions_rolled_forward,
        rolled_back=report.stores_rolled_back
        + report.recognitions_rolled_back,
        dead_bytes=report.dead_bytes,
    )
    return report
