"""Content access methods.

"Users submit queries based on object content from their workstation.
The queries are evaluated by the server subsystem against the
multimedia data base."  The index covers the three content sources the
paper names: attributes, text terms, and recognized voice terms — the
last being what makes voice content-addressable "by using the same
access methods as in text".
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import QueryError
from repro.ids import ObjectId
from repro.objects.attributes import AttributeValue
from repro.objects.model import MultimediaObject
from repro.text.search import tokenize


class ContentIndex:
    """Inverted indexes over a collection of archived objects."""

    def __init__(self) -> None:
        self._term_index: dict[str, set[ObjectId]] = defaultdict(set)
        self._attribute_index: dict[tuple[str, AttributeValue], set[ObjectId]] = (
            defaultdict(set)
        )
        self._indexed: set[ObjectId] = set()

    def __len__(self) -> int:
        return len(self._indexed)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._indexed

    def index_object(self, obj: MultimediaObject) -> int:
        """Index one object; returns the number of distinct terms added.

        Text terms come from every text segment's plain text; voice
        terms from every voice segment's recognized utterances; label
        terms from image labels (useful for locating objects such as
        "the road map with a hospital on it").
        """
        terms: set[str] = set()
        for segment in obj.text_segments:
            terms.update(term for term, _ in tokenize(segment.plain_text))
        for segment in obj.voice_segments:
            terms.update(segment.utterance_terms())
        for image in obj.images:
            for graphics in image.labelled_objects():
                terms.update(term for term, _ in tokenize(graphics.label.text))
        for term in terms:
            self._term_index[term].add(obj.object_id)
        for name, value in obj.attributes:
            self._attribute_index[(name, value)].add(obj.object_id)
        self._indexed.add(obj.object_id)
        return len(terms)

    def add_terms(self, object_id: ObjectId, terms: set[str]) -> None:
        """Fold extra terms for an already-indexed object.

        Used by idle-time recognition: utterances recognized after
        archiving make the object reachable under new terms.
        """
        for term in terms:
            self._term_index[term.lower()].add(object_id)
        self._indexed.add(object_id)

    def search_terms(self, *terms: str) -> set[ObjectId]:
        """Objects containing *all* the given terms (conjunctive).

        Raises
        ------
        QueryError
            If no terms are given.
        """
        if not terms:
            raise QueryError("term search needs at least one term")
        result: set[ObjectId] | None = None
        for term in terms:
            matching = self._term_index.get(term.lower(), set())
            result = matching.copy() if result is None else result & matching
            if not result:
                return set()
        return result or set()

    def search_attributes(self, **criteria: AttributeValue) -> set[ObjectId]:
        """Objects whose attributes equal every criterion.

        Raises
        ------
        QueryError
            If no criteria are given.
        """
        if not criteria:
            raise QueryError("attribute search needs at least one criterion")
        result: set[ObjectId] | None = None
        for name, value in criteria.items():
            matching = self._attribute_index.get((name, value), set())
            result = matching.copy() if result is None else result & matching
            if not result:
                return set()
        return result or set()

    def search(
        self, terms: list[str] | None = None, **criteria: AttributeValue
    ) -> set[ObjectId]:
        """Combined conjunctive search over terms and attributes."""
        if not terms and not criteria:
            raise QueryError("query needs terms or attribute criteria")
        results: list[set[ObjectId]] = []
        if terms:
            results.append(self.search_terms(*terms))
        if criteria:
            results.append(self.search_attributes(**criteria))
        combined = results[0]
        for other in results[1:]:
            combined = combined & other
        return combined
