"""Concurrent serving front-end for the object server.

"The major concern in the server subsystem is performance.  Performance
may be crucial due to queueing delays that may be experienced when
several users try to access data from the same device."

The frontend multiplexes requests from many workstation sessions
through a bounded pool of worker threads.  Admission control bounds the
queue: when the queue is full, new requests are rejected with a typed
:class:`~repro.errors.ServerBusyError` instead of growing the delay
without bound.  Workers execute against a (thread-safe)
:class:`~repro.server.archiver.Archiver` or, preferably, a
:class:`~repro.server.archiver.CachingArchiver` whose shared cache and
per-key single-flight collapse duplicate optical reads.

Time model: requests carry an optional simulated arrival time; the
frontend keeps a simulated clock that advances by each request's
modelled device service time, so the latency recorded in metrics is
queueing + service in *simulated seconds* — deterministic aggregate
totals regardless of host thread scheduling.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ArchiverError, RequestTimeoutError, ServerBusyError
from repro.ids import ObjectId
from repro.obs.context import bind, current
from repro.obs.spans import SpanContext, SpanKind, SpanRecorder, SpanStatus
from repro.server.archiver import Archiver, CachingArchiver
from repro.server.metrics import ServerMetrics
from repro.trace import Trace

_STOP = object()


@dataclass(frozen=True)
class ServerRequest:
    """One request admitted to the frontend."""

    request_id: int
    station: str
    op: str
    params: tuple
    arrival_s: float = 0.0
    #: Span context of the caller (e.g. a workstation ``open`` span);
    #: the worker parents this request's ``server`` span on it.
    ctx: SpanContext | None = None


class ServerFuture:
    """Completion handle for a submitted request."""

    def __init__(self, request: ServerRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._payload: Any = None
        self._service_s = 0.0
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = 30.0) -> tuple[Any, float]:
        """Block until completion; returns ``(payload, service_time_s)``.

        ``payload`` is op-shaped: bytes for ``read_absolute``, a
        :class:`~repro.server.archiver.FetchResult` for ``fetch``, and
        for ``read_scattered`` the *list* of range payloads in request
        order with ``service_time_s`` covering the whole batch (a
        cache-warm batch reports 0.0, same as a single-range hit).

        Two clocks are in play and must not be confused.  ``timeout``
        is measured on the *host* (wall) clock: it bounds how long the
        calling thread sleeps waiting for a worker.  The returned
        ``service_time_s`` — and every latency in the metrics — is
        *simulated* time: the modelled device/queueing cost.  A request
        can cost many simulated seconds yet complete in microseconds of
        wall time, so a ``timeout`` expiry means a worker is genuinely
        stuck (or the pool was never started), never that the simulated
        workload was "slow".

        Raises the worker-side exception if the request failed, or
        :class:`~repro.errors.RequestTimeoutError` if the wall-clock
        budget runs out — typed so delivery retries can catch exactly
        the timeout case without swallowing other archiver failures.
        """
        if not self._event.wait(timeout):
            raise RequestTimeoutError(
                f"request {self.request.request_id} did not complete "
                f"within {timeout}s of wall-clock time (simulated-time "
                "latencies never trip this timeout)"
            )
        if self._error is not None:
            raise self._error
        return self._payload, self._service_s

    def _complete(self, payload: Any, service_s: float) -> None:
        self._payload = payload
        self._service_s = service_s
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class ServerFrontend:
    """Bounded worker pool with admission control over one archiver.

    Parameters
    ----------
    archiver:
        A :class:`CachingArchiver` (recommended — shared cache and
        single-flight) or a bare thread-safe :class:`Archiver`.
    workers:
        Number of worker threads draining the admission queue.
    queue_depth:
        Maximum number of requests waiting for a worker; submissions
        beyond this are rejected with :class:`ServerBusyError`.
    metrics:
        Instrumentation sink (a fresh one is created if omitted).
    trace:
        Convenience: trace to attach to a fresh metrics object.
    """

    #: Operations a request may name, mapped to archiver methods.
    #: ``read_scattered`` serves a whole batch of ``(offset, length)``
    #: ranges under a single admission slot — one queue entry, one
    #: worker, one lock acquisition — so an object open costs one
    #: round-trip instead of one per data piece.
    _OPS = (
        "fetch",
        "fetch_object",
        "read_absolute",
        "read_piece_range",
        "read_scattered",
    )

    def __init__(
        self,
        archiver: Archiver | CachingArchiver,
        *,
        workers: int = 4,
        queue_depth: int = 32,
        metrics: ServerMetrics | None = None,
        trace: Trace | None = None,
        obs: SpanRecorder | None = None,
    ) -> None:
        if workers <= 0:
            raise ArchiverError(f"worker pool must be positive: {workers}")
        if queue_depth <= 0:
            raise ArchiverError(f"queue depth must be positive: {queue_depth}")
        self._archiver = archiver
        self._workers_n = workers
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.metrics = metrics if metrics is not None else ServerMetrics(trace)
        self.obs = obs
        if obs is not None:
            # One timeline for the whole serving stack: spans emitted by
            # leaf sites without a clock of their own (codec decode,
            # single-flight markers) land on the frontend's simulated
            # clock.  The archiver picks the recorder up so those sites
            # can find it ambiently.
            if obs.clock is None:
                obs.clock = lambda: self.sim_time_s
            if hasattr(self._archiver, "obs"):
                self._archiver.obs = obs
        self._ids = itertools.count()
        self._threads: list[threading.Thread] = []
        self._sim_lock = threading.Lock()
        self._sim_time = 0.0
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def archiver(self) -> Archiver | CachingArchiver:
        """The archiver requests execute against."""
        return self._archiver

    @property
    def sim_time_s(self) -> float:
        """Accumulated simulated device time across all served requests."""
        with self._sim_lock:
            return self._sim_time

    def start(self) -> "ServerFrontend":
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return self
        self._started = True
        for index in range(self._workers_n):
            thread = threading.Thread(
                target=self._worker_loop, name=f"server-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain outstanding work and stop the workers (idempotent)."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads.clear()
        self._started = False

    def __enter__(self) -> "ServerFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        op: str,
        *params,
        station: str = "ws-0",
        arrival_s: float = 0.0,
        ctx: SpanContext | None = None,
    ) -> ServerFuture:
        """Admit a request; returns a future.

        ``ctx`` parents this request's server span on the caller's
        span; when omitted, the ambient context (if any) is captured
        here — *before* the worker thread takes over — so causality
        survives the thread hop.

        Raises
        ------
        ServerBusyError
            If the admission queue is full.
        ArchiverError
            If the frontend is not started or the operation is unknown.
        """
        if not self._started:
            raise ArchiverError("frontend is not started")
        if op not in self._OPS:
            raise ArchiverError(f"unknown server operation {op!r}")
        if ctx is None:
            ctx = current()
        request = ServerRequest(
            request_id=next(self._ids), station=station, op=op,
            params=params, arrival_s=arrival_s, ctx=ctx,
        )
        future = ServerFuture(request)
        depth = self._queue.qsize()
        try:
            self._queue.put_nowait(future)
        except queue.Full:
            now = self.sim_time_s
            self.metrics.on_reject(station, op, depth, now)
            if self.obs is not None:
                self.obs.emit(
                    ctx, f"server:{op}", SpanKind.SERVER, now, now,
                    status=SpanStatus.ERROR,
                    baggage={"station": station},
                    request_id=request.request_id, error="ServerBusyError",
                    queue_depth=depth,
                )
            raise ServerBusyError(
                f"admission queue full ({depth} waiting); request "
                f"{request.request_id} ({op}) rejected"
            ) from None
        self.metrics.on_admit(station, op, depth, self.sim_time_s)
        return future

    def fetch(self, object_id: ObjectId, *, station: str = "ws-0"):
        """Blocking convenience: fetch an object's stored form."""
        payload, _ = self.submit("fetch", object_id, station=station).result()
        return payload

    def fetch_object(
        self, object_id: ObjectId, *, station: str = "ws-0"
    ) -> tuple[Any, float]:
        """Blocking convenience: rebuild a whole object.

        Returns ``(object, service_time_s)``, which makes a started
        frontend a valid :class:`~repro.core.manager.ObjectStore` — a
        workstation manager can sit directly on the worker pool and its
        traced opens then cross the workstation/server boundary.
        """
        return self.submit("fetch_object", object_id, station=station).result()

    def read_piece_range(
        self, object_id: ObjectId, tag: str, start: int, length: int,
        *, station: str = "ws-0",
    ) -> tuple[bytes, float]:
        """Blocking convenience: byte-range read within a data piece."""
        return self.submit(
            "read_piece_range", object_id, tag, start, length, station=station
        ).result()

    def read_absolute(
        self, offset: int, length: int, *, station: str = "ws-0"
    ) -> tuple[bytes, float]:
        """Blocking convenience: archiver-absolute byte-range read."""
        return self.submit(
            "read_absolute", offset, length, station=station
        ).result()

    def read_scattered(
        self, ranges: list[tuple[int, int]], *, station: str = "ws-0"
    ) -> tuple[list[bytes], float]:
        """Blocking convenience: scatter-gather batch of absolute ranges.

        The batch occupies one admission slot regardless of how many
        ranges it carries; a rejection (:class:`ServerBusyError`) is
        raised before the archiver is touched, leaving cache and disk
        head state unchanged — safe to retry via
        :func:`repro.delivery.pipeline.fetch_with_retry`.
        """
        return self.submit(
            "read_scattered", ranges, station=station
        ).result()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            future: ServerFuture = item
            request = future.request
            active = None
            if self.obs is not None:
                active = self.obs.start(
                    request.ctx,
                    f"server:{request.op}",
                    SpanKind.SERVER,
                    request.arrival_s,
                    baggage={"station": request.station},
                    request_id=request.request_id,
                    op=request.op,
                )
            try:
                if active is not None:
                    with bind(active.context):
                        payload, service = self._execute(request)
                else:
                    payload, service = self._execute(request)
            except Exception as exc:  # typed errors flow to the caller
                self.metrics.on_error(request.station, request.op, exc)
                if active is not None:
                    active.finish(
                        self.sim_time_s,
                        status=SpanStatus.ERROR,
                        error=type(exc).__name__,
                    )
                future._fail(exc)
                continue
            with self._sim_lock:
                self._sim_time += service
                now = self._sim_time
            # Latency in simulated terms: queueing is the time the
            # device spent on *other* requests between this request's
            # arrival and its completion, bounded below by its own
            # service time.
            latency = max(now - request.arrival_s, service)
            cache_hit = service == 0.0
            self.metrics.on_complete(
                request.station, request.op, latency, service, now,
                cache_hit=cache_hit,
            )
            if active is not None:
                start = now - latency
                if latency > service:
                    self.obs.emit(
                        active.context, "queue", SpanKind.QUEUE,
                        start, now - service,
                    )
                if cache_hit:
                    self.obs.emit(
                        active.context, "cache", SpanKind.CACHE, now, now,
                        hit=True,
                    )
                else:
                    self.obs.emit(
                        active.context, "device", SpanKind.DEVICE,
                        now - service, now,
                    )
                active.finish(
                    now, start_s=start,
                    latency_s=round(latency, 9),
                    service_s=round(service, 9),
                    cache_hit=cache_hit,
                )
            future._complete(payload, service)

    def _execute(self, request: ServerRequest) -> tuple[Any, float]:
        method: Callable = getattr(self._archiver, request.op)
        result = method(*request.params)
        if request.op == "fetch":
            return result, result.service_time_s
        # fetch_object / read_absolute / read_piece_range /
        # read_scattered all return (payload, service_time_s) pairs.
        payload, service = result
        return payload, service
