"""Server observability: counters and latency histograms.

Section 5's performance concern is only actionable if it is measurable:
the frontend records per-request latency, queue depth at admission,
rejections, and cache effectiveness.  Everything is thread-safe (worker
threads record concurrently) and everything important is mirrored into
a :class:`repro.trace.Trace` as ``SERVER_*`` events, so the existing
trace tooling (dump, of_kind, since) works on server activity exactly
as it does on workstation activity.

Latencies are recorded in *simulated seconds* — the modelled service
and queueing time of the storage substrate — so histograms are
deterministic for a deterministic workload, independent of host speed.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace import EventKind, Trace


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of raw samples, linearly interpolated.

    The one quantile definition shared by every report in the repo —
    ``LoadReport`` (server), ``ClusterLoadReport`` (cluster),
    ``DeliveryReport`` (delivery) and the SLO monitor all call this,
    so "p95" means the same thing in every benchmark table.  ``p`` is
    in [0, 100]; an empty sample set reads as 0.0.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), p))


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable point-in-time view of a :class:`Histogram`."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float
    min_value: float
    max_value: float

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the ``p``-th percentile.

        ``p`` is in [0, 100].  Returns 0.0 for an empty histogram.  The
        estimate is conservative (never below the true percentile by
        more than one bucket width).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        threshold = math.ceil(self.count * p / 100.0)
        seen = 0
        for bound, bucket in zip(self.bounds, self.counts):
            seen += bucket
            if seen >= threshold:
                return min(bound, self.max_value)
        return self.max_value


class Histogram:
    """Log-scale bucketed histogram of nonnegative values.

    Buckets are geometric between ``min_value`` and ``max_value`` with
    ``buckets_per_decade`` resolution; values below the first bound go
    into the first bucket, values above the last into an overflow
    bucket.  ``record`` is O(log buckets) and thread-safe.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 1e4,
        buckets_per_decade: int = 8,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError(
                f"invalid histogram range [{min_value}, {max_value}]"
            )
        decades = math.log10(max_value / min_value)
        n = max(1, math.ceil(decades * buckets_per_decade))
        ratio = (max_value / min_value) ** (1.0 / n)
        bounds = [min_value * ratio ** (i + 1) for i in range(n)]
        bounds.append(math.inf)  # overflow bucket
        self._bounds = tuple(bounds)
        self._counts = [0] * len(bounds)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Record one nonnegative observation."""
        if value < 0:
            raise ValueError(f"histogram values must be nonnegative: {value}")
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self._bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        with self._lock:
            return self._count

    def percentile(self, p: float) -> float:
        """Percentile estimate (see :meth:`HistogramSnapshot.percentile`)."""
        return self.snapshot().percentile(p)

    def snapshot(self) -> HistogramSnapshot:
        """A coherent immutable copy of the histogram state."""
        with self._lock:
            return HistogramSnapshot(
                bounds=self._bounds,
                counts=tuple(self._counts),
                count=self._count,
                total=self._total,
                min_value=self._min if self._count else 0.0,
                max_value=self._max,
            )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of :class:`ServerMetrics`."""

    admitted: int
    rejected: int
    completed: int
    errors: int
    cache_hits: int
    cache_misses: int
    latency: HistogramSnapshot
    service: HistogramSnapshot
    queue_depths: dict[int, int]
    #: Failed requests by exception class name (e.g. ``TransientIOError``).
    error_kinds: dict[str, int]
    #: Injected faults by ``(site, kind)`` — populated when a
    #: :class:`repro.faults.FaultPlan` is wired to these metrics.
    fault_counts: dict[tuple[str, str], int]
    #: Recovery outcomes by name (``rollforward``, ``rollback``, ...).
    recovery_counts: dict[str, int]
    #: Raw media bytes archived vs. the stored (framed) bytes they
    #: became, plus per-codec encode/decode counts — populated when an
    #: :class:`~repro.server.archiver.Archiver` is wired to these
    #: metrics via ``server_metrics=``.
    media_raw_bytes: int = 0
    media_stored_bytes: int = 0
    compress_encodes: dict[str, int] = None  # type: ignore[assignment]
    compress_decodes: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.compress_encodes is None:
            object.__setattr__(self, "compress_encodes", {})
        if self.compress_decodes is None:
            object.__setattr__(self, "compress_decodes", {})

    @property
    def media_ratio(self) -> float:
        """Raw/stored media byte ratio (1.0 when nothing was archived)."""
        if not self.media_stored_bytes:
            return 1.0
        return self.media_raw_bytes / self.media_stored_bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of completed requests served without device work."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def max_queue_depth(self) -> int:
        """Deepest admission queue observed."""
        return max(self.queue_depths) if self.queue_depths else 0


class ServerMetrics:
    """Thread-safe instrumentation for the server frontend.

    Parameters
    ----------
    trace:
        Optional trace to mirror events into; ``SERVER_ADMIT``,
        ``SERVER_COMPLETE`` and ``SERVER_REJECT`` events carry the
        station, operation, latency and queue depth so existing trace
        consumers can reconstruct the whole serving timeline.
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self.latency = Histogram()
        self.service = Histogram()
        self._queue_depths: dict[int, int] = {}
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._errors = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._error_kinds: dict[str, int] = {}
        self._fault_counts: dict[tuple[str, str], int] = {}
        self._recovery_counts: dict[str, int] = {}
        self._media_raw_bytes = 0
        self._media_stored_bytes = 0
        self._compress_encodes: dict[str, int] = {}
        self._compress_decodes: dict[str, int] = {}
        self._lock = threading.Lock()

    def on_admit(self, station: str, op: str, depth: int, time_s: float) -> None:
        """Record one admitted request and the queue depth it saw."""
        with self._lock:
            self._admitted += 1
            self._queue_depths[depth] = self._queue_depths.get(depth, 0) + 1
            self.trace.record(
                time_s, EventKind.SERVER_ADMIT, station=station, op=op,
                queue_depth=depth,
            )

    def on_reject(self, station: str, op: str, depth: int, time_s: float) -> None:
        """Record one rejected (admission-control) request."""
        with self._lock:
            self._rejected += 1
            self.trace.record(
                time_s, EventKind.SERVER_REJECT, station=station, op=op,
                queue_depth=depth,
            )

    def on_complete(
        self,
        station: str,
        op: str,
        latency_s: float,
        service_s: float,
        time_s: float,
        cache_hit: bool,
    ) -> None:
        """Record one completed request with its simulated timings."""
        self.latency.record(latency_s)
        self.service.record(service_s)
        with self._lock:
            self._completed += 1
            if cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            self.trace.record(
                time_s, EventKind.SERVER_COMPLETE, station=station, op=op,
                latency_s=round(latency_s, 6), service_s=round(service_s, 6),
                cache_hit=cache_hit,
            )

    def on_error(
        self, station: str, op: str, error: BaseException | None = None
    ) -> None:
        """Record one request that failed with an exception.

        When the exception is supplied, its class name is counted in
        ``error_kinds`` so operators can tell injected transient device
        faults apart from missing objects or bad ranges.
        """
        with self._lock:
            self._errors += 1
            if error is not None:
                kind = type(error).__name__
                self._error_kinds[kind] = self._error_kinds.get(kind, 0) + 1

    def on_fault(self, site: str, kind: str, time_s: float = 0.0) -> None:
        """Record one injected fault (mirrored as a ``FAULT_*`` event)."""
        with self._lock:
            key = (site, kind)
            self._fault_counts[key] = self._fault_counts.get(key, 0) + 1
            event = (
                EventKind.FAULT_CRASH
                if kind == "crash"
                else EventKind.FAULT_INJECTED
            )
            self.trace.record(time_s, event, site=site, fault=kind)

    def on_recovery(self, outcome: str, time_s: float = 0.0, **detail) -> None:
        """Record one recovery outcome (``rollforward``, ``rollback``, ...)."""
        events = {
            "replay": EventKind.RECOVER_REPLAY,
            "rollforward": EventKind.RECOVER_ROLLFORWARD,
            "rollback": EventKind.RECOVER_ROLLBACK,
            "complete": EventKind.RECOVER_COMPLETE,
        }
        with self._lock:
            self._recovery_counts[outcome] = (
                self._recovery_counts.get(outcome, 0) + 1
            )
            self.trace.record(
                time_s,
                events.get(outcome, EventKind.RECOVER_REPLAY),
                outcome=outcome,
                **detail,
            )

    def on_compress_encode(self, codec: str, raw_len: int, stored_len: int) -> None:
        """Record one archived piece's raw vs. stored byte counts."""
        with self._lock:
            self._media_raw_bytes += raw_len
            self._media_stored_bytes += stored_len
            self._compress_encodes[codec] = (
                self._compress_encodes.get(codec, 0) + 1
            )

    def on_compress_decode(self, codec: str) -> None:
        """Record one open-path frame decode."""
        with self._lock:
            self._compress_decodes[codec] = (
                self._compress_decodes.get(codec, 0) + 1
            )

    def snapshot(self) -> MetricsSnapshot:
        """A coherent immutable copy of all counters and histograms."""
        with self._lock:
            return MetricsSnapshot(
                admitted=self._admitted,
                rejected=self._rejected,
                completed=self._completed,
                errors=self._errors,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                latency=self.latency.snapshot(),
                service=self.service.snapshot(),
                queue_depths=dict(self._queue_depths),
                error_kinds=dict(self._error_kinds),
                fault_counts=dict(self._fault_counts),
                recovery_counts=dict(self._recovery_counts),
                media_raw_bytes=self._media_raw_bytes,
                media_stored_bytes=self._media_stored_bytes,
                compress_encodes=dict(self._compress_encodes),
                compress_decodes=dict(self._compress_decodes),
            )
