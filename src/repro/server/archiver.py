"""The object archiver: archived objects on the optical disk.

Each stored object occupies one extent holding its archived form
(descriptor ‖ composition).  Following the paper, the stored
descriptor's composition offsets are *rebased to archiver-absolute
offsets* ("the offsets of the descriptor have to be incremented by the
offset where the composition file is placed within the archiver"), so
any data piece — of this object or of another object that shares it —
can be read directly with :meth:`Archiver.read_absolute`.

Partial reads matter: the presentation manager "requests the
appropriate pieces of information" — a view fetches a byte range of an
image piece, not the object.
"""

from __future__ import annotations

import threading
import zlib
from collections import Counter
from dataclasses import dataclass, field

from repro.compress import (
    CompressionMetrics,
    codec_name,
    decode_frame,
    is_framed,
)
from repro.errors import ArchiverError, MinosError, ObjectNotFoundError
from repro.faults.registry import (
    COMPRESS_DECODE,
    RECOGNIZE_APPLY,
    RECOGNIZE_JOURNAL,
    RECOGNIZE_SEAL,
    STORE_DATA,
    STORE_DESCRIPTOR,
    STORE_JOURNAL,
    STORE_SEAL,
)
from repro.formatter.archive import (
    _HEADER,
    archive_postings,
    pack_archived,
    unpack_archived,
)
from repro.formatter.builder import ObjectFormatter, rebuild_object
from repro.ids import ObjectId
from repro.index import VOICE, ArchiveIndex
from repro.objects.descriptor import DataLocation, DataSource, Descriptor
from repro.objects.model import MultimediaObject, ObjectState
from repro.obs.context import current as current_span
from repro.obs.spans import SpanKind as ObsSpanKind
from repro.server.access import ContentIndex
from repro.server.recovery import (
    RecoveryReport,
    encode_side_table,
    recover_archiver,
)
from repro.storage.blockdev import Extent, SimulatedDisk
from repro.storage.cache import LRUCache
from repro.storage.journal import Journal
from repro.storage.optical import OpticalDisk
from repro.storage.scatter import gather, plan_scatter


@dataclass
class StoredObjectRecord:
    """Book-keeping for one stored object."""

    object_id: ObjectId
    extent: Extent
    composition_base: int
    descriptor: Descriptor  # with archiver-absolute offsets


@dataclass
class FetchResult:
    """Outcome of fetching an object's stored form."""

    descriptor: Descriptor
    composition: bytes
    service_time_s: float


class Archiver:
    """The optical-disk-based store of archived objects.

    Parameters
    ----------
    disk:
        Backing device (defaults to a fresh :class:`OpticalDisk`).
    cache:
        Optional byte cache fronting the disk (magnetic-disk or memory
        staging); hits skip the disk entirely.
    archive_index:
        The archive-wide symmetric content index fed at insertion time
        (a default-configured one is created if not given).
    journal:
        Write-ahead journal backing the commit protocol of
        :meth:`store` and :meth:`attach_recognition` (a dedicated
        magnetic-disk journal is created if not given).  Pass the
        surviving journal (or a :class:`Journal` re-opened on its
        device) together with the surviving ``disk`` to model a
        process restart, then call :meth:`recover`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` consulted at the
        ``archiver.store.*``, ``archiver.recognize.*`` and
        ``compress.decode`` sites (and threaded into a
        default-constructed ``archive_index``).
    compression:
        When true (the default), data pieces are stored as compressed
        frames (:mod:`repro.compress`): the platter extents, the staging
        cache, and every byte that leaves this archiver hold *stored*
        bytes, and :meth:`decode_piece` unwraps them on the open path.
        When false, the archive is byte-identical to the historical
        uncompressed format.
    compression_metrics:
        Optional :class:`~repro.compress.CompressionMetrics` recording
        per-codec encode/decode activity (a private one is created if
        not given).
    server_metrics:
        Optional :class:`~repro.server.metrics.ServerMetrics` whose
        compression counters are advanced alongside the dedicated
        compression metrics.
    """

    def __init__(
        self,
        disk: SimulatedDisk | None = None,
        cache: LRUCache | None = None,
        archive_index: ArchiveIndex | None = None,
        journal: Journal | None = None,
        fault_plan=None,
        *,
        compression: bool = True,
        compression_metrics: CompressionMetrics | None = None,
        server_metrics=None,
    ) -> None:
        self._disk = disk or OpticalDisk()
        self._cache = cache
        self._journal = journal if journal is not None else Journal()
        self._fault_plan = fault_plan
        self._compression = compression
        self.compression_metrics = (
            compression_metrics
            if compression_metrics is not None
            else CompressionMetrics()
        )
        self._server_metrics = server_metrics
        self._records: dict[ObjectId, StoredObjectRecord] = {}
        # One lock serializes record-table mutation and device access:
        # the simulated disk tracks a head position, so concurrent reads
        # from server worker threads must not interleave.
        self._lock = threading.RLock()
        self.index = ContentIndex()
        # The archive-wide (object, channel, position) index; built at
        # insertion time by store(), extended by attach_recognition(),
        # compacted at idle time.
        self.archive_index = (
            archive_index
            if archive_index is not None
            else ArchiveIndex(fault_plan=fault_plan)
        )
        # Idle-time recognition results: the platter is write-once, so
        # utterances recognized after archiving live in this side table
        # and are injected when objects are rebuilt.
        self._recognition_table: dict[ObjectId, dict] = {}
        # Monotone per-object version tokens: bumped whenever the
        # *rebuilt* form of an object changes (today: recognition-table
        # updates; the platter bytes themselves are write-once).
        # Workstation-side decoded-object caches revalidate against
        # these tokens instead of refetching.
        self._versions: dict[ObjectId, int] = {}
        # Round-trip accounting: one increment per public read request,
        # so benchmarks can compare batched vs piecewise open paths.
        self.op_counts: Counter[str] = Counter()
        self._obs = None

    @property
    def obs(self):
        """Optional span recorder for codec/index leaf spans."""
        return self._obs

    @obs.setter
    def obs(self, recorder) -> None:
        self._obs = recorder
        self.archive_index.obs = recorder

    @property
    def disk(self) -> SimulatedDisk:
        """The backing device."""
        return self._disk

    @property
    def cache(self) -> LRUCache | None:
        """The optional staging cache."""
        return self._cache

    @property
    def journal(self) -> Journal:
        """The write-ahead journal behind the commit protocol."""
        return self._journal

    @property
    def fault_plan(self):
        """The fault plan threaded through this archiver (or None)."""
        return self._fault_plan

    @property
    def compression(self) -> bool:
        """Whether new stores write compressed piece frames."""
        return self._compression

    def _fire(self, site: str) -> None:
        if self._fault_plan is not None:
            self._fault_plan.fire(site)

    def _journal_abort(self, txid: int) -> None:
        # Best effort: if the abort record itself cannot be written,
        # the transaction stays pending and recovery decides it by
        # evidence, which reaches the same end state.
        try:
            self._journal.abort(txid)
        except MinosError:
            pass

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._records

    def object_ids(self) -> list[ObjectId]:
        """Identifiers of all stored objects, in storage order."""
        with self._lock:
            return list(self._records)

    # ------------------------------------------------------------------
    # storing
    # ------------------------------------------------------------------

    def store(
        self,
        obj: MultimediaObject,
        shared_archiver_data: dict[str, tuple[int, int]] | None = None,
    ) -> StoredObjectRecord:
        """Archive an object onto the optical disk and index its content.

        ``shared_archiver_data`` maps data tags to archiver-absolute
        extents of pieces that already exist in the archiver (avoiding
        duplication).

        The write follows the commit protocol (journal BEGIN → data
        blocks → descriptor/index publish → journal SEAL), so a crash
        at any point leaves the object either fully archived and
        indexed after :meth:`recover`, or absent with its platter
        extent accounted as dead — never in between.  When ``store``
        returns, the object is sealed: recovery preserves it.

        Raises
        ------
        ArchiverError
            If the object is not in the archived state or is already
            stored.
        """
        if obj.state is not ObjectState.ARCHIVED:
            raise ArchiverError(
                f"object {obj.object_id} must be archived before storing"
            )
        formed = ObjectFormatter(
            shared_archiver_data, compression=self._compression
        ).form(obj)
        descriptor, composition = formed.descriptor, formed.composition

        with self._lock:
            if obj.object_id in self._records:
                raise ArchiverError(f"object {obj.object_id} is already stored")

            # Rebase composition offsets to archiver-absolute coordinates.
            # The descriptor is JSON, so growing offsets can grow its byte
            # length; iterate to the (monotone) fixed point.
            base = self._disk.used_bytes + _HEADER.size
            for _ in range(20):
                rebased = descriptor.rebased(base)
                blob = rebased.to_bytes()
                new_base = self._disk.used_bytes + _HEADER.size + len(blob)
                if new_base == base:
                    break
                base = new_base
            else:  # pragma: no cover - the fixed point converges in practice
                raise ArchiverError("descriptor rebasing did not converge")

            packed = pack_archived(rebased, composition)
            self._fire(STORE_JOURNAL)
            txid = self._journal.begin(
                "store",
                {
                    "object_id": str(obj.object_id),
                    "offset": self._disk.used_bytes,
                    "length": len(packed.data),
                    "composition_base": base,
                    "crc": zlib.crc32(packed.data),
                },
            )
            try:
                self._fire(STORE_DATA)
                extent, _ = self._disk.append(packed.data)
                self._fire(STORE_DESCRIPTOR)
                record = StoredObjectRecord(
                    object_id=obj.object_id,
                    extent=extent,
                    composition_base=base,
                    descriptor=rebased,
                )
                self._records[obj.object_id] = record
                self._versions[obj.object_id] = 1
                self._fire(STORE_SEAL)
                self._journal.seal(txid)
            except MinosError:
                # Clean in-process failure (torn write, transient I/O):
                # unpublish and abandon.  The platter extent, if any
                # bytes landed, becomes dead space on recovery.  The
                # indexes have not been touched yet, so live state and
                # post-recovery state agree: object absent.
                self._records.pop(obj.object_id, None)
                self._versions.pop(obj.object_id, None)
                self._journal_abort(txid)
                raise
            # Compression accounting happens only once the store is
            # durable: an aborted store contributes no media bytes.
            self._account_compression(formed.pieces)
            # Index publishes happen after the seal: the transaction is
            # already durable, and recovery rebuilds both indexes from
            # the recovered records anyway, so a crash mid-publish
            # (e.g. at a faulted LSM flush) converges to the same state.
            self.index.index_object(obj)
            self.archive_index.insert_object(
                obj.object_id, archive_postings(obj)
            )
            return record

    def _account_compression(self, pieces) -> None:
        """Advance compression counters for one durable store."""
        if not pieces:
            return
        stats = getattr(self._disk, "stats", None)
        for piece in pieces:
            if stats is not None:
                stats.media_raw_bytes += piece.raw_len
                stats.media_stored_bytes += piece.stored_len
            self.compression_metrics.on_encode(
                piece.codec, piece.raw_len, piece.stored_len, tag=piece.tag
            )
            if self._server_metrics is not None:
                self._server_metrics.on_compress_encode(
                    piece.codec, piece.raw_len, piece.stored_len
                )
        if self._obs is not None:
            # One instant marker per store: encode cost is not part of
            # the simulated device model, so the span carries byte
            # accounting rather than duration.
            now = self._obs.now()
            self._obs.emit(
                current_span(), "encode", ObsSpanKind.COMPRESS, now, now,
                pieces=len(pieces),
                raw_len=sum(p.raw_len for p in pieces),
                stored_len=sum(p.stored_len for p in pieces),
            )

    def decode_piece(self, data: bytes) -> bytes:
        """Decode one stored piece back to raw media bytes.

        Framed pieces are strictly decoded (firing the
        ``compress.decode`` fault site first); raw pieces — windowed
        bitmaps and pre-compression archives — pass through untouched.

        Raises
        ------
        MediaCodecError
            If the frame is corrupt or truncated (hard: retries cannot
            help, the stored bytes themselves are bad).
        TransientIOError
            When an armed fault plan injects a transient at the
            ``compress.decode`` site.
        """
        if not is_framed(data):
            return data
        self._fire(COMPRESS_DECODE)
        raw, codec_id = decode_frame(data)
        name = codec_name(codec_id)
        self.compression_metrics.on_decode(name, len(raw), len(data))
        if self._server_metrics is not None:
            self._server_metrics.on_compress_decode(name)
        if self._obs is not None:
            now = self._obs.now()
            self._obs.emit(
                current_span(), f"decode:{name}", ObsSpanKind.COMPRESS,
                now, now, raw_len=len(raw), stored_len=len(data),
            )
        return raw

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self, metrics=None) -> RecoveryReport:
        """Rebuild all volatile state from device bytes + journal.

        Call after constructing an archiver over devices that survived
        a crash (see :meth:`reopen`).  Safe — and idempotent — on a
        healthy archive: every sealed transaction republishes to the
        same state.  See :func:`repro.server.recovery.recover_archiver`
        for the decision procedure.
        """
        return recover_archiver(self, metrics=metrics)

    @classmethod
    def reopen(
        cls,
        disk: SimulatedDisk,
        journal: Journal,
        cache: LRUCache | None = None,
        archive_index: ArchiveIndex | None = None,
        fault_plan=None,
        metrics=None,
        *,
        compression: bool = True,
    ) -> tuple["Archiver", RecoveryReport]:
        """Re-open an archive after a (simulated) crash.

        ``disk`` and ``journal`` are the surviving devices — typically
        the same objects the crashed archiver held, since a
        :class:`~repro.errors.SimulatedCrash` kills the process, not
        the platter.  Returns the recovered archiver and the report.
        ``compression`` governs *new* stores only; existing extents are
        self-describing, so recovery and reads need no setting.
        """
        archiver = cls(
            disk=disk,
            cache=cache,
            archive_index=archive_index,
            journal=journal,
            fault_plan=fault_plan,
            compression=compression,
        )
        report = archiver.recover(metrics=metrics)
        return archiver, report

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------

    def record(self, object_id: ObjectId) -> StoredObjectRecord:
        """The storage record of an object.

        Raises
        ------
        ObjectNotFoundError
            If the object is not stored here.
        """
        with self._lock:
            record = self._records.get(object_id)
        if record is None:
            raise ObjectNotFoundError(f"archiver has no object {object_id}")
        return record

    def version_of(self, object_id: ObjectId) -> int:
        """Monotone version token of an object's *rebuilt* form.

        Bumped by :meth:`attach_recognition` (and by any future
        re-archive path); a workstation's decoded-object cache entry is
        valid exactly while its token matches.

        Raises
        ------
        ObjectNotFoundError
            If the object is not stored here.
        """
        self.record(object_id)  # existence check
        with self._lock:
            return self._versions[object_id]

    def _count(self, op: str) -> None:
        with self._lock:
            self.op_counts[op] += 1

    def fetch(self, object_id: ObjectId, *, _count: bool = True) -> FetchResult:
        """Fetch an object's stored form (descriptor + composition).

        The returned descriptor's composition offsets are rebased back
        to composition-relative coordinates, so the pair is a
        self-contained unit (ready to mail or rebuild); only shared
        ARCHIVER-source pointers still reference this archiver.
        """
        if _count:
            self._count("fetch")
        record = self.record(object_id)
        data, service = self._read_extent(record.extent, key=f"obj/{object_id}")
        descriptor, composition = unpack_archived(data)
        relative = descriptor.rebased(-record.composition_base)
        return FetchResult(
            descriptor=relative, composition=composition, service_time_s=service
        )

    def fetch_object(
        self, object_id: ObjectId, *, _count: bool = True
    ) -> tuple[MultimediaObject, float]:
        """Fetch and rebuild a complete multimedia object.

        Data pieces whose descriptor locations point elsewhere in the
        archiver (shared data) are resolved transparently.
        """
        if _count:
            self._count("fetch_object")
        result = self.fetch(object_id, _count=_count)
        __ = result.composition  # pieces are re-read via absolute offsets
        obj, service = self._rebuild_with_table(
            object_id, self._recognition_table.get(object_id)
        )
        return obj, result.service_time_s + service

    def _rebuild_with_table(
        self, object_id: ObjectId, side_table: dict | None
    ) -> tuple[MultimediaObject, float]:
        """Rebuild an object, injecting an explicit recognition table.

        The stored descriptor has archiver-absolute offsets; the
        rebuild reads every piece through the archiver address space.
        ``attach_recognition`` uses this to preview the rebuilt form
        against a *candidate* merged table before committing it.
        """
        record = self.record(object_id)
        service = 0.0

        def archiver_read(offset: int, length: int) -> bytes:
            nonlocal service
            data, extra = self._read_extent(
                Extent(offset, length), key=f"abs/{offset}/{length}"
            )
            service += extra
            return data

        obj = rebuild_object(
            _all_archiver(record.descriptor),
            b"",
            archiver_read=archiver_read,
            decoder=self.decode_piece,
        )
        if side_table:
            for segment in obj.voice_segments:
                extra = side_table.get(segment.segment_id)
                if extra and not segment.utterances:
                    segment.utterances = list(extra)
        return obj, service

    def recognition_for(self, object_id: ObjectId) -> dict:
        """Idle-time recognition side table of an object (may be empty).

        Callers that rebuild objects themselves (e.g. the presentation
        manager's selective fetch) must inject these utterances into
        the rebuilt voice segments.
        """
        with self._lock:
            return {
                segment_id: list(utterances)
                for segment_id, utterances in self._recognition_table.get(
                    object_id, {}
                ).items()
            }

    def attach_recognition(self, object_id: ObjectId, side_table: dict) -> None:
        """Record idle-time recognition results for a stored object.

        ``side_table`` maps segment ids to recognized-utterance lists.
        The new terms become content-addressable immediately: the
        legacy term index absorbs them, and the archive-wide index
        re-derives the object's *complete* voice posting set from the
        rebuilt form at the bumped version token, retiring every voice
        posting of the previous version (so a re-recognized object
        never serves stale utterances).

        The update follows the same commit protocol as :meth:`store`
        (journal BEGIN with the *complete merged* side table → apply →
        journal SEAL): after a crash at any point, :meth:`recover`
        either replays the full recognition or drops it entirely —
        voice queries never see a half-applied side table.

        Raises
        ------
        ObjectNotFoundError
            If the object is not stored here.
        """
        self.record(object_id)  # existence check
        with self._lock:
            # Preview the commit: merge into a candidate table and
            # rebuild the object against it.  All device reads happen
            # here, before the journal intent or any state mutation.
            merged = {
                segment_id: list(utterances)
                for segment_id, utterances in self._recognition_table.get(
                    object_id, {}
                ).items()
            }
            terms: set[str] = set()
            for segment_id, utterances in side_table.items():
                merged[segment_id] = list(utterances)
                terms.update(u.term for u in utterances)
            version = self._versions[object_id] + 1
            # Index maintenance, not a client round-trip: rebuild
            # without touching the op counters benchmarks compare on.
            obj, _ = self._rebuild_with_table(object_id, merged)
            postings = archive_postings(obj, channels=(VOICE,))

            self._fire(RECOGNIZE_JOURNAL)
            txid = self._journal.begin(
                "recognize",
                {
                    "object_id": str(object_id),
                    "version": version,
                    "side_table": encode_side_table(merged),
                },
            )
            previous = self._recognition_table.get(object_id)
            try:
                self._fire(RECOGNIZE_APPLY)
                self._recognition_table[object_id] = merged
                # The rebuilt form of the object just changed:
                # invalidate every decoded copy cached against the old
                # token.
                self._versions[object_id] = version
                self._fire(RECOGNIZE_SEAL)
                self._journal.seal(txid)
            except MinosError:
                # Unwind the volatile apply so live state matches what
                # recovery would produce: recognition absent.
                if previous is None:
                    self._recognition_table.pop(object_id, None)
                else:
                    self._recognition_table[object_id] = previous
                self._versions[object_id] = version - 1
                self._journal_abort(txid)
                raise
            # Index publishes after the seal, as in store(): the
            # transaction is durable and recovery rebuilds the indexes
            # from the journaled side table anyway.
            self.index.add_terms(object_id, terms)
            self.archive_index.update_voice(object_id, postings, version)

    def read_absolute(self, offset: int, length: int) -> tuple[bytes, float]:
        """Read an archiver-absolute byte range (shared-data pointers)."""
        self._count("read_absolute")
        return self._read_extent(Extent(offset, length), key=f"abs/{offset}/{length}")

    def read_scattered(
        self, ranges: list[tuple[int, int]]
    ) -> tuple[list[bytes], float]:
        """Read many archiver-absolute ``(offset, length)`` ranges at once.

        One server round-trip replaces N: ranges are coalesced and
        sorted into a minimal-seek sweep (see
        :mod:`repro.storage.scatter`) and the whole batch is served
        under a single lock acquisition.  Ranges already staged in the
        archiver's byte cache are served from it; only the misses go to
        the device.  Payloads come back in request order, byte-identical
        to piecewise :meth:`read_absolute` calls.
        """
        self._count("read_scattered")
        if not ranges:
            return [], 0.0
        results: list[bytes | None] = [None] * len(ranges)
        missing: list[int] = []
        for index, (offset, length) in enumerate(ranges):
            if self._cache is not None:
                cached = self._cache.get(f"abs/{offset}/{length}")
                if cached is not None:
                    results[index] = cached
                    continue
            missing.append(index)
        if missing:
            payloads, service = self.read_scattered_raw(
                [ranges[index] for index in missing]
            )
            for index, data in zip(missing, payloads):
                results[index] = data
                if self._cache is not None:
                    offset, length = ranges[index]
                    self._cache.put(f"abs/{offset}/{length}", data)
        else:
            service = 0.0
        return results, service  # type: ignore[return-value]

    def read_scattered_raw(
        self, ranges: list[tuple[int, int]]
    ) -> tuple[list[bytes], float]:
        """Batch-read ranges from the device, bypassing any cache.

        The planning (coalesce + sweep order) and every device read
        happen under one archiver lock acquisition, so the head moves
        through the batch without interleaving from other requests.
        This is the hook :class:`CachingArchiver` and the delivery
        prefetcher build on.
        """
        if not ranges:
            return [], 0.0
        with self._lock:
            plan = plan_scatter(
                ranges, self._disk.head_position, self._disk.geometry
            )
            payloads: dict[Extent, bytes] = {}
            service = 0.0
            for extent in plan.reads:
                data, extra = self._disk.read(extent)
                payloads[extent] = data
                service += extra
            return gather(plan, payloads), service

    def data_extent(self, object_id: ObjectId, tag: str) -> Extent:
        """Archiver-absolute extent of one data piece of an object.

        This is what a workstation asks for before issuing byte-range
        reads (e.g. view windows over a stored image).
        """
        record = self.record(object_id)
        location = record.descriptor.location(tag)
        return Extent(location.offset, location.length)

    def read_piece_range(
        self, object_id: ObjectId, tag: str, start: int, length: int
    ) -> tuple[bytes, float]:
        """Read ``length`` bytes at offset ``start`` *within* a data piece.

        Raises
        ------
        ArchiverError
            If the range exceeds the piece.
        """
        self._count("read_piece_range")
        extent = self.data_extent(object_id, tag)
        if start < 0 or start + length > extent.length:
            raise ArchiverError(
                f"range [{start}, {start + length}) exceeds piece "
                f"{tag!r} of length {extent.length}"
            )
        return self._read_extent(
            Extent(extent.offset + start, length),
            key=f"piece/{object_id}/{tag}/{start}/{length}",
        )

    def read_piece_rows(
        self, object_id: ObjectId, tag: str, ranges: list[tuple[int, int]]
    ) -> tuple[list[bytes], float]:
        """Scatter-read several ``(start, length)`` ranges of one piece.

        Models a view window over a stored raster: one seek positions
        the head at the first row slice, the remaining slices stream
        with transfer cost only (rows of a window are nearly
        sequential on the platter).  Returns the row payloads and the
        total service time.

        Raises
        ------
        ArchiverError
            If any range exceeds the piece.
        """
        self._count("read_piece_rows")
        if not ranges:
            return [], 0.0
        piece = self.data_extent(object_id, tag)
        rows: list[bytes] = []
        total_service = 0.0
        with self._lock:
            for index, (start, length) in enumerate(ranges):
                if start < 0 or start + length > piece.length:
                    raise ArchiverError(
                        f"range [{start}, {start + length}) exceeds piece "
                        f"{tag!r} of length {piece.length}"
                    )
                extent = Extent(piece.offset + start, length)
                if index == 0:
                    data, service = self._disk.read(extent)
                else:
                    data, service = self._disk.read(extent)
                    # Subsequent window rows are near-sequential: charge
                    # transfer only, not a fresh seek.
                    service = length / self._disk.geometry.transfer_bytes_per_s
                rows.append(data)
                total_service += service
        return rows, total_service

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def read_raw(self, extent: Extent) -> tuple[bytes, float]:
        """Read an extent from the backing device, bypassing any cache.

        This is the hook :class:`CachingArchiver` uses: the wrapper owns
        the shared cache and single-flight table, so the inner read must
        hit the device unconditionally (while still serializing head
        movement under the archiver lock).
        """
        with self._lock:
            return self._disk.read(extent)

    def _read_extent(self, extent: Extent, key: str) -> tuple[bytes, float]:
        if self._cache is not None:
            cached = self._cache.get(key)
            if cached is not None:
                return cached, 0.0
        data, service = self.read_raw(extent)
        if self._cache is not None:
            self._cache.put(key, data)
        return data, service


class _Flight:
    """State of one in-progress device fetch (single-flight).

    ``data`` holds bytes for single-extent flights and a list of
    payloads for scatter-gather batch flights.  ``span_id`` is the
    leader's flight span: set before the completion event so joiners
    can link their piggyback spans to the read that actually served
    them (it may belong to a *different* request's trace).
    """

    __slots__ = ("event", "data", "service_time_s", "error", "span_id")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.data: bytes | list[bytes] | None = None
        self.service_time_s = 0.0
        self.error: BaseException | None = None
        self.span_id: int | None = None


@dataclass
class FlightStats:
    """Single-flight effectiveness counters."""

    device_fetches: int = 0
    piggybacks: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def snapshot(self) -> "FlightStats":
        """A coherent point-in-time copy of the counters."""
        with self._lock:
            return FlightStats(
                device_fetches=self.device_fetches, piggybacks=self.piggybacks
            )


class CachingArchiver:
    """Thread-safe read front for an :class:`Archiver`.

    Wraps an archiver with a *shared* :class:`LRUCache` and a per-key
    single-flight table: when N workstations request the same data piece
    concurrently, exactly one thread (the leader) performs the optical
    read; the others piggyback on the in-flight fetch and receive the
    same bytes with zero device service time — the paper's queueing
    concern attacked at the source, by never queueing duplicate work.

    Piggybacked requests report a service time of 0.0 because they add
    no device busy time; the leader's read is the only one charged.
    """

    def __init__(self, archiver: Archiver, cache: LRUCache) -> None:
        self._archiver = archiver
        self._cache = cache
        self._flights: dict[str, _Flight] = {}
        self._lock = threading.Lock()
        self.flight_stats = FlightStats()

    @property
    def archiver(self) -> Archiver:
        """The wrapped archiver."""
        return self._archiver

    @property
    def obs(self):
        """Span recorder, shared with the wrapped archiver."""
        return self._archiver.obs

    @obs.setter
    def obs(self, recorder) -> None:
        self._archiver.obs = recorder

    def _flight_span(self, name, *, links=(), **attrs):
        """Instant marker span for single-flight bookkeeping.

        Parented on the ambient context (the worker's ``server`` span)
        and stamped with the recorder's clock; returns ``None`` with no
        recorder attached.
        """
        obs = self._archiver.obs
        if obs is None:
            return None
        now = obs.now()
        return obs.emit(
            current_span(), name, ObsSpanKind.CACHE, now, now,
            links=links, **attrs,
        )

    @property
    def index(self) -> ContentIndex:
        """The wrapped archiver's legacy content index."""
        return self._archiver.index

    @property
    def archive_index(self) -> ArchiveIndex:
        """The wrapped archiver's archive-wide symmetric index."""
        return self._archiver.archive_index

    @property
    def cache(self) -> LRUCache:
        """The shared staging cache."""
        return self._cache

    @property
    def disk(self) -> SimulatedDisk:
        """The backing device of the wrapped archiver."""
        return self._archiver.disk

    @property
    def journal(self) -> Journal:
        """The write-ahead journal of the wrapped archiver."""
        return self._archiver.journal

    def recover(self, metrics=None) -> RecoveryReport:
        """Recover the wrapped archiver, dropping this wrapper's cache.

        The shared cache may hold bytes keyed by pre-crash state, so it
        is cleared along with the inner archiver's volatile state.
        """
        report = self._archiver.recover(metrics=metrics)
        report.cache_entries_dropped += len(self._cache)
        self._cache.clear()
        return report

    def __len__(self) -> int:
        return len(self._archiver)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._archiver

    def object_ids(self) -> list[ObjectId]:
        """Identifiers of all stored objects, in storage order."""
        return self._archiver.object_ids()

    def record(self, object_id: ObjectId) -> StoredObjectRecord:
        """The storage record of an object (see :meth:`Archiver.record`)."""
        return self._archiver.record(object_id)

    def data_extent(self, object_id: ObjectId, tag: str) -> Extent:
        """Archiver-absolute extent of one data piece of an object."""
        return self._archiver.data_extent(object_id, tag)

    def version_of(self, object_id: ObjectId) -> int:
        """Version token of an object (see :meth:`Archiver.version_of`)."""
        return self._archiver.version_of(object_id)

    def recognition_for(self, object_id: ObjectId) -> dict:
        """Recognition side table (see :meth:`Archiver.recognition_for`)."""
        return self._archiver.recognition_for(object_id)

    def attach_recognition(self, object_id: ObjectId, side_table: dict) -> None:
        """Record recognition results (see :meth:`Archiver.attach_recognition`).

        Delegated as-is: the side table lives outside the byte cache
        (platter bytes are immutable), so cached reads stay valid; the
        version bump performed by the inner archiver is what invalidates
        workstation-side decoded-object caches.
        """
        self._archiver.attach_recognition(object_id, side_table)

    @property
    def op_counts(self) -> Counter[str]:
        """Round-trip counters of the wrapped archiver."""
        return self._archiver.op_counts

    def store(
        self,
        obj: MultimediaObject,
        shared_archiver_data: dict[str, tuple[int, int]] | None = None,
    ) -> StoredObjectRecord:
        """Archive an object (delegated; the platter is append-only, so
        stores never invalidate cached reads)."""
        return self._archiver.store(obj, shared_archiver_data)

    # ------------------------------------------------------------------
    # cached, single-flight reads
    # ------------------------------------------------------------------

    def fetch(self, object_id: ObjectId) -> FetchResult:
        """Fetch an object's stored form through the shared cache."""
        self._archiver._count("fetch")
        record = self._archiver.record(object_id)
        data, service = self._read(f"obj/{object_id}", record.extent)
        descriptor, composition = unpack_archived(data)
        relative = descriptor.rebased(-record.composition_base)
        return FetchResult(
            descriptor=relative, composition=composition, service_time_s=service
        )

    def fetch_object(self, object_id: ObjectId) -> tuple[MultimediaObject, float]:
        """Fetch and rebuild a complete object, caching each piece read."""
        self._archiver._count("fetch_object")
        record = self._archiver.record(object_id)
        service_total = 0.0

        def archiver_read(offset: int, length: int) -> bytes:
            nonlocal service_total
            data, extra = self.read_absolute(offset, length)
            service_total += extra
            return data

        obj = rebuild_object(
            _all_archiver(record.descriptor),
            b"",
            archiver_read=archiver_read,
            decoder=self._archiver.decode_piece,
        )
        side_table = self._archiver.recognition_for(object_id)
        if side_table:
            for segment in obj.voice_segments:
                extra = side_table.get(segment.segment_id)
                if extra and not segment.utterances:
                    segment.utterances = list(extra)
        return obj, service_total

    def read_absolute(self, offset: int, length: int) -> tuple[bytes, float]:
        """Read an archiver-absolute byte range through the shared cache."""
        self._archiver._count("read_absolute")
        return self._read(f"abs/{offset}/{length}", Extent(offset, length))

    def read_scattered(
        self, ranges: list[tuple[int, int]]
    ) -> tuple[list[bytes], float]:
        """Batch-read archiver-absolute ranges through the shared cache.

        Per-range cache hits are served immediately; the remaining
        misses form one scatter-gather batch executed under a single
        *batch* flight, so N workstations opening the same object
        concurrently trigger exactly one device sweep — the others
        piggyback and are charged zero service time.  Every fetched
        range is published under the same ``abs/{offset}/{length}`` key
        :meth:`read_absolute` uses, so piecewise and batched readers
        share one cache population.
        """
        self._archiver._count("read_scattered")
        if not ranges:
            return [], 0.0
        results: list[bytes | None] = [None] * len(ranges)
        missing: list[int] = []
        for index, (offset, length) in enumerate(ranges):
            cached = self._cache.get(f"abs/{offset}/{length}")
            if cached is not None:
                results[index] = cached
            else:
                missing.append(index)
        if missing:
            missing_ranges = [ranges[index] for index in missing]
            key = "scatter/" + ";".join(
                f"{offset}+{length}" for offset, length in missing_ranges
            )
            payloads, service = self._read_batch(key, missing_ranges)
            for index, data in zip(missing, payloads):
                results[index] = data
        else:
            service = 0.0
        return results, service  # type: ignore[return-value]

    def read_piece_range(
        self, object_id: ObjectId, tag: str, start: int, length: int
    ) -> tuple[bytes, float]:
        """Read a byte range within a data piece through the shared cache.

        Raises
        ------
        ArchiverError
            If the range exceeds the piece.
        """
        self._archiver._count("read_piece_range")
        extent = self._archiver.data_extent(object_id, tag)
        if start < 0 or start + length > extent.length:
            raise ArchiverError(
                f"range [{start}, {start + length}) exceeds piece "
                f"{tag!r} of length {extent.length}"
            )
        return self._read(
            f"piece/{object_id}/{tag}/{start}/{length}",
            Extent(extent.offset + start, length),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _read(self, key: str, extent: Extent) -> tuple[bytes, float]:
        cached = self._cache.get(key)
        if cached is not None:
            return cached, 0.0
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                # Re-check under the flight lock: a leader that finished
                # between our cache miss and here has already published
                # to the cache and retired its flight.
                cached = self._cache.get(key)
                if cached is not None:
                    return cached, 0.0
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self.flight_stats._lock:
                self.flight_stats.piggybacks += 1
            assert flight.data is not None
            self._flight_span(
                "flight:join", key=key,
                links=(flight.span_id,) if flight.span_id else (),
            )
            return flight.data, 0.0
        try:
            data, service = self._archiver.read_raw(extent)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
            raise
        # Publish to the cache BEFORE retiring the flight so the re-check
        # under the flight lock always finds either the flight or the
        # cached bytes — never neither (which would duplicate the read).
        self._cache.put(key, data)
        flight.data = data
        flight.service_time_s = service
        lead = self._flight_span(
            "flight:lead", key=key, service_s=round(service, 9)
        )
        if lead is not None:
            flight.span_id = lead.span_id
        with self._lock:
            self._flights.pop(key, None)
        with self.flight_stats._lock:
            self.flight_stats.device_fetches += 1
        flight.event.set()
        return data, service

    def _read_batch(
        self, key: str, ranges: list[tuple[int, int]]
    ) -> tuple[list[bytes], float]:
        """Single-flight scatter-gather batch over missing ranges.

        ``key`` canonically names the batch; identical concurrent
        batches collapse onto one leader's device sweep.  Payloads are
        published per range under the ``abs/…`` keys before the flight
        retires, preserving the re-check invariant of :meth:`_read`.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                # Re-check under the flight lock: a leader that finished
                # between our cache misses and here has published every
                # range to the cache and retired its flight.
                cached = [
                    self._cache.get(f"abs/{offset}/{length}")
                    for offset, length in ranges
                ]
                if all(data is not None for data in cached):
                    return cached, 0.0  # type: ignore[return-value]
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self.flight_stats._lock:
                self.flight_stats.piggybacks += 1
            assert isinstance(flight.data, list)
            self._flight_span(
                "flight:join", key=key, ranges=len(ranges),
                links=(flight.span_id,) if flight.span_id else (),
            )
            return list(flight.data), 0.0
        try:
            payloads, service = self._archiver.read_scattered_raw(ranges)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
            raise
        for (offset, length), data in zip(ranges, payloads):
            self._cache.put(f"abs/{offset}/{length}", data)
        flight.data = payloads
        flight.service_time_s = service
        lead = self._flight_span(
            "flight:lead", key=key, ranges=len(ranges),
            service_s=round(service, 9),
        )
        if lead is not None:
            flight.span_id = lead.span_id
        with self._lock:
            self._flights.pop(key, None)
        with self.flight_stats._lock:
            self.flight_stats.device_fetches += 1
        flight.event.set()
        return payloads, service


def _all_archiver(descriptor: Descriptor) -> Descriptor:
    """A copy of ``descriptor`` whose COMPOSITION locations are recast as
    ARCHIVER locations (they already hold archiver-absolute offsets)."""
    locations = [
        DataLocation(
            tag=loc.tag,
            kind=loc.kind,
            source=DataSource.ARCHIVER,
            offset=loc.offset,
            length=loc.length,
        )
        for loc in descriptor.locations
    ]
    return Descriptor(
        object_id=descriptor.object_id,
        driving_mode=descriptor.driving_mode,
        locations=locations,
        attributes=dict(descriptor.attributes),
        extra=dict(descriptor.extra),
    )
