"""Request scheduling on a shared archiver device.

"The major concern in the server subsystem is performance.  Performance
may be crucial due to queueing delays that may be experienced when
several users try to access data from the same device."

This module is an event-driven queueing simulation: a stream of
requests (user, arrival time, extent) is served by one device under a
scheduling discipline.  FCFS is the baseline; SCAN (elevator) exploits
the seek model's locality, which is how the C-QUEUE benchmark shows a
scheduling win at high load.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ArchiverError
from repro.storage.blockdev import DiskGeometry, Extent


class Discipline(enum.Enum):
    """Scheduling discipline for the device queue."""

    FCFS = "fcfs"
    SCAN = "scan"


@dataclass(frozen=True, slots=True)
class DiskRequest:
    """One read request against the shared device."""

    request_id: int
    user: str
    arrival_s: float
    extent: Extent


@dataclass(frozen=True, slots=True)
class CompletedRequest:
    """A served request with its timing."""

    request: DiskRequest
    start_s: float
    finish_s: float

    @property
    def response_time_s(self) -> float:
        """Arrival-to-completion latency."""
        return self.finish_s - self.request.arrival_s

    @property
    def wait_time_s(self) -> float:
        """Queueing delay before service began."""
        return self.start_s - self.request.arrival_s


def simulate_schedule(
    geometry: DiskGeometry,
    requests: list[DiskRequest],
    discipline: Discipline = Discipline.FCFS,
) -> list[CompletedRequest]:
    """Serve ``requests`` on one device; returns completions in service order.

    The device serves one request at a time.  Under FCFS the queue is
    drained in arrival order; under SCAN the head sweeps across the
    device, serving the queued request closest ahead in the sweep
    direction and reversing at the ends.
    """
    if not requests:
        return []
    pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    completed: list[CompletedRequest] = []
    now = 0.0
    head = 0
    direction = 1  # +1 sweeping to higher offsets, -1 to lower
    queue: list[DiskRequest] = []
    i = 0  # next arrival index

    while i < len(pending) or queue:
        # Admit everything that has arrived.
        while i < len(pending) and pending[i].arrival_s <= now:
            queue.append(pending[i])
            i += 1
        if not queue:
            now = pending[i].arrival_s
            continue
        if discipline is Discipline.FCFS:
            request = queue.pop(0)
        elif discipline is Discipline.SCAN:
            request, direction = _pick_scan(queue, head, direction)
            queue.remove(request)
        else:  # pragma: no cover - exhaustive enum
            raise ArchiverError(f"unknown discipline {discipline}")
        service = geometry.access_time(head, request.extent)
        start = now
        now += service
        head = request.extent.end
        completed.append(
            CompletedRequest(request=request, start_s=start, finish_s=now)
        )
    return completed


def total_seek_distance(
    completions: list[CompletedRequest], initial_head: int = 0
) -> int:
    """Total head travel (bytes) implied by a completion order.

    Replays the head movement of :func:`simulate_schedule`: the head
    starts at ``initial_head``, travels to each request's offset and is
    left at the request's end.  This is the metamorphic yardstick for
    comparing disciplines on identical request streams.
    """
    head = initial_head
    distance = 0
    for completion in completions:
        extent = completion.request.extent
        distance += abs(extent.offset - head)
        head = extent.end
    return distance


def _pick_scan(
    queue: list[DiskRequest], head: int, direction: int
) -> tuple[DiskRequest, int]:
    """The elevator choice: nearest request ahead; reverse when none."""
    ahead = [
        r for r in queue if (r.extent.offset - head) * direction >= 0
    ]
    if not ahead:
        direction = -direction
        ahead = [
            r for r in queue if (r.extent.offset - head) * direction >= 0
        ]
        if not ahead:  # all requests exactly at head on both filters
            ahead = queue
    best = min(ahead, key=lambda r: abs(r.extent.offset - head))
    return best, direction


def poisson_requests(
    rate_per_s: float,
    duration_s: float,
    extents: list[Extent],
    users: int = 4,
    seed: int = 0,
) -> list[DiskRequest]:
    """A Poisson arrival stream of reads over a set of extents.

    The workload generator for the C-QUEUE benchmark: ``users``
    independent browsers issuing object fetches at a combined
    ``rate_per_s``, each picking a uniformly random stored extent.

    Raises
    ------
    ArchiverError
        If there are no extents to read.
    """
    if not extents:
        raise ArchiverError("request stream needs at least one extent")
    rng = np.random.default_rng(seed)
    requests: list[DiskRequest] = []
    now = 0.0
    request_id = 0
    while True:
        now += float(rng.exponential(1.0 / rate_per_s))
        if now >= duration_s:
            break
        extent = extents[int(rng.integers(len(extents)))]
        requests.append(
            DiskRequest(
                request_id=request_id,
                user=f"user-{int(rng.integers(users))}",
                arrival_s=now,
                extent=extent,
            )
        )
        request_id += 1
    return requests
