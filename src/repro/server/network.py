"""The workstation-to-server link.

"Very high bandwidth communication links become available" — for 1986
that meant 10 Mbit/s Ethernet, which is the default here.  The link
model charges a fixed round-trip latency per request plus serialized
transfer time, which is all the C-VIEW and C-MINI benchmarks need to
show why views and miniatures exist.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NetworkLink:
    """A point-to-point link with bandwidth and latency.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Serialized payload rate (default: 10 Mbit/s Ethernet).
    latency_s:
        Per-request round-trip overhead.
    """

    bandwidth_bytes_per_s: float = 1_250_000.0
    latency_s: float = 0.002

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over the link (one request)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s
