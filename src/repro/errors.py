"""Exception hierarchy for the MINOS reproduction.

All library errors derive from :class:`MinosError` so that callers can
catch any library failure with a single ``except`` clause while still
being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class MinosError(Exception):
    """Base class for every error raised by this library."""


class ObjectStateError(MinosError):
    """An operation was attempted in the wrong object state.

    Archived objects are immutable; editing objects cannot be presented
    through the archiver interface until they are archived.
    """


class DescriptorError(MinosError):
    """The object descriptor is missing, malformed, or inconsistent."""


class MarkupError(MinosError):
    """The declarative text markup could not be parsed."""


class PaginationError(MinosError):
    """A presentation form could not be paginated."""


class BrowsingError(MinosError):
    """A browsing command was invalid in the current session state."""


class UnknownCommandError(BrowsingError):
    """A command was issued that is not on the current menu."""


class NavigationError(BrowsingError):
    """Page/logical-unit navigation went out of range."""


class AudioError(MinosError):
    """An audio substrate operation failed."""


class PlaybackStateError(AudioError):
    """A playback command was invalid for the player's state."""


class RecognitionError(AudioError):
    """The voice recognition simulator was misconfigured."""


class ImageError(MinosError):
    """An image substrate operation failed."""


class ViewError(ImageError):
    """A view rectangle is invalid for its image."""


class StorageError(MinosError):
    """A storage-device operation failed."""


class TransientIOError(StorageError):
    """A device operation failed transiently; retrying may succeed.

    Raised by fault injection (:mod:`repro.faults`) and, in a real
    deployment, by recoverable media errors.  Transient faults leave no
    partial state behind: the operation either happened completely or
    not at all, so callers such as
    :func:`repro.delivery.pipeline.fetch_with_retry` may retry blindly.
    """


class TornWriteError(StorageError):
    """A write reached the device only partially.

    Unlike :class:`TransientIOError`, a torn write *does* leave partial
    state: the device holds a prefix of the intended bytes (padded with
    garbage).  The commit protocol detects torn data by checksum at
    recovery time; callers must treat the target extent as garbage.
    """


class JournalError(StorageError):
    """The write-ahead journal is malformed or was misused."""


class MediaCodecError(StorageError):
    """A compressed media frame is corrupt, truncated, or unknown.

    Raised by strict frame decoding (:func:`repro.compress.frame
    .decode_frame`) when the magic, CRC, codec id, or declared raw
    length do not check out.  This is a *hard* error — the stored bytes
    themselves are bad, so unlike :class:`TransientIOError` a retry
    against the same extent cannot succeed and
    :func:`repro.delivery.pipeline.fetch_with_retry` will not retry it.
    """


class RecoveryError(MinosError):
    """Crash recovery could not reconstruct a consistent archive."""


class FaultConfigError(MinosError):
    """A fault-injection plan referenced an unknown site or bad spec."""


class SimulatedCrash(Exception):
    """A hard crash point injected by :mod:`repro.faults`.

    Deliberately *not* a :class:`MinosError`: a crash models the process
    dying mid-operation, so no library-level ``except MinosError``
    handler may absorb it — it must unwind all the way to the test
    harness, which then re-opens the archive from device bytes alone
    and calls :meth:`repro.server.archiver.Archiver.recover`.
    """


class WriteOnceViolationError(StorageError):
    """An attempt was made to overwrite data on a write-once device."""


class AllocationError(StorageError):
    """A device has no room for the requested allocation."""


class FormationError(MinosError):
    """Multimedia object formation (synthesis/composition) failed."""


class DataDirectoryError(FormationError):
    """A data-directory entry is missing or inconsistent."""


class ArchiverError(MinosError):
    """The multimedia object server could not satisfy a request."""


class ObjectNotFoundError(ArchiverError):
    """No object with the requested identifier exists in the archiver."""


class ServerBusyError(ArchiverError):
    """The server's admission queue is full; the request was rejected.

    Clients are expected to back off and retry; the frontend sheds load
    rather than letting queueing delay grow without bound.
    """


class RequestTimeoutError(ArchiverError):
    """A server request did not complete within its wall-clock budget.

    Raised by :meth:`repro.server.frontend.ServerFuture.result` when the
    *host* clock runs out while waiting on a worker thread.  Distinct
    from queueing delay in *simulated* seconds: a request can report a
    large simulated latency yet complete instantly in wall-clock terms.
    Delivery clients catch this (not a bare :class:`ArchiverError`) to
    retry or degrade instead of aborting a presentation.
    """


class VersionError(ArchiverError):
    """A version-control operation failed."""


class ClusterError(ArchiverError):
    """The replicated object service could not satisfy a request.

    Raised when every replica of an object failed (no failover target
    remains), when the cluster is misconfigured, or when a rebalance
    step is invalid for the current ring.
    """


class NodeDownError(ClusterError):
    """The addressed cluster node is DOWN (crashed or removed).

    A single node's death is *not* a client crash: the router catches
    this (alongside :class:`TransientIOError`) and fails the request
    over to the next replica.  It only propagates to callers when no
    replica remains.
    """


class QuorumWriteError(ClusterError):
    """A replicated store acknowledged fewer than ``W`` replicas.

    The replicas that did accept the write keep it (writes are
    idempotent per object id, so a retry converges); the caller must
    treat the object as not durably stored until a retry or a
    rebalance catch-up repairs the replica set.
    """


class DeliveryError(MinosError):
    """The streaming delivery pipeline was misused or misconfigured."""


class StreamStateError(DeliveryError):
    """A stream-session operation was invalid in its current state."""


class QueryError(ArchiverError):
    """A content query was malformed."""
