"""Greedy chaos-schedule shrinking.

A failing 40-step chaos schedule is a terrible bug report: most of its
steps are irrelevant to the violation.  :func:`shrink` reduces it to a
(locally) minimal schedule that still fails with the *same invariant*
— keying on the invariant label, not the full violation text, because
step indices and node ids legitimately drift as steps are removed.

The algorithm is classic chunked delta debugging: first truncate to
the violating step (everything after it never ran), then repeatedly
try deleting chunks, halving the chunk size from ``len/2`` down to
single steps, restarting at the largest chunk size after any
successful deletion.  Each candidate costs one full simulated run, so
the total is bounded by ``max_runs``; schedules here are forty-ish
steps and a run is a fraction of a second, so the cap is generous.

Shrinking relies on the schedule format's shrink stability (see
:mod:`repro.sim.schedule`): operand ``pick`` s are modular indices
into live candidate lists, so deleting a step never strands a later
one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.harness import SimConfig, run_sim
from repro.sim.model import Violation
from repro.sim.schedule import SimStep


@dataclass
class ShrinkResult:
    """A minimized failing schedule and the violation it reproduces."""

    steps: list[SimStep]
    violation: Violation
    #: Simulated runs spent (baseline + every candidate tried).
    runs: int


def shrink(
    steps: list[SimStep],
    config: SimConfig | None = None,
    *,
    max_runs: int = 200,
) -> ShrinkResult | None:
    """Minimize a failing schedule; None if it does not fail at all."""
    if config is None:
        config = SimConfig()
    steps = list(steps)
    runs = 1
    baseline = run_sim(steps, config).violation
    if baseline is None:
        return None
    target = baseline.invariant

    def still_fails(candidate: list[SimStep]) -> Violation | None:
        nonlocal runs
        runs += 1
        violation = run_sim(candidate, config).violation
        if violation is not None and violation.invariant == target:
            return violation
        return None

    current = steps
    best = baseline
    # Steps past the violating one never executed; drop them first.
    # (A violation at the implicit final quiesce has step_index ==
    # len(steps), so the slice is a no-op there.)
    if baseline.step_index + 1 < len(current):
        truncated = current[: baseline.step_index + 1]
        violation = still_fails(truncated)
        if violation is not None:
            current, best = truncated, violation

    chunk = max(len(current) // 2, 1)
    while chunk >= 1 and runs < max_runs:
        removed_any = False
        index = 0
        while index < len(current) and runs < max_runs:
            candidate = current[:index] + current[index + chunk:]
            if not candidate:
                index += chunk
                continue
            violation = still_fails(candidate)
            if violation is not None:
                current, best = candidate, violation
                removed_any = True
                # The list shifted left; retry the same index.
            else:
                index += chunk
        if removed_any and chunk > 1:
            # A deletion may have unlocked larger removals; restart big.
            chunk = max(len(current) // 2, 1)
        else:
            chunk //= 2
    return ShrinkResult(steps=current, violation=best, runs=runs)
