"""The DES-driven whole-system simulation harness.

One :class:`SimWorld` is a complete MINOS deployment in miniature: a
replicated cluster of full archiver stacks (optical platter behind a
:class:`~repro.faults.FaultyDevice`, journal, staging cache, sharded
archive index — each node consulting its own :class:`FaultPlan`), a
:class:`~repro.cluster.router.ClusterRouter` with quorum writes and
failover reads, a :class:`~repro.cluster.rebalance.Rebalancer`, one
shared :class:`~repro.obs.spans.SpanRecorder`, and one
:class:`~repro.clock.SimClock` that every operation advances.

Clients are simulated through the router's frontend protocol
(:meth:`submit`/``RouterFuture`` — the same shape
:func:`repro.delivery.pipeline.fetch_with_retry` speaks), not through a
threaded :class:`~repro.server.frontend.ServerFrontend`: host threads
would re-introduce nondeterminism, and the router *is* the frontend
protocol for cluster clients.  Retry backoffs sleep by advancing the
virtual clock.

:func:`run_sim` drives one :class:`ChaosSchedule` through a world and
returns the first :class:`~repro.sim.model.Violation` found (or None).
Errors a real client could see mid-chaos — failed quorums, transient
reads, every replica down — are *tolerated* during chaos steps and
recorded; the invariants are asserted at quiescent points, after the
world has been healed (down nodes recovered, outstanding faults
disarmed, repair loops run to convergence).  An implicit final quiesce
closes every run, so even an all-chaos schedule is checked.

The ``bug`` config field compiles a deliberate regression into the
world for harness self-tests: ``"drop_intent"`` gives every node a
journal that silently drops store BEGIN records — acknowledged writes
then violate the write-ahead rule, and the tiling / durability /
replication checkers must catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import SimClock
from repro.cluster.node import ClusterNode, NodeStatus
from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ClusterRouter
from repro.delivery.pipeline import fetch_with_retry
from repro.errors import (
    ClusterError,
    ObjectNotFoundError,
    QuorumWriteError,
    SimulatedCrash,
    TransientIOError,
)
from repro.faults import FaultPlan, FaultyDevice
from repro.ids import IdGenerator
from repro.index import ArchiveIndex, BOTH, TEXT, VOICE
from repro.obs import context as obs_context
from repro.obs.spans import SpanRecorder
from repro.server import Archiver, QueryInterface
from repro.sim.checker import check_world
from repro.sim.model import ModelArchive, ObjectSpec, Violation
from repro.sim.schedule import ChaosSchedule, SimStep
from repro.sim.workload import make_object
from repro.storage.cache import LRUCache
from repro.storage.journal import Journal
from repro.storage.optical import OpticalDisk

#: Failures a chaos-phase client is expected to absorb: failed quorums,
#: transient I/O after retries, every replica of an object down.
#: Anything outside this tuple escaping to a client is itself a
#: violation (``unexpected-error`` / ``crash-leak``).
EXPECTED_CLIENT_ERRORS = (
    QuorumWriteError,
    TransientIOError,
    ClusterError,
    ObjectNotFoundError,
)

_CHANNELS = {"both": BOTH, "text": TEXT, "voice": VOICE}


@dataclass(frozen=True)
class SimConfig:
    """Shape of the simulated deployment (fully serializable)."""

    n_nodes: int = 3
    replication: int = 2
    cache_bytes: int = 1 << 16
    memtable_budget_bytes: int = 256
    n_shards: int = 2
    max_nodes: int = 5
    max_convergence_passes: int = 12
    seed: int = 0
    #: Deliberate regression to compile in (harness self-test).
    bug: str | None = None

    def to_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "replication": self.replication,
            "cache_bytes": self.cache_bytes,
            "memtable_budget_bytes": self.memtable_budget_bytes,
            "n_shards": self.n_shards,
            "max_nodes": self.max_nodes,
            "max_convergence_passes": self.max_convergence_passes,
            "seed": self.seed,
            "bug": self.bug,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        return cls(**{
            key: data[key]
            for key in cls.__dataclass_fields__
            if key in data
        })


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    violation: Violation | None
    steps_run: int
    #: ``(step index, step kind, error type)`` for every tolerated
    #: client-visible failure during chaos.
    tolerated: list[tuple[int, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


class _AmnesicJournal(Journal):
    """A journal that forgets store intents (the ``drop_intent`` bug).

    The canonical write-ahead-logging regression: data reaches the
    platter and the client is acknowledged, but no BEGIN record backs
    the write, so the first crash silently loses the object and leaves
    allocated platter bytes no recovery can account for.
    """

    def __init__(self, device=None) -> None:
        super().__init__(device)
        self._fake_txid = 0

    def begin(self, kind: str, payload: dict) -> int:
        if kind == "store":
            self._fake_txid -= 1
            return self._fake_txid
        return super().begin(kind, payload)

    def seal(self, txid: int) -> None:
        if txid < 0:
            return
        super().seal(txid)

    def abort(self, txid: int) -> None:
        if txid < 0:
            return
        super().abort(txid)


class SimWorld:
    """One deployment under simulation; mutated step by step."""

    def __init__(self, config: SimConfig, *, clock: SimClock | None = None):
        self.config = config
        self.clock = clock if clock is not None else SimClock()
        self.clock.reset()
        obs_context.reset()
        self.recorder = SpanRecorder()
        self.generator = IdGenerator(f"sim-{config.seed}")
        self.model = ModelArchive()
        #: Every node ever created, including detached/left ones.
        self.nodes_by_id: dict[int, ClusterNode] = {}
        nodes = [self._build_node(i) for i in range(config.n_nodes)]
        self.router = ClusterRouter(
            nodes, replication=config.replication, obs=self.recorder
        )
        self.rebalancer = Rebalancer(self.router)
        #: object id → (archived object, recognition side table).
        self.objects: dict[object, tuple] = {}
        self.leaving: set[int] = set()
        self.left: set[int] = set()
        self._next_node_id = config.n_nodes
        self.tolerated: list[tuple[int, str, str]] = []

    # ------------------------------------------------------------------
    # world building
    # ------------------------------------------------------------------

    def _build_node(self, node_id: int) -> ClusterNode:
        plan = FaultPlan()
        disk = FaultyDevice(OpticalDisk(), plan)
        if self.config.bug == "drop_intent":
            journal: Journal = _AmnesicJournal()
        else:
            journal = Journal()
        archiver = Archiver(
            disk=disk,
            cache=LRUCache(self.config.cache_bytes, fault_plan=plan),
            archive_index=ArchiveIndex(
                n_shards=self.config.n_shards,
                memtable_budget_bytes=self.config.memtable_budget_bytes,
                fault_plan=plan,
            ),
            journal=journal,
            fault_plan=plan,
        )
        node = ClusterNode(node_id, archiver, fault_plan=plan)
        self.nodes_by_id[node_id] = node
        return node

    # ------------------------------------------------------------------
    # step dispatch
    # ------------------------------------------------------------------

    def apply(self, index: int, step: SimStep) -> Violation | None:
        """Execute one step; returns a violation if the step found one."""
        handler = getattr(self, f"_op_{step.kind}", None)
        if handler is None:
            return Violation(
                "unknown-step", f"no handler for {step.kind!r}", index
            )
        self.clock.advance(0.1)
        try:
            return handler(step.params, index)
        except EXPECTED_CLIENT_ERRORS as exc:
            self.tolerated.append((index, step.kind, type(exc).__name__))
            return None
        except SimulatedCrash as exc:
            # Post node-boundary translation, a raw crash reaching the
            # client means some layer failed to contain a process
            # death — exactly the bug class the sim exists to catch.
            return Violation(
                "crash-leak", f"{step.kind} leaked {exc}", index
            )
        except Exception as exc:  # noqa: BLE001 - any leak is a finding
            return Violation(
                "unexpected-error",
                f"{step.kind}: {type(exc).__name__}: {exc}",
                index,
            )

    # -- client operations ---------------------------------------------

    def _op_store(self, params: dict, index: int) -> Violation | None:
        obj, side_table = make_object(
            self.generator, params["media"], params["units"]
        )
        self.model.on_store_attempt(
            obj.object_id, ObjectSpec.make(params["media"], params["units"])
        )
        self.objects[obj.object_id] = (obj, side_table)
        self.router.store(obj, now_s=self.clock.now)
        self.model.on_store_ack(obj.object_id)
        return None

    def _op_recognize(self, params: dict, index: int) -> Violation | None:
        candidates = [
            object_id
            for object_id in self.model.acked_voice_ids()
            if object_id not in self.model.acked_recognitions
        ]
        if not candidates:
            return None
        object_id = candidates[params["pick"] % len(candidates)]
        _, side_table = self.objects[object_id]
        self.model.on_recognition_attempt(object_id)
        self.router.attach_recognition(
            object_id, side_table, now_s=self.clock.now
        )
        self.model.on_recognition_ack(object_id)
        return None

    def _op_open(self, params: dict, index: int) -> Violation | None:
        if not self.model.acked:
            return None
        object_id = self.model.acked[params["pick"] % len(self.model.acked)]
        payload, service = fetch_with_retry(
            self.router,
            "fetch_object",
            object_id,
            station=f"ws-{params['station'] % 4}",
            attempts=2,
            timeout_s=60.0,
            backoff_s=0.01,
            sleep=self.clock.advance,
        )
        if payload.object_id != object_id:
            return Violation(
                "read-integrity",
                f"open of {object_id} returned {payload.object_id}",
                index,
            )
        self.clock.advance(service)
        return None

    def _op_search(self, params: dict, index: int) -> Violation | None:
        serving = [
            node
            for _, node in sorted(self.router.nodes.items())
            if node.serves_reads
        ]
        if not serving:
            return None
        node = serving[params["pick"] % len(serving)]
        channel = _CHANNELS[params["channel"]]
        interface = QueryInterface(node.archiver)
        try:
            via_index = interface.select(terms=[params["term"]], channel=channel)
            via_scan = interface.select(
                terms=[params["term"]], channel=channel, use_index=False
            )
        except SimulatedCrash:
            # The query session runs inside the node's process; its
            # death is the node's death, not the client's.
            node.crash()
            return None
        if via_index != via_scan:
            return Violation(
                "index-scan",
                f"mid-run select({params['term']!r}, {params['channel']}) "
                f"on node {node.node_id}: index {via_index} != scan "
                f"{via_scan}",
                index,
                node_id=node.node_id,
            )
        return None

    def _op_browse(self, params: dict, index: int) -> Violation | None:
        if not self.model.acked:
            return None
        object_id = self.model.acked[params["pick"] % len(self.model.acked)]
        station = f"ws-{params['station'] % 4}"
        fetched, service = self.router.request(
            "fetch", object_id, station=station, arrival_s=self.clock.now
        )
        self.clock.advance(service)
        tags = fetched.descriptor.archiver_tags()
        if not tags:
            return None
        tag = tags[params["pick"] % len(tags)]
        _, service = self.router.request(
            "read_piece_range", object_id, tag, 0, 1,
            station=station, arrival_s=self.clock.now,
        )
        self.clock.advance(service)
        return None

    # -- chaos ----------------------------------------------------------

    def _live_nodes(self) -> list[ClusterNode]:
        return [
            node
            for _, node in sorted(self.router.nodes.items())
            if node.status is not NodeStatus.DOWN
        ]

    def _op_crash_node(self, params: dict, index: int) -> Violation | None:
        if "node_id" in params:
            node = self.nodes_by_id.get(params["node_id"])
            if node is None or node.status is NodeStatus.DOWN:
                return None
        else:
            candidates = self._live_nodes()
            if not candidates:
                return None
            node = candidates[params["pick"] % len(candidates)]
        node.crash()
        return None

    def _op_recover_node(self, params: dict, index: int) -> Violation | None:
        candidates = [
            node
            for _, node in sorted(self.router.nodes.items())
            if node.status is NodeStatus.DOWN
        ]
        if not candidates:
            return None
        node = candidates[params["pick"] % len(candidates)]
        try:
            node.recover()
        except SimulatedCrash:
            # Died again during restart (armed fault mid-replay); the
            # node stays down and the quiescent heal retries cleanly.
            pass
        return None

    def _op_join_node(self, params: dict, index: int) -> Violation | None:
        if len(self.router.nodes) >= self.config.max_nodes:
            return None
        node = self._build_node(self._next_node_id)
        self._next_node_id += 1
        self.rebalancer.join(node, now_s=self.clock.now)
        return None

    def _op_leave_node(self, params: dict, index: int) -> Violation | None:
        if (
            len(self.router.nodes) < 3
            or len(self.router.nodes) - 1 < self.config.replication
        ):
            return None
        candidates = [
            node for node in self._live_nodes() if node.is_up
        ]
        if not candidates:
            return None
        node = candidates[params["pick"] % len(candidates)]
        self.rebalancer.leave(node.node_id, now_s=self.clock.now)
        self.leaving.add(node.node_id)
        return None

    def _arm_target(self, pick: int) -> ClusterNode | None:
        nodes = [node for _, node in sorted(self.router.nodes.items())]
        if not nodes:
            return None
        return nodes[pick % len(nodes)]

    def _op_torn_write(self, params: dict, index: int) -> Violation | None:
        node = self._arm_target(params["pick"])
        if node is None or node.fault_plan is None:
            return None
        plan = node.fault_plan
        plan.arm(
            "device.write",
            "torn_write",
            hit=plan.arrivals("device.write") + 1 + params["delay"],
            tear_fraction=params["tear_fraction"],
            then_crash=params["then_crash"],
        )
        return None

    def _op_transient(self, params: dict, index: int) -> Violation | None:
        node = self._arm_target(params["pick"])
        if node is None or node.fault_plan is None:
            return None
        plan = node.fault_plan
        plan.arm(
            params["site"],
            "transient",
            hit=plan.arrivals(params["site"]) + 1 + params["delay"],
            count=params["count"],
        )
        return None

    def _op_crash_site(self, params: dict, index: int) -> Violation | None:
        node = self._arm_target(params["pick"])
        if node is None or node.fault_plan is None:
            return None
        plan = node.fault_plan
        plan.arm(
            params["site"],
            "crash",
            hit=plan.arrivals(params["site"]) + 1 + params["delay"],
        )
        return None

    def _op_catch_up(self, params: dict, index: int) -> Violation | None:
        self.rebalancer.catch_up()
        return None

    def _op_rebalance(self, params: dict, index: int) -> Violation | None:
        self.rebalancer.run(params["max_steps"], now_s=self.clock.now)
        return None

    # ------------------------------------------------------------------
    # quiescent points
    # ------------------------------------------------------------------

    def _op_quiesce(self, params: dict, index: int) -> Violation | None:
        return self.quiesce(index)

    def quiesce(self, index: int) -> Violation | None:
        """Heal the world, run repair to convergence, check invariants.

        The quiescent contract: chaos stops (every outstanding fault is
        disarmed), every crashed node restarts from its surviving
        devices, the repair machinery (catch-up + migrations) runs
        until it has nothing left to do, pending leaves complete — and
        *then* the global invariants must hold exactly.
        """
        for node in self.nodes_by_id.values():
            if node.fault_plan is not None:
                node.fault_plan.disarm()
        self.recorder.clear()
        for node_id, node in sorted(self.nodes_by_id.items()):
            if node_id in self.left:
                continue
            if node.status is NodeStatus.DOWN:
                try:
                    node.recover()
                except Exception as exc:  # noqa: BLE001 - a finding
                    return Violation(
                        "recovery",
                        f"node {node_id} failed to recover: "
                        f"{type(exc).__name__}: {exc}",
                        index,
                        node_id=node_id,
                    )
        for _ in range(self.config.max_convergence_passes):
            queued = self.rebalancer.catch_up()
            report = self.rebalancer.run(now_s=self.clock.now)
            stuck_debt = [
                (object_id, node_id)
                for object_id, node_id in self.router.under_replicated
                if self.model.is_acked(object_id)
            ]
            if queued == 0 and report.remaining == 0 and not stuck_debt:
                break
        else:
            return Violation(
                "convergence",
                f"repair did not converge in "
                f"{self.config.max_convergence_passes} passes: "
                f"{len(self.rebalancer.pending)} pending, "
                f"{len(self.router.under_replicated)} debts",
                index,
            )
        for node_id in sorted(self.leaving):
            try:
                self.rebalancer.finish_leave(node_id)
            except ClusterError as exc:
                return Violation(
                    "convergence",
                    f"leave of node {node_id} blocked: {exc}",
                    index,
                    node_id=node_id,
                )
            self.left.add(node_id)
        self.leaving.clear()
        return check_world(self, index)


def run_sim(
    schedule: ChaosSchedule | list[SimStep],
    config: SimConfig | None = None,
    *,
    clock: SimClock | None = None,
) -> SimResult:
    """Run one schedule through a fresh world; first violation wins.

    An implicit quiesce (attributed to index ``len(steps)``) closes the
    run, so every schedule ends with a full invariant check.
    """
    if config is None:
        config = SimConfig()
    steps = list(schedule)
    world = SimWorld(config, clock=clock)
    violation = None
    steps_run = 0
    for index, step in enumerate(steps):
        violation = world.apply(index, step)
        steps_run = index + 1
        if violation is not None:
            break
    if violation is None:
        violation = world.quiesce(len(steps))
    return SimResult(
        violation=violation, steps_run=steps_run, tolerated=world.tolerated
    )
