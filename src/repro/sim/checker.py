"""Quiescent-point invariant checks against the model oracle.

:func:`check_world` runs after the harness has healed the world (all
faults disarmed, crashed nodes recovered, repair converged) and holds
the real cluster to the model's sandwich invariant — acknowledged
history must be fully served, actual state must not exceed attempted
history — plus the structural invariants no history can excuse:
journal/extent tiling, WORM platter growth, index ≡ scan-oracle
equivalence, cache ownership, version-token monotonicity, and
one-connected-tree span attribution.

Checks are ordered cheapest-global first, then per-node; the first
violation wins, because after one broken invariant the rest are noise
(a lost object fails durability, replication *and* the index oracle —
the shrinker wants one stable label, not three).
"""

from __future__ import annotations

from repro.formatter.archive import object_token_units
from repro.index import BOTH, TEXT, VOICE
from repro.index.planner import matches_units, parse_query
from repro.server import QueryInterface
from repro.server.recovery import tiling_gap
from repro.sim.model import Violation
from repro.sim.workload import QUERY_BATTERY
from repro.storage.blockdev import Extent

#: Channel axes every index/scan comparison runs over.
_CHECK_CHANNELS = (BOTH, TEXT, VOICE)

#: How many acked objects the span-tree probe re-fetches.
_SPAN_PROBE_READS = 4


def check_world(world, step_index: int) -> Violation | None:
    """Assert every invariant; returns the first violation found."""
    for check in (
        _check_durability,
        _check_replication,
        _check_nodes,
        _check_recognition_durability,
        _check_span_trees,
    ):
        violation = check(world, step_index)
        if violation is not None:
            return violation
    return None


# ----------------------------------------------------------------------
# global checks
# ----------------------------------------------------------------------


def _check_durability(world, step_index: int) -> Violation | None:
    """Every acknowledged store must be readable and byte-faithful."""
    for object_id in world.model.acked:
        try:
            obj, _ = world.router.fetch_object(
                object_id, arrival_s=world.clock.now
            )
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            return Violation(
                "durability",
                f"acked object {object_id} unreadable at quiescence: "
                f"{type(exc).__name__}: {exc}",
                step_index,
            )
        if obj.object_id != object_id:
            return Violation(
                "read-integrity",
                f"fetch of {object_id} rebuilt {obj.object_id}",
                step_index,
            )
    return None


def _check_replication(world, step_index: int) -> Violation | None:
    """Post-repair, every acked object sits on its full replica set."""
    for object_id in world.model.acked:
        for node_id in world.router.replica_set(object_id):
            node = world.router.nodes.get(node_id)
            if node is None or object_id not in node:
                return Violation(
                    "replication",
                    f"acked object {object_id} missing from replica "
                    f"{node_id} after repair converged",
                    step_index,
                    node_id=node_id,
                )
    return None


def _check_recognition_durability(world, step_index: int) -> Violation | None:
    """An acked recognition's full term set survives on ≥1 live holder.

    Recognition writes at W=1, so only one durable application is
    promised — but that one must be complete (the per-node check
    already enforced all-or-nothing on each copy; this check enforces
    that the "all" copy exists somewhere).  "Serves" means the terms a
    client sees in the rebuilt object: a copy may carry its recognition
    either as a side table (direct ``attach_recognition``) or baked
    into the media pieces (a migration of an already-recognized copy)
    — both are durable, so the check reads through the rebuild path
    rather than the side table.
    """
    for object_id in sorted(world.model.acked_recognitions, key=str):
        expected = world.model.expected_channel_terms(object_id)["voice"]
        if not expected:
            continue
        served: list[set[str]] = []
        for node_id in world.router.replica_set(object_id):
            node = world.router.nodes.get(node_id)
            if node is None or object_id not in node:
                continue
            obj, _ = node.archiver.fetch_object(object_id)
            units = object_token_units(obj)
            served.append({
                word for tokens in units.get(VOICE, ()) for word in tokens
            })
        if not any(terms == expected for terms in served):
            return Violation(
                "recognition-durability",
                f"acked recognition of {object_id} not fully served by "
                f"any replica: expected {sorted(expected)}, holders serve "
                f"{[sorted(t) for t in served]}",
                step_index,
            )
    return None


# ----------------------------------------------------------------------
# per-node checks
# ----------------------------------------------------------------------


def _check_nodes(world, step_index: int) -> Violation | None:
    for _, node in sorted(world.router.nodes.items()):
        violation = _check_node(world, node, step_index)
        if violation is not None:
            return violation
    return None


def _check_node(world, node, step_index: int) -> Violation | None:
    archiver = node.archiver
    model = world.model

    # Tiling: every allocated platter byte is owned by a live object or
    # journaled as dead.  A positive gap means bytes reached the
    # platter with no write-ahead evidence.
    gap = tiling_gap(archiver)
    if gap != 0:
        return Violation(
            "tiling",
            f"{gap} allocated bytes with no journal evidence",
            step_index,
            node_id=node.node_id,
        )

    # WORM: the platter prefix observed at the previous quiescent point
    # must be byte-identical now, and allocation must only grow.
    used = archiver.disk.used_bytes
    data = archiver.read_raw(Extent(0, used))[0] if used else b""
    worm_error = model.check_worm(node.node_id, data)
    if worm_error is not None:
        return Violation(
            "worm", worm_error, step_index, node_id=node.node_id
        )

    # Content of every held copy, against the attempted history.
    units_by_oid: dict[object, dict] = {}
    for object_id in archiver.object_ids():
        if object_id not in model.attempted:
            return Violation(
                "phantom-object",
                f"holds {object_id}, which no client ever stored",
                step_index,
                node_id=node.node_id,
            )
        obj, _ = archiver.fetch_object(object_id)
        units = object_token_units(obj)
        units_by_oid[object_id] = units
        expected = model.expected_channel_terms(object_id)
        text_terms = {
            word for tokens in units.get(TEXT, ()) for word in tokens
        }
        if text_terms != expected["text"]:
            return Violation(
                "content",
                f"{object_id} text terms {sorted(text_terms)} != stored "
                f"spec {sorted(expected['text'])}",
                step_index,
                node_id=node.node_id,
            )
        voice_terms = {
            word for tokens in units.get(VOICE, ()) for word in tokens
        }
        if voice_terms:
            if object_id not in model.attempted_recognitions:
                return Violation(
                    "phantom-recognition",
                    f"{object_id} serves voice terms "
                    f"{sorted(voice_terms)} but recognition was never "
                    "attempted",
                    step_index,
                    node_id=node.node_id,
                )
            if voice_terms != expected["voice"]:
                return Violation(
                    "recognition-atomicity",
                    f"{object_id} serves a partial recognition: "
                    f"{sorted(voice_terms)} of {sorted(expected['voice'])}",
                    step_index,
                    node_id=node.node_id,
                )
        version_error = model.check_version(
            node.node_id, object_id, archiver.version_of(object_id)
        )
        if version_error is not None:
            return Violation(
                "version", version_error, step_index, node_id=node.node_id
            )

    # Index ≡ scan oracle ≡ model units, per channel, over the full
    # query battery (terms, AND/OR/NOT, phrases).
    interface = QueryInterface(archiver)
    for query in QUERY_BATTERY:
        plan = parse_query(query)
        for channel in _CHECK_CHANNELS:
            via_index = set(interface.search(query, channel=channel))
            via_model = {
                object_id
                for object_id, units in units_by_oid.items()
                if matches_units(plan, channel, units)
            }
            if via_index != via_model:
                return Violation(
                    "index-scan",
                    f"search({query!r}, {channel}): index {sorted(map(str, via_index))} "
                    f"!= oracle {sorted(map(str, via_model))}",
                    step_index,
                    node_id=node.node_id,
                )

    return _check_cache(node, step_index)


def _check_cache(node, step_index: int) -> Violation | None:
    """Every ``abs/…`` cache entry is owned and byte-identical."""
    archiver = node.archiver
    cache = archiver.cache
    if cache is None:
        return None
    owned = [
        archiver.record(object_id).extent
        for object_id in archiver.object_ids()
    ]
    for key in cache.keys():
        if not key.startswith("abs/"):
            continue
        _, offset, length = key.split("/")
        offset, length = int(offset), int(length)
        if not any(
            extent.offset <= offset and offset + length <= extent.end
            for extent in owned
        ):
            return Violation(
                "cache",
                f"cache entry {key} not owned by any live object",
                step_index,
                node_id=node.node_id,
            )
        if cache.get(key) != archiver.read_raw(Extent(offset, length))[0]:
            return Violation(
                "cache",
                f"cache entry {key} diverges from the platter",
                step_index,
                node_id=node.node_id,
            )
    return None


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------


def _check_span_trees(world, step_index: int) -> Violation | None:
    """Probe reads must each produce one connected span tree.

    The recorder was cleared when quiescence began, so the only spans
    present are the probe's own: every trace must have exactly one
    root, and every parent id must resolve within its own trace — a
    span attributed to a missing or foreign parent means causal
    attribution broke somewhere in the read path.
    """
    recorder = world.recorder
    recorder.clear()
    for object_id in world.model.acked[:_SPAN_PROBE_READS]:
        world.router.fetch_object(object_id, arrival_s=world.clock.now)
    try:
        for trace_id, spans in world.recorder.traces().items():
            roots = [span for span in spans if span.parent_id is None]
            if len(roots) != 1:
                return Violation(
                    "span-tree",
                    f"trace {trace_id} has {len(roots)} roots "
                    f"({len(spans)} spans)",
                    step_index,
                )
            span_ids = {span.context.span_id for span in spans}
            for span in spans:
                if span.parent_id is not None and span.parent_id not in span_ids:
                    return Violation(
                        "span-tree",
                        f"trace {trace_id}: span {span.name!r} parent "
                        f"{span.parent_id} missing from its trace",
                        step_index,
                    )
    finally:
        recorder.clear()
    return None
