"""Client-side object builders for the whole-system simulator.

The simulated clients speak the same tiny vocabulary as the
fault-matrix harness (``tests/fault_workload.py``): five words is
enough for every query shape — single terms, conjunctions, negations,
phrases — to have dense, overlapping answers, which is what makes the
index ≡ scan-oracle comparison discriminating.

Voice objects are built at a deliberately low sample rate: the
simulator stores hundreds of objects per sweep and cares about commit
protocols and replica placement, not codec fidelity, so each second of
"speech" costs 1000 samples instead of 8000.  The recognition side
table for a voice object is derived from the same unit spec, so the
model oracle knows exactly which voice terms an acknowledged
recognition must make searchable.
"""

from __future__ import annotations

import numpy as np

from repro.audio.recognition import RecognizedUtterance
from repro.audio.signal import Recording, TimedWord
from repro.ids import IdGenerator
from repro.objects import DrivingMode, MultimediaObject, PresentationSpec
from repro.objects.parts import TextSegment, VoiceSegment
from repro.objects.presentation import TextFlow

#: The shared vocabulary; identical to the fault harness so oracle
#: queries port across both.
WORDS = ["alpha", "beta", "gamma", "delta", "epsilon"]

#: Query shapes every quiescent check evaluates per node and channel.
QUERY_BATTERY = WORDS + [
    "alpha AND beta",
    "alpha OR gamma",
    "delta NOT (beta OR gamma)",
    '"alpha beta"',
]

#: Samples per simulated second of speech (8× cheaper than the
#: recognition suite's 8 kHz; the simulator never decodes audio).
SAMPLE_RATE = 1000


def make_object(
    generator: IdGenerator, media: str, units: list[list[str]]
) -> tuple[MultimediaObject, dict]:
    """Build and archive one client object; ``(object, side_table)``.

    ``media`` is ``"text"`` or ``"voice"``; ``units`` is one token list
    per segment.  For voice objects the returned side table maps each
    segment id to the recognized utterances an ``attach_recognition``
    would produce — the exact terms the model oracle expects the voice
    channel to serve once the recognition is acknowledged.  Text
    objects return an empty side table.
    """
    if media == "text":
        obj = MultimediaObject(
            object_id=generator.object_id(), driving_mode=DrivingMode.VISUAL
        )
        flows = []
        for unit in units:
            segment = TextSegment(
                segment_id=generator.segment_id(), markup=" ".join(unit)
            )
            obj.add_text_segment(segment)
            flows.append(TextFlow(segment.segment_id))
        obj.presentation = PresentationSpec(items=flows)
        return obj.archive(), {}
    if media != "voice":
        raise ValueError(f"unknown media kind {media!r}")
    obj = MultimediaObject(
        object_id=generator.object_id(), driving_mode=DrivingMode.AUDIO
    )
    order = []
    side_table: dict = {}
    for unit in units:
        timed = [
            TimedWord(word, float(i), float(i) + 0.5)
            for i, word in enumerate(unit)
        ]
        recording = Recording(
            samples=np.zeros(SAMPLE_RATE * len(unit), dtype=np.float32),
            sample_rate=SAMPLE_RATE,
            words=timed,
        )
        segment = VoiceSegment(
            segment_id=generator.segment_id(), recording=recording
        )
        obj.add_voice_segment(segment)
        order.append(segment.segment_id)
        side_table[segment.segment_id] = [
            RecognizedUtterance(term=word, time=float(i))
            for i, word in enumerate(unit)
        ]
    obj.presentation = PresentationSpec(audio_order=order)
    return obj.archive(), side_table
