"""The pure-Python model oracle the simulated cluster is checked against.

The :class:`ModelArchive` is deliberately trivial: dictionaries and
sets updated at the harness's step boundaries, with no storage, no
placement and no failure modes of its own.  It records the
*acknowledged history* — what the cluster told its clients — plus the
*attempted history*, and the checker holds the real system to the
sandwich invariant::

    acknowledged  ⊆  actual state  ⊆  attempted

Acknowledged work must survive anything (durability, replication
factor, recognition terms); actual state beyond the acknowledged part
is legitimate residue of failed-but-partially-applied operations, but
must never exceed what was attempted (no phantom objects, no invented
terms).  The model also carries per-node watermarks for the two
monotone resources: WORM platter growth (append-only bytes, verified
by prefix checksum) and version tokens per held copy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ObjectSpec:
    """What a stored object is supposed to contain."""

    media: str  # "text" | "voice"
    units: tuple[tuple[str, ...], ...]

    @classmethod
    def make(cls, media: str, units: list[list[str]]) -> "ObjectSpec":
        return cls(media=media, units=tuple(tuple(u) for u in units))

    @property
    def terms(self) -> set[str]:
        return {word for unit in self.units for word in unit}


@dataclass
class Violation:
    """One invariant the real system broke, attributed to a step."""

    invariant: str
    detail: str
    step_index: int
    node_id: int | None = None

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "step_index": self.step_index,
            "node_id": self.node_id,
        }

    def __str__(self) -> str:  # pragma: no cover - display helper
        where = f" node={self.node_id}" if self.node_id is not None else ""
        return (
            f"[{self.invariant}] step {self.step_index}{where}: {self.detail}"
        )


class ModelArchive:
    """Acknowledged + attempted history, and the monotone watermarks."""

    def __init__(self) -> None:
        #: Every store the client *initiated*, acked or not.
        self.attempted: dict[object, ObjectSpec] = {}
        #: Stores the cluster acknowledged (quorum met), in ack order.
        self.acked: list[object] = []
        self._acked_set: set[object] = set()
        #: Voice objects whose recognition was attempted / acknowledged.
        self.attempted_recognitions: set[object] = set()
        self.acked_recognitions: set[object] = set()
        #: node id → (used_bytes, crc32 of the first used_bytes) at the
        #: last quiescent point — the WORM append-only watermark.
        self.worm: dict[int, tuple[int, int]] = {}
        #: (node id, object id) → highest version token observed.
        self.versions: dict[tuple[int, object], int] = {}

    # ------------------------------------------------------------------
    # history updates (called by the harness at step boundaries)
    # ------------------------------------------------------------------

    def on_store_attempt(self, object_id, spec: ObjectSpec) -> None:
        self.attempted[object_id] = spec

    def on_store_ack(self, object_id) -> None:
        if object_id not in self._acked_set:
            self._acked_set.add(object_id)
            self.acked.append(object_id)

    def on_recognition_attempt(self, object_id) -> None:
        self.attempted_recognitions.add(object_id)

    def on_recognition_ack(self, object_id) -> None:
        self.acked_recognitions.add(object_id)

    # ------------------------------------------------------------------
    # queries the checker asks
    # ------------------------------------------------------------------

    def is_acked(self, object_id) -> bool:
        return object_id in self._acked_set

    def acked_voice_ids(self) -> list[object]:
        """Acked voice objects, in ack order (recognition candidates)."""
        return [
            object_id
            for object_id in self.acked
            if self.attempted[object_id].media == "voice"
        ]

    def expected_channel_terms(self, object_id) -> dict[str, set[str]]:
        """Per-channel term sets a *complete* copy of the object serves.

        The voice entry assumes the copy carries its recognition; a
        copy without recognition legitimately serves the empty set —
        the checker enforces the all-or-nothing rule itself.
        """
        spec = self.attempted[object_id]
        if spec.media == "text":
            return {"text": spec.terms, "voice": set()}
        return {"text": set(), "voice": spec.terms}

    # ------------------------------------------------------------------
    # monotone watermarks
    # ------------------------------------------------------------------

    def check_worm(self, node_id: int, data: bytes) -> str | None:
        """Verify and advance one node's append-only platter watermark.

        ``data`` is the node's full allocated platter prefix.  Returns
        an error string if previously-observed bytes shrank or changed
        — the two things a WORM platter cannot do — else records the
        new watermark and returns None.
        """
        used = len(data)
        previous = self.worm.get(node_id)
        if previous is not None:
            prev_used, prev_crc = previous
            if used < prev_used:
                return (
                    f"platter shrank from {prev_used} to {used} bytes"
                )
            if zlib.crc32(data[:prev_used]) != prev_crc:
                return (
                    f"first {prev_used} platter bytes changed since the "
                    "last quiescent point"
                )
        self.worm[node_id] = (used, zlib.crc32(data))
        return None

    def check_version(self, node_id: int, object_id, version: int) -> str | None:
        """Verify and advance one copy's version-token watermark."""
        key = (node_id, object_id)
        previous = self.versions.get(key, 0)
        if version < previous:
            return (
                f"version token of {object_id} went backwards: "
                f"{previous} -> {version}"
            )
        self.versions[key] = version
        return None
