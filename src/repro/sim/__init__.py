"""Deterministic whole-system simulation of the MINOS cluster.

The simulator composes the pieces the rest of the repository already
tests in isolation — virtual clock, fault plans, replicated cluster,
rebalancer, span recorder — into one seeded world, drives it with a
generated :class:`ChaosSchedule` of client operations interleaved with
crashes, torn writes, transient faults and topology changes, and
checks it against a pure-Python :class:`ModelArchive` oracle at every
quiescent point.  Failing seeds shrink to minimal replayable repro
files.

Typical use::

    from repro.sim import ChaosSchedule, SimConfig, run_sim, shrink

    schedule = ChaosSchedule.generate(seed=7, n_steps=40)
    result = run_sim(schedule, SimConfig(seed=7))
    if not result.ok:
        minimal = shrink(schedule.steps, SimConfig(seed=7))

``tools/run_sim_sweep.py`` wraps exactly this loop for CI sweeps.
"""

from repro.sim.harness import (
    EXPECTED_CLIENT_ERRORS,
    SimConfig,
    SimResult,
    SimWorld,
    run_sim,
)
from repro.sim.model import ModelArchive, ObjectSpec, Violation
from repro.sim.schedule import (
    CRASH_SITES,
    REPRO_FORMAT,
    TRANSIENT_SITES,
    ChaosSchedule,
    SimStep,
    load_repro,
    save_repro,
)
from repro.sim.shrink import ShrinkResult, shrink
from repro.sim.workload import QUERY_BATTERY, WORDS, make_object

__all__ = [
    "CRASH_SITES",
    "ChaosSchedule",
    "EXPECTED_CLIENT_ERRORS",
    "ModelArchive",
    "ObjectSpec",
    "QUERY_BATTERY",
    "REPRO_FORMAT",
    "ShrinkResult",
    "SimConfig",
    "SimResult",
    "SimStep",
    "SimWorld",
    "TRANSIENT_SITES",
    "Violation",
    "WORDS",
    "load_repro",
    "make_object",
    "replay_repro",
    "run_sim",
    "save_repro",
    "shrink",
]


def replay_repro(path) -> SimResult:
    """Re-run a repro file exactly as recorded."""
    config, schedule, _ = load_repro(path)
    return run_sim(schedule, SimConfig.from_dict(config))
