"""Seeded chaos schedules and the replayable repro-file format.

A :class:`ChaosSchedule` is a flat list of :class:`SimStep` s — client
operations interleaved with fault arming, node lifecycle events, and
quiescent points — generated deterministically from a seed.  Two
properties matter more than realism:

* **Replayability.**  Every random choice is materialized into the
  step's ``params`` at generation time (the token units of a store,
  the tear fraction of a torn write).  Replaying a schedule never
  consults a random source, so a repro file is bit-for-bit faithful.
* **Shrink stability.**  Steps reference their operands by a ``pick``
  index resolved against the *live candidate list at execution time*
  (``pick % len(candidates)``), not by absolute ids.  Dropping an
  earlier step changes the world, but a surviving step still resolves
  to *some* valid operand, so the greedy shrinker can delete steps
  freely without turning the rest of the schedule into no-ops.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.workload import WORDS

#: Format tag written into every repro file.
REPRO_FORMAT = "repro.sim/1"

#: Sites a ``transient`` chaos step may arm.  Device sites exercise the
#: read/write paths; ``archiver.store.*`` sites abort the commit
#: protocol at each of its phases (the torn-abort interval accounting
#: only shows up when stores fail *between* journal intent and seal);
#: recognition and cluster sites fail the corresponding fan-outs.
TRANSIENT_SITES = [
    "device.read",
    "device.write",
    "archiver.store.journal",
    "archiver.store.data",
    "archiver.store.descriptor",
    "archiver.store.seal",
    "archiver.recognize.journal",
    "archiver.recognize.apply",
    "archiver.recognize.seal",
    "cluster.node_crash",
    "cluster.replica_write",
    "cluster.migrate",
    "compress.decode",
]

#: Sites a ``crash_site`` chaos step may arm.  These kill the node's
#: process *deep inside* a commit protocol; the node boundary must
#: translate the death into a routable error and recovery must replay
#: the journal evidence.
CRASH_SITES = [
    "archiver.store.journal",
    "archiver.store.data",
    "archiver.store.descriptor",
    "archiver.store.seal",
    "archiver.recognize.journal",
    "archiver.recognize.apply",
    "archiver.recognize.seal",
    "cluster.node_crash",
    "cluster.replica_write",
    "cluster.migrate",
]

#: Step kinds in generation-weight order: (kind, weight).
_WEIGHTS = [
    ("store", 18),
    ("open", 13),
    ("search", 12),
    ("recognize", 9),
    ("browse", 7),
    ("transient", 8),
    ("torn_write", 5),
    ("crash_site", 5),
    ("crash_node", 6),
    ("recover_node", 4),
    ("join_node", 3),
    ("leave_node", 2),
    ("catch_up", 4),
    ("rebalance", 4),
    ("quiesce", 5),
]


@dataclass(frozen=True)
class SimStep:
    """One schedule entry: a client op, a chaos event, or a quiesce."""

    kind: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "SimStep":
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


def _units(rng: random.Random) -> list[list[str]]:
    """Token units for one stored object (1-2 segments, 1-3 words each)."""
    return [
        [rng.choice(WORDS) for _ in range(rng.randint(1, 3))]
        for _ in range(rng.randint(1, 2))
    ]


def _step(rng: random.Random, kind: str) -> SimStep:
    """Materialize one step of ``kind`` with all randomness resolved."""
    if kind == "store":
        media = "voice" if rng.random() < 0.4 else "text"
        return SimStep(kind, {"media": media, "units": _units(rng)})
    if kind == "recognize":
        return SimStep(kind, {"pick": rng.randrange(64)})
    if kind == "open":
        return SimStep(
            kind, {"pick": rng.randrange(64), "station": rng.randrange(4)}
        )
    if kind == "search":
        return SimStep(
            kind,
            {
                "pick": rng.randrange(64),
                "term": rng.choice(WORDS),
                "channel": rng.choice(["both", "text", "voice"]),
            },
        )
    if kind == "browse":
        return SimStep(
            kind, {"pick": rng.randrange(64), "station": rng.randrange(4)}
        )
    if kind == "crash_node":
        return SimStep(kind, {"pick": rng.randrange(64)})
    if kind == "recover_node":
        return SimStep(kind, {"pick": rng.randrange(64)})
    if kind == "join_node":
        return SimStep(kind, {})
    if kind == "leave_node":
        return SimStep(kind, {"pick": rng.randrange(64)})
    if kind == "torn_write":
        return SimStep(
            kind,
            {
                "pick": rng.randrange(64),
                "tear_fraction": round(rng.uniform(0.0, 0.9), 3),
                "then_crash": rng.random() < 0.3,
                "delay": rng.randrange(3),
            },
        )
    if kind == "transient":
        return SimStep(
            kind,
            {
                "pick": rng.randrange(64),
                "site": rng.choice(TRANSIENT_SITES),
                "count": rng.randint(1, 2),
                "delay": rng.randrange(3),
            },
        )
    if kind == "crash_site":
        return SimStep(
            kind,
            {
                "pick": rng.randrange(64),
                "site": rng.choice(CRASH_SITES),
                "delay": rng.randrange(3),
            },
        )
    if kind == "rebalance":
        return SimStep(kind, {"max_steps": rng.randint(1, 4)})
    if kind in ("catch_up", "quiesce"):
        return SimStep(kind, {})
    raise ValueError(f"unknown step kind {kind!r}")


class ChaosSchedule:
    """A seeded, replayable interleaving of client ops and chaos."""

    def __init__(self, seed: int, steps: list[SimStep]) -> None:
        self.seed = seed
        self.steps = list(steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @classmethod
    def generate(cls, seed: int, *, n_steps: int = 40) -> "ChaosSchedule":
        """The canonical schedule for ``seed``: same seed, same steps.

        The first two steps always store one text and one voice object
        so that opens, searches and recognitions drawn later have live
        operands; the harness appends an implicit final quiesce, so a
        schedule needs no trailing one.
        """
        rng = random.Random(seed)
        kinds = [kind for kind, _ in _WEIGHTS]
        weights = [weight for _, weight in _WEIGHTS]
        steps = [
            SimStep("store", {"media": "text", "units": _units(rng)}),
            SimStep("store", {"media": "voice", "units": _units(rng)}),
        ]
        while len(steps) < n_steps:
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            steps.append(_step(rng, kind))
        return cls(seed, steps)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        return cls(
            seed=int(data.get("seed", 0)),
            steps=[SimStep.from_dict(item) for item in data["steps"]],
        )


# ----------------------------------------------------------------------
# repro files
# ----------------------------------------------------------------------


def save_repro(
    path: str | Path,
    *,
    config: dict,
    schedule: ChaosSchedule,
    violation: dict | None = None,
) -> Path:
    """Write a replayable repro file for a (usually shrunk) schedule."""
    path = Path(path)
    payload = {
        "format": REPRO_FORMAT,
        "config": dict(config),
        "schedule": schedule.to_dict(),
    }
    if violation is not None:
        payload["violation"] = dict(violation)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_repro(path: str | Path) -> tuple[dict, ChaosSchedule, dict | None]:
    """Read a repro file back: ``(config, schedule, violation)``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={payload.get('format')!r})"
        )
    return (
        dict(payload["config"]),
        ChaosSchedule.from_dict(payload["schedule"]),
        payload.get("violation"),
    )
