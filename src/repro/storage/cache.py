"""Byte-budgeted LRU cache.

The server subsystem "provides access methods, scheduling, cashing,
version control" [sic].  This cache fronts the optical archiver with
magnetic-disk (or main-memory) speed for hot data pieces; the C-QUEUE
benchmark shows how it flattens the response-time curve under load.

The cache is thread-safe: many workstation sessions share one staging
cache through the concurrent server frontend, so every structural
operation and every statistics update happens under a lock.  Readers
who want coherent statistics must take a :meth:`CacheStats.snapshot`
rather than reading the mutable counters field by field.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import StorageError, TransientIOError
from repro.faults.registry import CACHE_PUT


@dataclass
class CacheStats:
    """Hit/miss counters.

    Counters mutate concurrently when the cache is shared between
    server worker threads; use :meth:`snapshot` to read a coherent
    point-in-time copy instead of reading fields one by one.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Inserts dropped by an injected transient fault (the entry simply
    #: stays uncached; a later lookup misses and refetches).
    put_failures: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_hit(self) -> None:
        """Count one cache hit (thread-safe)."""
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        """Count one cache miss (thread-safe)."""
        with self._lock:
            self.misses += 1

    def record_eviction(self) -> None:
        """Count one eviction (thread-safe)."""
        with self._lock:
            self.evictions += 1

    def record_put_failure(self) -> None:
        """Count one insert dropped by a transient fault (thread-safe)."""
        with self._lock:
            self.put_failures += 1

    def snapshot(self) -> "CacheStats":
        """A coherent point-in-time copy of all counters.

        Reading ``stats.hits`` and ``stats.misses`` as two separate
        attribute accesses can interleave with a concurrent increment
        and report a pair of values that never existed together; the
        snapshot copies all three counters under the lock.
        """
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                put_failures=self.put_failures,
            )

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses), read coherently."""
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (coherent under races)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used cache with a byte capacity.

    All operations are atomic with respect to each other: the cache is
    shared by every worker thread of the server frontend.
    """

    def __init__(self, capacity_bytes: int, fault_plan=None) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"cache capacity must be positive: {capacity_bytes}")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._used = 0
        self._fault_plan = fault_plan
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        with self._lock:
            return self._used

    @property
    def capacity_bytes(self) -> int:
        """Configured byte budget."""
        return self._capacity

    def keys(self) -> list[str]:
        """Cached keys in LRU-to-MRU order (a point-in-time copy)."""
        with self._lock:
            return list(self._entries)

    def get(self, key: str) -> bytes | None:
        """Look up ``key``, refreshing its recency.  None on miss."""
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.stats.record_miss()
                return None
            self._entries.move_to_end(key)
            self.stats.record_hit()
            return data

    def put(self, key: str, data: bytes) -> None:
        """Insert (or refresh) an entry, evicting LRU entries to fit.

        Entries larger than the whole cache are not cached at all —
        a multi-megabyte image should not wipe the cache to store
        something that will be evicted before reuse.

        A transient fault injected at the ``cache.put`` site drops the
        insert (counted in ``stats.put_failures``) without failing the
        caller: a cache population failure must never fail the read it
        was piggybacking on.  Injected crashes propagate.
        """
        if self._fault_plan is not None:
            try:
                self._fault_plan.fire(CACHE_PUT)
            except TransientIOError:
                self.stats.record_put_failure()
                return
        if len(data) > self._capacity:
            return
        with self._lock:
            if key in self._entries:
                self._used -= len(self._entries.pop(key))
            while self._used + len(data) > self._capacity and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._used -= len(evicted)
                self.stats.record_eviction()
            self._entries[key] = data
            self._used += len(data)

    def invalidate(self, key: str) -> None:
        """Drop an entry if present."""
        with self._lock:
            data = self._entries.pop(key, None)
            if data is not None:
                self._used -= len(data)

    def clear(self) -> None:
        """Drop everything (stats are preserved)."""
        with self._lock:
            self._entries.clear()
            self._used = 0
