"""Byte-budgeted LRU cache.

The server subsystem "provides access methods, scheduling, cashing,
version control" [sic].  This cache fronts the optical archiver with
magnetic-disk (or main-memory) speed for hot data pieces; the C-QUEUE
benchmark shows how it flattens the response-time curve under load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used cache with a byte capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise StorageError(f"cache capacity must be positive: {capacity_bytes}")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used

    @property
    def capacity_bytes(self) -> int:
        """Configured byte budget."""
        return self._capacity

    def get(self, key: str) -> bytes | None:
        """Look up ``key``, refreshing its recency.  None on miss."""
        data = self._entries.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return data

    def put(self, key: str, data: bytes) -> None:
        """Insert (or refresh) an entry, evicting LRU entries to fit.

        Entries larger than the whole cache are not cached at all —
        a multi-megabyte image should not wipe the cache to store
        something that will be evicted before reuse.
        """
        if len(data) > self._capacity:
            return
        if key in self._entries:
            self._used -= len(self._entries.pop(key))
        while self._used + len(data) > self._capacity and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= len(evicted)
            self.stats.evictions += 1
        self._entries[key] = data
        self._used += len(data)

    def invalidate(self, key: str) -> None:
        """Drop an entry if present."""
        data = self._entries.pop(key, None)
        if data is not None:
            self._used -= len(data)

    def clear(self) -> None:
        """Drop everything (stats are preserved)."""
        self._entries.clear()
        self._used = 0
