"""The optical disk: huge, slow to seek, write-once.

"Optical disks with huge storage capacities become reality.  They will
be appropriate for storing text, digitized voice and digitized images."
Mid-80s optical drives had second-class seek times and write-once
media; both properties matter — WORM makes version control append-only,
and the seek cost is what the magnetic cache and SCAN scheduling
mitigate in the C-QUEUE benchmark.
"""

from __future__ import annotations

from repro.errors import WriteOnceViolationError
from repro.storage.blockdev import DiskGeometry, Extent, SimulatedDisk

#: Default geometry: 1 GB platter, 150 ms max seek, 8.3 ms half
#: rotation, 1 MB/s sustained transfer — representative of late-80s
#: write-once optical drives.
OPTICAL_GEOMETRY = DiskGeometry(
    capacity_bytes=1_000_000_000,
    max_seek_s=0.150,
    rotational_latency_s=0.0166,
    transfer_bytes_per_s=1_000_000,
)


class OpticalDisk(SimulatedDisk):
    """A write-once (WORM) optical disk."""

    def __init__(
        self, geometry: DiskGeometry = OPTICAL_GEOMETRY, name: str = "optical"
    ) -> None:
        super().__init__(geometry, name=name)
        self._written: list[Extent] = []

    def _check_write_allowed(self, extent: Extent) -> None:
        for written in self._written:
            if extent.offset < written.end and written.offset < extent.end:
                raise WriteOnceViolationError(
                    f"{self.name}: extent {extent} overlaps written {written}"
                )

    def _write_at(self, extent: Extent, data: bytes) -> float:
        service = super()._write_at(extent, data)
        self._written.append(extent)
        return service
