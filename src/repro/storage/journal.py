"""Write-ahead journal on the magnetic disk.

The optical platter is write-once: a failed archive write can never be
erased, only abandoned.  The journal is what makes abandonment safe.
Every mutation of archive state follows the same commit protocol::

    journal BEGIN (intent, checksum)   -- magnetic disk
    data blocks                        -- optical platter
    descriptor / index publish         -- volatile tables
    journal SEAL                       -- magnetic disk

A record that is *sealed* is durable: recovery republishes it.  A
record that is *pending* is decided by evidence: if the platter bytes
named in the intent verify against the journaled checksum the write
completed and is rolled **forward**; otherwise it is rolled **back**
and the extent is accounted as dead (reclaimable) space.  A record
that is *aborted* was cleanly abandoned in-process (e.g. a torn write
detected immediately) and only contributes dead-extent accounting.

Framing: each record is one device append of ``MJRN ‖ length ‖ crc32 ‖
JSON payload``.  A torn journal append is detected by checksum and the
parser resynchronizes on the next magic marker, so one torn record
never hides the records appended after it.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from dataclasses import dataclass, field

from repro.errors import JournalError
from repro.storage.blockdev import DiskGeometry, Extent, SimulatedDisk
from repro.storage.magnetic import MagneticDisk

_MAGIC = b"MJRN"
_HEADER = struct.Struct(">4sII")  # magic, payload length, payload crc32

#: Geometry of the dedicated journal region: small and fast — journal
#: appends are tiny sequential writes on the magnetic disk.
JOURNAL_GEOMETRY = DiskGeometry(
    capacity_bytes=50_000_000,
    max_seek_s=0.028,
    rotational_latency_s=0.0083,
    transfer_bytes_per_s=1_800_000,
)

PENDING = "pending"
SEALED = "sealed"
ABORTED = "aborted"


@dataclass
class JournalEntry:
    """One logical transaction reconstructed by :meth:`Journal.replay`."""

    txid: int
    kind: str
    payload: dict
    status: str = PENDING


@dataclass
class ReplayResult:
    """Everything a replay learned from the journal device bytes."""

    entries: list[JournalEntry] = field(default_factory=list)
    records_read: int = 0
    torn_records_skipped: int = 0

    @property
    def torn_tail(self) -> bool:
        """Whether any record was damaged (torn append detected)."""
        return self.torn_records_skipped > 0


class Journal:
    """Append-only, checksum-framed record log on a rewritable disk.

    Parameters
    ----------
    device:
        Backing device; a dedicated :class:`MagneticDisk` region is
        created if omitted.  Pass the *same* device (or its
        :class:`~repro.faults.FaultyDevice` wrapper) when re-opening
        after a crash — the journal state is exactly its bytes.
    """

    def __init__(self, device: SimulatedDisk | None = None) -> None:
        self._device = device if device is not None else MagneticDisk(
            JOURNAL_GEOMETRY, name="journal"
        )
        self._lock = threading.RLock()
        # Resume txid numbering after whatever is already on the device.
        replay = self.replay()
        self._next_txid = 1 + max(
            (entry.txid for entry in replay.entries), default=0
        )

    @property
    def device(self) -> SimulatedDisk:
        """The backing device (hand it to :meth:`Journal` on reopen)."""
        return self._device

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _append_record(self, record: dict) -> None:
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
        self._device.append(frame)

    def begin(self, kind: str, payload: dict) -> int:
        """Journal the intent of a transaction; returns its txid.

        Raises
        ------
        JournalError
            On a reserved kind name.
        """
        if kind in (SEALED, ABORTED, "seal", "abort"):
            raise JournalError(f"reserved journal kind {kind!r}")
        with self._lock:
            txid = self._next_txid
            self._next_txid += 1
            self._append_record(
                {"txid": txid, "kind": kind, "payload": payload}
            )
            return txid

    def seal(self, txid: int) -> None:
        """Mark a transaction durable: recovery will republish it."""
        with self._lock:
            self._append_record({"txid": txid, "kind": "seal"})

    def abort(self, txid: int) -> None:
        """Mark a transaction cleanly abandoned."""
        with self._lock:
            self._append_record({"txid": txid, "kind": "abort"})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Reconstruct all transactions from device bytes alone.

        Torn records are skipped with resynchronization on the next
        magic marker; seal/abort markers are folded into their
        transaction's status.  Entries come back in txid order.
        """
        used = self._device.used_bytes
        if used == 0:
            return ReplayResult()
        data, _ = self._device.read(Extent(0, used))
        result = ReplayResult()
        by_txid: dict[int, JournalEntry] = {}
        statuses: dict[int, str] = {}
        offset = 0
        while offset + _HEADER.size <= len(data):
            magic, length, crc = _HEADER.unpack_from(data, offset)
            body_start = offset + _HEADER.size
            body = data[body_start : body_start + length]
            if (
                magic != _MAGIC
                or body_start + length > len(data)
                or zlib.crc32(body) != crc
            ):
                # Torn or garbage record: resynchronize on the next
                # magic marker after this offset.
                result.torn_records_skipped += 1
                next_magic = data.find(_MAGIC, offset + 1)
                if next_magic == -1:
                    break
                offset = next_magic
                continue
            offset = body_start + length
            result.records_read += 1
            try:
                record = json.loads(body.decode("utf-8"))
                txid = int(record["txid"])
                kind = str(record["kind"])
            except (ValueError, KeyError, UnicodeDecodeError):
                result.torn_records_skipped += 1
                continue
            if kind == "seal":
                statuses[txid] = SEALED
            elif kind == "abort":
                # A seal is final; an abort after a seal is ignored.
                statuses.setdefault(txid, ABORTED)
                if statuses[txid] != SEALED:
                    statuses[txid] = ABORTED
            else:
                by_txid[txid] = JournalEntry(
                    txid=txid, kind=kind, payload=record.get("payload", {})
                )
        for txid, entry in by_txid.items():
            entry.status = statuses.get(txid, PENDING)
        result.entries = [by_txid[txid] for txid in sorted(by_txid)]
        return result
