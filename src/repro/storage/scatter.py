"""Scatter-gather read planning over a simulated disk.

The presentation manager "requests the appropriate pieces of
information" — plural.  An open touches many small pieces of one
object, and paying a full seek + rotational latency per piece makes
the open time proportional to the *number* of requests instead of the
number of bytes.  A :class:`ScatterPlan` turns a list of requested
``(offset, length)`` ranges into an execution order that the device
serves cheaply:

1. ranges are sorted by offset and **coalesced** — overlapping or
   back-to-back ranges become one run, so adjacent pieces of a
   composition are read with a single seek and a single half-rotation;
2. candidate orders of the coalesced runs (ascending sweep, descending
   sweep, and the caller's original order as a fallback) are costed
   against the device geometry from the *current* head position, and
   the cheapest wins.

Because the original request order is always a candidate, a plan is
never more expensive than issuing the requests one by one — the
monotonicity invariant pinned by ``tests/test_property_scatter.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.blockdev import DiskGeometry, Extent


def coalesce_ranges(ranges: list[tuple[int, int]]) -> list[Extent]:
    """Merge overlapping/adjacent ``(offset, length)`` ranges into runs.

    The result is sorted by offset and pairwise disjoint with gaps
    (``run[i].end < run[i+1].offset``), so every input range is fully
    contained in exactly one run.

    Raises
    ------
    StorageError
        If any range has a negative offset or length.
    """
    extents = [Extent(offset, length) for offset, length in ranges]
    if not extents:
        return []
    extents.sort(key=lambda e: (e.offset, e.end))
    runs: list[Extent] = [extents[0]]
    for extent in extents[1:]:
        last = runs[-1]
        if extent.offset <= last.end:
            if extent.end > last.end:
                runs[-1] = Extent(last.offset, extent.end - last.offset)
        else:
            runs.append(extent)
    return runs


def predicted_service_s(
    head: int, reads: list[Extent], geometry: DiskGeometry
) -> float:
    """Simulated service time of issuing ``reads`` in order from ``head``."""
    total = 0.0
    position = head
    for extent in reads:
        total += geometry.access_time(position, extent)
        position = extent.end
    return total


@dataclass(frozen=True)
class ScatterPlan:
    """An execution order for a batch of range reads.

    Attributes
    ----------
    requested:
        The caller's ranges, in request order (what :func:`gather`
        slices the payloads back into).
    reads:
        The extents actually issued to the device, in execution order.
        Either coalesced sorted runs or (fallback) the requested
        extents verbatim.
    coalesced:
        Whether ``reads`` are merged runs (False means the verbatim
        fallback won the cost comparison).
    predicted_service_s:
        Modelled device time of the plan from the planning-time head
        position.
    """

    requested: tuple[Extent, ...]
    reads: tuple[Extent, ...]
    coalesced: bool
    predicted_service_s: float


def plan_scatter(
    ranges: list[tuple[int, int]], head: int, geometry: DiskGeometry
) -> ScatterPlan:
    """Choose the cheapest execution order for a batch of range reads.

    Candidates are the coalesced runs ascending, the coalesced runs
    descending, and the verbatim request order; ties prefer the
    coalesced ascending sweep.  Including the verbatim order guarantees
    the plan never costs more than piecewise reads in request order.
    """
    requested = tuple(Extent(offset, length) for offset, length in ranges)
    if not requested:
        return ScatterPlan(
            requested=(), reads=(), coalesced=True, predicted_service_s=0.0
        )
    runs = coalesce_ranges(ranges)
    ascending = list(runs)
    descending = list(reversed(runs))
    candidates: list[tuple[float, bool, list[Extent]]] = [
        (predicted_service_s(head, ascending, geometry), True, ascending),
        (predicted_service_s(head, descending, geometry), True, descending),
        (predicted_service_s(head, list(requested), geometry), False,
         list(requested)),
    ]
    cost, coalesced, reads = min(candidates, key=lambda c: c[0])
    return ScatterPlan(
        requested=requested,
        reads=tuple(reads),
        coalesced=coalesced,
        predicted_service_s=cost,
    )


def gather(plan: ScatterPlan, payloads: dict[Extent, bytes]) -> list[bytes]:
    """Slice run payloads back into the requested ranges, request order.

    ``payloads`` maps each extent of ``plan.reads`` to its bytes.

    Raises
    ------
    StorageError
        If a requested range is not covered by any read (cannot happen
        for plans produced by :func:`plan_scatter`).
    """
    if not plan.coalesced:
        return [payloads[extent] for extent in plan.requested]
    runs = sorted(plan.reads, key=lambda e: e.offset)
    results: list[bytes] = []
    for extent in plan.requested:
        run = _containing_run(runs, extent)
        data = payloads[run]
        start = extent.offset - run.offset
        results.append(data[start : start + extent.length])
    return results


def _containing_run(runs: list[Extent], extent: Extent) -> Extent:
    lo, hi = 0, len(runs) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        run = runs[mid]
        if extent.offset < run.offset:
            hi = mid - 1
        elif extent.offset > run.end:
            lo = mid + 1
        else:
            if extent.end > run.end:
                break
            return run
    raise StorageError(f"range {extent} not covered by any coalesced run")
