"""Storage substrate: simulated disks and caching.

"The multimedia object server subsystem is optical disk based and it
may also contain one or more high performance magnetic disks."  The
devices here are timing models over in-memory byte stores: each read
and write reports the simulated service time (seek + rotation +
transfer) so the queueing benchmarks can reproduce the paper's §5
performance concerns without physical 1986 hardware.
"""

from repro.storage.blockdev import DiskGeometry, Extent, SimulatedDisk
from repro.storage.optical import OpticalDisk
from repro.storage.magnetic import MagneticDisk
from repro.storage.cache import LRUCache
from repro.storage.scatter import (
    ScatterPlan,
    coalesce_ranges,
    gather,
    plan_scatter,
)

__all__ = [
    "DiskGeometry",
    "Extent",
    "LRUCache",
    "MagneticDisk",
    "OpticalDisk",
    "ScatterPlan",
    "SimulatedDisk",
    "coalesce_ranges",
    "gather",
    "plan_scatter",
]
