"""Simulated block devices with a seek/rotation/transfer timing model.

Service time for an access at byte offset ``o`` of length ``n``::

    seek(distance) + rotational_latency/2 + n / transfer_rate

where ``seek(d)`` grows with the square root of the head travel
distance, the classic disk-seek approximation: short hops are much
cheaper than full-stroke seeks.  Timing parameters are mid-1980s
figures; what matters for the benchmarks is the *ratio* between the
optical archiver and the magnetic cache, not absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AllocationError, StorageError


@dataclass(frozen=True, slots=True)
class Extent:
    """A contiguous byte range on a device."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise StorageError(f"invalid extent: {self}")

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.offset + self.length


@dataclass(frozen=True)
class DiskGeometry:
    """Timing and capacity parameters of a device."""

    capacity_bytes: int
    max_seek_s: float
    rotational_latency_s: float
    transfer_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageError(f"capacity must be positive: {self.capacity_bytes}")
        if self.transfer_bytes_per_s <= 0:
            raise StorageError("transfer rate must be positive")

    def seek_time(self, from_offset: int, to_offset: int) -> float:
        """Head travel time between two byte offsets."""
        distance = abs(to_offset - from_offset)
        if distance == 0:
            return 0.0
        fraction = min(distance / self.capacity_bytes, 1.0)
        return self.max_seek_s * math.sqrt(fraction)

    def access_time(self, from_offset: int, extent: Extent) -> float:
        """Total service time for one access."""
        return (
            self.seek_time(from_offset, extent.offset)
            + self.rotational_latency_s / 2
            + extent.length / self.transfer_bytes_per_s
        )


@dataclass
class DiskStats:
    """Accumulated device statistics."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time_s: float = 0.0
    #: Raw (pre-compression) media bytes archived onto this device, and
    #: the stored (framed) bytes they became.  Advanced by
    #: :meth:`repro.server.archiver.Archiver.store`; equal when
    #: compression is off.
    media_raw_bytes: int = 0
    media_stored_bytes: int = 0

    @property
    def media_ratio(self) -> float:
        """Raw/stored media byte ratio (1.0 when nothing was archived)."""
        if not self.media_stored_bytes:
            return 1.0
        return self.media_raw_bytes / self.media_stored_bytes


class SimulatedDisk:
    """A byte-addressable device with simulated service times.

    Subclasses set the geometry and may restrict writes (WORM).  The
    device keeps a head position so consecutive nearby accesses are
    cheaper than random ones — which is what gives SCAN scheduling its
    advantage in the C-QUEUE benchmark.
    """

    def __init__(self, geometry: DiskGeometry, name: str = "disk") -> None:
        self._geometry = geometry
        self._name = name
        self._data = bytearray()
        self._head = 0
        self.stats = DiskStats()

    @property
    def name(self) -> str:
        """Device name, for traces."""
        return self._name

    @property
    def geometry(self) -> DiskGeometry:
        """Timing/capacity parameters."""
        return self._geometry

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return len(self._data)

    @property
    def head_position(self) -> int:
        """Current head byte offset (for scheduling)."""
        return self._head

    # ------------------------------------------------------------------
    # allocation and I/O
    # ------------------------------------------------------------------

    def allocate(self, length: int) -> Extent:
        """Reserve ``length`` bytes at the end of the device.

        Raises
        ------
        AllocationError
            If the device is full.
        """
        if length < 0:
            raise StorageError(f"cannot allocate negative length {length}")
        if len(self._data) + length > self._geometry.capacity_bytes:
            raise AllocationError(
                f"{self._name}: {length} bytes requested, "
                f"{self._geometry.capacity_bytes - len(self._data)} free"
            )
        extent = Extent(len(self._data), length)
        self._data.extend(b"\x00" * length)
        return extent

    def append(self, data: bytes) -> tuple[Extent, float]:
        """Allocate-and-write at the end; returns extent and service time."""
        extent = self.allocate(len(data))
        service = self._write_at(extent, data)
        return extent, service

    def write(self, extent: Extent, data: bytes) -> float:
        """Write into an allocated extent; returns service time.

        Raises
        ------
        StorageError
            If the data does not fit the extent or the extent is not
            allocated.
        """
        if len(data) != extent.length:
            raise StorageError(
                f"data length {len(data)} does not match extent {extent}"
            )
        if extent.end > len(self._data):
            raise StorageError(f"extent {extent} not allocated on {self._name}")
        self._check_write_allowed(extent)
        return self._write_at(extent, data)

    def read(self, extent: Extent) -> tuple[bytes, float]:
        """Read an extent; returns the bytes and the service time."""
        if extent.end > len(self._data):
            raise StorageError(f"extent {extent} not allocated on {self._name}")
        service = self._geometry.access_time(self._head, extent)
        self._head = extent.end
        self.stats.reads += 1
        self.stats.bytes_read += extent.length
        self.stats.busy_time_s += service
        return bytes(self._data[extent.offset : extent.end]), service

    def service_time(self, extent: Extent) -> float:
        """Service time a read of ``extent`` would take *now* (no I/O)."""
        return self._geometry.access_time(self._head, extent)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def _check_write_allowed(self, extent: Extent) -> None:
        """Subclass hook; WORM devices reject rewrites here."""

    def _write_at(self, extent: Extent, data: bytes) -> float:
        service = self._geometry.access_time(self._head, extent)
        self._data[extent.offset : extent.end] = data
        self._head = extent.end
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        self.stats.busy_time_s += service
        return service
