"""The magnetic disk: smaller, faster, rewritable.

Used by the server subsystem as a staging/cache device in front of the
optical archiver ("one or more high performance magnetic disks"), and
by workstations for objects in the editing state.
"""

from __future__ import annotations

from repro.storage.blockdev import DiskGeometry, SimulatedDisk

#: Default geometry: 300 MB, 28 ms max seek, 4.2 ms half rotation,
#: 1.8 MB/s transfer — a high-end mid-80s Winchester drive.
MAGNETIC_GEOMETRY = DiskGeometry(
    capacity_bytes=300_000_000,
    max_seek_s=0.028,
    rotational_latency_s=0.0083,
    transfer_bytes_per_s=1_800_000,
)


class MagneticDisk(SimulatedDisk):
    """A conventional rewritable disk."""

    def __init__(
        self, geometry: DiskGeometry = MAGNETIC_GEOMETRY, name: str = "magnetic"
    ) -> None:
        super().__init__(geometry, name=name)
