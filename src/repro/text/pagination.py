"""Visual pages.

"The presentation form of text is subdivided into text pages.  A text
page is all the text information which is presented at the same time at
the screen of the workstation.  Often text is intermixed with images in
the same page.  We call these generic pages visual pages."

The paginator packs formatted lines and embedded images into pages of a
fixed line height.  An optional *reserved top region* supports pinned
visual logical messages (Figures 3-4): the related text flows through
the remaining lower region page after page while the message stays put.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PaginationError
from repro.text.formatter import FormattedLine, LineKind


class PageElementKind(enum.Enum):
    """What occupies a vertical slice of a visual page."""

    LINE = "line"
    IMAGE = "image"


@dataclass
class PageElement:
    """One vertical slice of a page: a line of text or an image region."""

    kind: PageElementKind
    line: FormattedLine | None = None
    image_tag: str = ""
    height_lines: int = 1


@dataclass
class VisualPage:
    """One visual page of the presentation form.

    ``char_start``/``char_end`` delimit the plain-text span shown on
    this page (for mapping search hits and logical units to pages);
    ``image_tags`` lists the embedded images.
    """

    number: int
    elements: list[PageElement] = field(default_factory=list)
    char_start: int = 0
    char_end: int = 0
    image_tags: list[str] = field(default_factory=list)

    @property
    def height_lines(self) -> int:
        """Occupied height, in lines."""
        return sum(e.height_lines for e in self.elements)

    def rendered_text(self) -> str:
        """The page's text content, one string per line, joined."""
        parts: list[str] = []
        for element in self.elements:
            if element.kind is PageElementKind.LINE and element.line is not None:
                parts.append(element.line.text)
            else:
                parts.append(f"[image {element.image_tag}]")
        return "\n".join(parts)


class Paginator:
    """Packs formatted lines into visual pages.

    Parameters
    ----------
    page_height:
        Usable height of a page, in lines.
    image_lines:
        Callable mapping an image tag to the number of lines its
        region occupies (defaults to 12 for every image).
    """

    def __init__(
        self,
        page_height: int = 40,
        image_lines: Callable[[str], int] | None = None,
    ) -> None:
        if page_height < 4:
            raise PaginationError(f"page height too small: {page_height}")
        self._page_height = page_height
        self._image_lines = image_lines or (lambda _tag: 12)

    @property
    def page_height(self) -> int:
        """Usable page height in lines."""
        return self._page_height

    def paginate(
        self, lines: list[FormattedLine], reserved_top: int = 0
    ) -> list[VisualPage]:
        """Build the page sequence.

        ``reserved_top`` shrinks every page by that many lines, for a
        pinned visual logical message occupying the top region.

        Raises
        ------
        PaginationError
            If the reservation leaves no room, or an image is taller
            than a whole page.
        """
        usable = self._page_height - reserved_top
        if usable < 2:
            raise PaginationError(
                f"reserved top region of {reserved_top} lines leaves no room "
                f"on a {self._page_height}-line page"
            )
        pages: list[VisualPage] = []
        current = VisualPage(number=1)
        used = 0
        char_min: int | None = None
        char_max: int | None = None

        def close_page() -> None:
            nonlocal current, used, char_min, char_max
            current.char_start = char_min if char_min is not None else 0
            current.char_end = char_max if char_max is not None else current.char_start
            pages.append(current)
            current = VisualPage(number=len(pages) + 1)
            used = 0
            char_min = char_max = None

        for line in lines:
            height = (
                self._image_lines(line.image_tag)
                if line.kind is LineKind.IMAGE
                else 1
            )
            if line.kind is LineKind.IMAGE and height > usable:
                raise PaginationError(
                    f"image {line.image_tag!r} needs {height} lines but pages "
                    f"have only {usable}"
                )
            if used + height > usable:
                close_page()
            if line.kind is LineKind.BLANK and used == 0:
                continue  # never start a page with a blank line
            if line.kind is LineKind.IMAGE:
                current.elements.append(
                    PageElement(
                        PageElementKind.IMAGE,
                        image_tag=line.image_tag,
                        height_lines=height,
                    )
                )
                current.image_tags.append(line.image_tag)
            else:
                current.elements.append(PageElement(PageElementKind.LINE, line=line))
                if line.end > line.start:
                    char_min = line.start if char_min is None else min(char_min, line.start)
                    char_max = line.end if char_max is None else max(char_max, line.end)
            used += height
        if current.elements:
            close_page()
        if not pages:
            pages.append(VisualPage(number=1))
        return pages


class PageMap:
    """Maps plain-text character offsets to page numbers."""

    def __init__(self, pages: list[VisualPage]) -> None:
        self._pages = pages
        self._boundaries = [p.char_start for p in pages]

    def page_for_offset(self, offset: int) -> int:
        """The 1-based number of the page showing character ``offset``.

        Offsets between pages (markup consumed by formatting) map to
        the page whose span begins at or before them.
        """
        if not self._pages:
            raise PaginationError("empty page list")
        i = bisect_right(self._boundaries, offset) - 1
        if i < 0:
            return 1
        # Prefer the page that actually covers the offset.
        while i + 1 < len(self._pages) and self._pages[i].char_end <= offset:
            if self._pages[i + 1].char_start <= offset:
                i += 1
            else:
                break
        return self._pages[i].number
