"""Pattern matching over text — and, symmetrically, recognized voice.

"The third type of browsing on text and voice information is based on
pattern matching.  A user types a text pattern or speaks a voice
pattern which is recognized, and the system returns the next page with
the occurrence of this pattern in the object's text or voice."

The index here is the *same access method* for both media: it maps
terms to positions, where a position is a character offset for text and
a second offset for recognized voice.  Phrase patterns match positions
of consecutive terms.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from collections import defaultdict

from repro.errors import QueryError

_TOKEN = re.compile(r"[\w'-]+")


def tokenize(text: str) -> list[tuple[str, int]]:
    """Lowercased word tokens of ``text`` with their character offsets."""
    return [(m.group(0).lower(), m.start()) for m in _TOKEN.finditer(text)]


class TextSearchIndex:
    """An inverted index over (term, position) pairs.

    Positions may be character offsets (text) or times in seconds
    (recognized voice); the index only requires that they order the
    occurrences.
    """

    def __init__(self, postings: dict[str, list[float]]) -> None:
        self._postings: dict[str, list[float]] = {
            term: sorted(positions) for term, positions in postings.items()
        }
        self._sequence = sorted(
            (position, term)
            for term, positions in self._postings.items()
            for position in positions
        )

    @classmethod
    def from_text(cls, text: str) -> "TextSearchIndex":
        """Index a plain-text string by character offset."""
        postings: dict[str, list[float]] = defaultdict(list)
        for term, offset in tokenize(text):
            postings[term].append(float(offset))
        return cls(dict(postings))

    @classmethod
    def from_utterances(cls, utterances) -> "TextSearchIndex":
        """Index recognized utterances by time offset.

        Accepts any iterable of objects with ``term`` and ``time``
        attributes (:class:`repro.audio.recognition.RecognizedUtterance`).
        """
        postings: dict[str, list[float]] = defaultdict(list)
        for utterance in utterances:
            postings[utterance.term.lower()].append(float(utterance.time))
        return cls(dict(postings))

    def __len__(self) -> int:
        return len(self._sequence)

    @property
    def vocabulary(self) -> set[str]:
        """All indexed terms."""
        return set(self._postings)

    def occurrences(self, pattern: str) -> list[float]:
        """All positions where ``pattern`` occurs.

        Single-word patterns return the term's postings.  Multi-word
        patterns match consecutive indexed terms and return the
        position of the first word of each match.

        Raises
        ------
        QueryError
            If the pattern contains no searchable words.
        """
        terms = [t for t, _ in tokenize(pattern)]
        if not terms:
            raise QueryError(f"pattern {pattern!r} contains no words")
        if len(terms) == 1:
            return list(self._postings.get(terms[0], ()))
        return self._phrase_occurrences(terms)

    def _phrase_occurrences(self, terms: list[str]) -> list[float]:
        if any(term not in self._postings for term in terms):
            return []
        sequence_terms = [term for _, term in self._sequence]
        positions = [position for position, _ in self._sequence]
        n = len(terms)
        hits: list[float] = []
        for i in range(len(sequence_terms) - n + 1):
            if sequence_terms[i : i + n] == terms:
                hits.append(positions[i])
        return hits

    def next_occurrence(self, pattern: str, after: float) -> float | None:
        """First occurrence of ``pattern`` strictly after position ``after``.

        This backs the browsing command "return the next page with the
        occurrence of this pattern".
        """
        occurrences = self.occurrences(pattern)
        i = bisect_right(occurrences, after)
        if i >= len(occurrences):
            return None
        return occurrences[i]

    def count(self, pattern: str) -> int:
        """Number of occurrences of ``pattern``."""
        return len(self.occurrences(pattern))
