"""Text substrate: declarative markup, formatting, pagination, search.

"MINOS supports text presentation facilities similar to those that are
provided by text formatters" — character emphasis, paragraphing,
indenting — driven by a declarative tag language in the spirit of
Scribe/TeX-era formatters (the paper cites Reid's Scribe and Knuth's
TeX).  The same tags that format the text also identify its logical
components, which is where the logical browsing menu comes from.
"""

from repro.text.markup import (
    Block,
    BlockKind,
    Document,
    StyledRun,
    TextStyle,
    parse_markup,
)
from repro.text.formatter import FormattedLine, TextFormatter
from repro.text.pagination import PageElement, Paginator, VisualPage
from repro.text.search import TextSearchIndex, tokenize

__all__ = [
    "Block",
    "BlockKind",
    "Document",
    "FormattedLine",
    "PageElement",
    "Paginator",
    "StyledRun",
    "TextFormatter",
    "TextSearchIndex",
    "TextStyle",
    "VisualPage",
    "parse_markup",
    "tokenize",
]
