"""The text formatting engine: documents to styled, wrapped lines.

Presentation facilities "similar to those that are provided by text
formatters": word wrap at a fixed character width, paragraph indent,
centred titles, emphasised headings.  Every formatted line remembers
the plain-text span it covers, which is how pattern-search hits and
logical-unit starts are later mapped to page numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PaginationError
from repro.text.markup import Block, BlockKind, Document, StyledRun, TextStyle


class LineKind(enum.Enum):
    """What a formatted line contains."""

    TEXT = "text"
    TITLE = "title"
    HEADING = "heading"
    BLANK = "blank"
    IMAGE = "image"


@dataclass
class FormattedLine:
    """One line of the presentation form.

    Attributes
    ----------
    kind:
        Line classification.
    text:
        The rendered characters (including indent), empty for blank and
        image lines.
    runs:
        The styled runs making up the text, for display fidelity.
    start, end:
        The plain-text character span this line covers (``start == end``
        for lines not derived from document text).
    image_tag:
        For IMAGE lines, the data tag of the embedded image.
    """

    kind: LineKind
    text: str = ""
    runs: list[StyledRun] = field(default_factory=list)
    start: int = 0
    end: int = 0
    image_tag: str = ""


class TextFormatter:
    """Formats a parsed document into lines of a fixed character width."""

    def __init__(self, width: int = 72) -> None:
        if width < 16:
            raise PaginationError(f"formatting width too small: {width}")
        self._width = width

    @property
    def width(self) -> int:
        """Line width in characters."""
        return self._width

    def format(self, document: Document) -> list[FormattedLine]:
        """Render every block of ``document`` into formatted lines."""
        lines: list[FormattedLine] = []
        indent = 0
        for block in document.blocks:
            if block.kind is BlockKind.INDENT:
                indent = int(block.argument)
            elif block.kind is BlockKind.TITLE:
                lines.extend(self._title_lines(block))
            elif block.kind in (BlockKind.CHAPTER, BlockKind.SECTION):
                lines.extend(self._heading_lines(block))
            elif block.kind is BlockKind.PARAGRAPH:
                lines.extend(self._paragraph_lines(block, indent))
                lines.append(FormattedLine(LineKind.BLANK, start=block.end, end=block.end))
            elif block.kind is BlockKind.IMAGE:
                lines.append(
                    FormattedLine(
                        LineKind.IMAGE,
                        image_tag=block.argument,
                        start=block.start,
                        end=block.start,
                    )
                )
            elif block.kind in (BlockKind.ABSTRACT_START, BlockKind.REFERENCES_START):
                label = (
                    "ABSTRACT"
                    if block.kind is BlockKind.ABSTRACT_START
                    else "REFERENCES"
                )
                lines.append(
                    FormattedLine(
                        LineKind.HEADING,
                        text=label,
                        start=block.start,
                        end=block.start,
                    )
                )
                lines.append(
                    FormattedLine(LineKind.BLANK, start=block.start, end=block.start)
                )
        # Trim a trailing blank line so documents end crisply.
        while lines and lines[-1].kind is LineKind.BLANK:
            lines.pop()
        return lines

    # ------------------------------------------------------------------
    # block renderers
    # ------------------------------------------------------------------

    def _title_lines(self, block: Block) -> list[FormattedLine]:
        text = block.text.strip()
        centred = text.center(self._width).rstrip()
        return [
            FormattedLine(
                LineKind.TITLE,
                text=centred,
                runs=list(block.runs),
                start=block.start,
                end=block.end,
            ),
            FormattedLine(LineKind.BLANK, start=block.end, end=block.end),
        ]

    def _heading_lines(self, block: Block) -> list[FormattedLine]:
        prefix = "" if block.kind is BlockKind.CHAPTER else "  "
        return [
            FormattedLine(LineKind.BLANK, start=block.start, end=block.start),
            FormattedLine(
                LineKind.HEADING,
                text=prefix + block.text.strip(),
                runs=list(block.runs),
                start=block.start,
                end=block.end,
            ),
            FormattedLine(LineKind.BLANK, start=block.end, end=block.end),
        ]

    def _paragraph_lines(self, block: Block, indent: int) -> list[FormattedLine]:
        """Word-wrap a paragraph, tracking plain-text offsets per line."""
        words = _words_with_offsets(block)
        if not words:
            return []
        pad = " " * indent
        usable = self._width - indent
        lines: list[FormattedLine] = []
        current: list[tuple[str, int, TextStyle]] = []
        current_len = 0
        for word, offset, style in words:
            extra = len(word) + (1 if current else 0)
            if current and current_len + extra > usable:
                lines.append(_assemble_line(current, pad))
                current, current_len = [], 0
                extra = len(word)
            current.append((word, offset, style))
            current_len += extra
        if current:
            lines.append(_assemble_line(current, pad))
        return lines


def _words_with_offsets(block: Block) -> list[tuple[str, int, TextStyle]]:
    """Split a block's runs into words, keeping offset and style."""
    words: list[tuple[str, int, TextStyle]] = []
    for run in block.runs:
        position = 0
        text = run.text
        while position < len(text):
            while position < len(text) and text[position] == " ":
                position += 1
            start = position
            while position < len(text) and text[position] != " ":
                position += 1
            if position > start:
                words.append((text[start:position], run.offset + start, run.style))
    return words


def _assemble_line(
    words: list[tuple[str, int, TextStyle]], pad: str
) -> FormattedLine:
    text = pad + " ".join(w for w, _, _ in words)
    runs = [
        StyledRun(text=word, style=style, offset=offset)
        for word, offset, style in words
    ]
    start = words[0][1]
    end = words[-1][1] + len(words[-1][0])
    return FormattedLine(LineKind.TEXT, text=text, runs=runs, start=start, end=end)
