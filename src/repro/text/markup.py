"""The declarative markup language of MINOS text segments.

Structural directives live on their own line:

* ``@title{...}`` — object title
* ``@abstract`` — abstract until the next structural directive
* ``@chapter{...}`` / ``@section{...}`` — numbered structure
* ``@references`` — reference list until end of segment
* ``@image{tag}`` — embed the image with that data tag at this point
* ``@indent{n}`` — set paragraph indent (in spaces) from here on

Blank lines separate paragraphs.  Inline emphasis uses the conventions
the paper lists for text ("underlined words, tilted words, bold tones"):
``**bold**``, ``*italic*`` and ``_underline_``.

Parsing yields a :class:`Document`: a list of typed blocks, the
tag-free *plain text* (the offset space shared by anchors, search and
pagination), and a :class:`~repro.objects.logical.LogicalIndex` built
from the structural tags.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import MarkupError
from repro.objects.logical import LogicalIndex, LogicalUnit, LogicalUnitKind


class TextStyle(enum.Flag):
    """Inline character emphasis."""

    PLAIN = 0
    BOLD = enum.auto()
    ITALIC = enum.auto()
    UNDERLINE = enum.auto()


@dataclass(frozen=True, slots=True)
class StyledRun:
    """A run of characters sharing one style.

    ``offset`` is the run's start in the document's plain text.
    """

    text: str
    style: TextStyle
    offset: int


class BlockKind(enum.Enum):
    """Kinds of top-level block."""

    TITLE = "title"
    ABSTRACT_START = "abstract_start"
    CHAPTER = "chapter"
    SECTION = "section"
    REFERENCES_START = "references_start"
    PARAGRAPH = "paragraph"
    IMAGE = "image"
    INDENT = "indent"


@dataclass
class Block:
    """One parsed block.

    For headings and paragraphs, ``runs`` carries the styled content
    and ``start``/``end`` its plain-text span.  For ``IMAGE`` blocks,
    ``argument`` is the data tag.  For ``INDENT``, ``argument`` is the
    indent width.
    """

    kind: BlockKind
    runs: list[StyledRun] = field(default_factory=list)
    argument: str = ""
    start: int = 0
    end: int = 0

    @property
    def text(self) -> str:
        """Plain text of the block."""
        return "".join(run.text for run in self.runs)


_DIRECTIVE = re.compile(r"^@(\w+)(?:\{(.*)\})?\s*$")
_INLINE = re.compile(r"(\*\*[^*]+\*\*|\*[^*]+\*|_[^_]+_)")


@dataclass
class Document:
    """A parsed text segment."""

    blocks: list[Block]
    plain_text: str

    @cached_property
    def logical_index(self) -> LogicalIndex:
        """Logical structure derived from the structural directives."""
        return _build_logical_index(self.blocks, self.plain_text)

    def image_tags(self) -> list[str]:
        """Data tags of all embedded images, in order."""
        return [b.argument for b in self.blocks if b.kind is BlockKind.IMAGE]


def parse_markup(markup: str) -> Document:
    """Parse markup into a :class:`Document`.

    Raises
    ------
    MarkupError
        On unknown directives or malformed directive syntax.
    """
    blocks: list[Block] = []
    plain_parts: list[str] = []
    offset = 0

    def emit_text_block(kind: BlockKind, raw: str, argument: str = "") -> None:
        nonlocal offset
        runs, consumed = _parse_inline(raw, offset)
        block = Block(
            kind=kind,
            runs=runs,
            argument=argument,
            start=offset,
            end=offset + consumed,
        )
        blocks.append(block)
        plain_parts.append(block.text)
        plain_parts.append("\n")
        offset += consumed + 1  # the separating newline

    paragraph_lines: list[str] = []

    def flush_paragraph() -> None:
        if paragraph_lines:
            emit_text_block(BlockKind.PARAGRAPH, " ".join(paragraph_lines))
            paragraph_lines.clear()

    for line_no, line in enumerate(markup.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            flush_paragraph()
            continue
        if stripped.startswith("@"):
            match = _DIRECTIVE.match(stripped)
            if match is None:
                raise MarkupError(f"line {line_no}: malformed directive {stripped!r}")
            name, argument = match.group(1), match.group(2)
            flush_paragraph()
            if name == "title":
                _require_argument(name, argument, line_no)
                emit_text_block(BlockKind.TITLE, argument)
            elif name == "chapter":
                _require_argument(name, argument, line_no)
                emit_text_block(BlockKind.CHAPTER, argument)
            elif name == "section":
                _require_argument(name, argument, line_no)
                emit_text_block(BlockKind.SECTION, argument)
            elif name == "abstract":
                blocks.append(Block(kind=BlockKind.ABSTRACT_START, start=offset, end=offset))
            elif name == "references":
                blocks.append(
                    Block(kind=BlockKind.REFERENCES_START, start=offset, end=offset)
                )
            elif name == "image":
                _require_argument(name, argument, line_no)
                blocks.append(
                    Block(
                        kind=BlockKind.IMAGE,
                        argument=argument,
                        start=offset,
                        end=offset,
                    )
                )
            elif name == "indent":
                _require_argument(name, argument, line_no)
                if not argument.isdigit():
                    raise MarkupError(
                        f"line {line_no}: @indent needs a number, got {argument!r}"
                    )
                blocks.append(
                    Block(
                        kind=BlockKind.INDENT,
                        argument=argument,
                        start=offset,
                        end=offset,
                    )
                )
            else:
                raise MarkupError(f"line {line_no}: unknown directive @{name}")
        else:
            paragraph_lines.append(stripped)
    flush_paragraph()

    return Document(blocks=blocks, plain_text="".join(plain_parts))


def _require_argument(name: str, argument: str | None, line_no: int) -> None:
    if argument is None or argument == "":
        raise MarkupError(f"line {line_no}: @{name} requires an argument in braces")


def _parse_inline(raw: str, base_offset: int) -> tuple[list[StyledRun], int]:
    """Split inline emphasis markers into styled runs.

    Returns the runs and the plain-text length consumed.
    """
    runs: list[StyledRun] = []
    offset = base_offset
    for piece in _INLINE.split(raw):
        if not piece:
            continue
        if piece.startswith("**") and piece.endswith("**") and len(piece) > 4:
            text, style = piece[2:-2], TextStyle.BOLD
        elif piece.startswith("*") and piece.endswith("*") and len(piece) > 2:
            text, style = piece[1:-1], TextStyle.ITALIC
        elif piece.startswith("_") and piece.endswith("_") and len(piece) > 2:
            text, style = piece[1:-1], TextStyle.UNDERLINE
        else:
            text, style = piece, TextStyle.PLAIN
        runs.append(StyledRun(text=text, style=style, offset=offset))
        offset += len(text)
    return runs, offset - base_offset


def _build_logical_index(blocks: list[Block], plain_text: str) -> LogicalIndex:
    """Derive the logical-unit forest from structural blocks.

    Chapters span to the next chapter (or end); sections to the next
    section/chapter; paragraphs/sentences/words are leaves within them.
    """
    total = len(plain_text)
    roots: list[LogicalUnit] = []
    chapter: LogicalUnit | None = None
    section: LogicalUnit | None = None
    in_abstract = False
    abstract: LogicalUnit | None = None
    references: LogicalUnit | None = None

    def close(unit: LogicalUnit | None, end: float) -> None:
        if unit is not None:
            unit.end = end

    for block in blocks:
        if block.kind is BlockKind.TITLE:
            roots.append(
                LogicalUnit(LogicalUnitKind.TITLE, block.start, block.end, block.text)
            )
        elif block.kind is BlockKind.ABSTRACT_START:
            in_abstract = True
            abstract = LogicalUnit(
                LogicalUnitKind.ABSTRACT, block.start, block.start, "abstract"
            )
            roots.append(abstract)
        elif block.kind is BlockKind.REFERENCES_START:
            in_abstract = False
            close(abstract, block.start)
            close(section, block.start)
            close(chapter, block.start)
            section = chapter = None
            references = LogicalUnit(
                LogicalUnitKind.REFERENCES, block.start, total, "references"
            )
            roots.append(references)
        elif block.kind is BlockKind.CHAPTER:
            in_abstract = False
            close(abstract, block.start)
            close(section, block.start)
            close(chapter, block.start)
            section = None
            chapter = LogicalUnit(
                LogicalUnitKind.CHAPTER, block.start, total, block.text
            )
            roots.append(chapter)
        elif block.kind is BlockKind.SECTION:
            close(section, block.start)
            section = LogicalUnit(
                LogicalUnitKind.SECTION, block.start, total, block.text
            )
            if chapter is not None:
                chapter.children.append(section)
            else:
                roots.append(section)
        elif block.kind is BlockKind.PARAGRAPH:
            paragraph = LogicalUnit(
                LogicalUnitKind.PARAGRAPH, block.start, block.end, ""
            )
            paragraph.children.extend(_sentence_units(block))
            if in_abstract and abstract is not None:
                abstract.children.append(paragraph)
                abstract.end = block.end
            elif references is not None:
                references.children.append(paragraph)
            elif section is not None:
                section.children.append(paragraph)
            elif chapter is not None:
                chapter.children.append(paragraph)
            else:
                roots.append(paragraph)
    return LogicalIndex(roots)


_SENTENCE_SPLIT = re.compile(r"[^.!?]+[.!?]?")
_WORD = re.compile(r"[\w'-]+")


def _sentence_units(block: Block) -> list[LogicalUnit]:
    text = block.text
    sentences: list[LogicalUnit] = []
    for match in _SENTENCE_SPLIT.finditer(text):
        raw = match.group(0)
        if not raw.strip():
            continue
        s_start = block.start + match.start()
        s_end = block.start + match.end()
        sentence = LogicalUnit(LogicalUnitKind.SENTENCE, s_start, s_end, "")
        for word in _WORD.finditer(raw):
            sentence.children.append(
                LogicalUnit(
                    LogicalUnitKind.WORD,
                    s_start + word.start(),
                    s_start + word.end(),
                    word.group(0),
                )
            )
        sentences.append(sentence)
    return sentences
