"""The visual-mode browsing session.

Implements every Section-2 primitive for visual mode objects: page
browsing, logical-unit browsing, pattern search, pinned visual logical
messages, voice logical messages on branch, transparency sets (both
display methods plus user-selected superimposition), overwrite pages,
process simulation, tours, label selection/highlighting, and views
(including views defined on representations, fetching only the window's
data from the server).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.browsing import BrowseCommand
from repro.core.compile import CompiledPage, PageKind, compile_visual_program
from repro.core.messages import ImagePosition, MessageEngine, Position, TextPosition
from repro.core.process_sim import run_simulation_group
from repro.core.tour import TourController
from repro.errors import BrowsingError, NavigationError, UnknownCommandError
from repro.ids import ImageId
from repro.images.bitmap import Bitmap
from repro.images.canvas import Canvas, render_image
from repro.images.geometry import Point, Rect
from repro.images.view import View
from repro.objects.anchors import ImageAnchor, TextAnchor
from repro.objects.logical import LogicalUnitKind
from repro.objects.model import DrivingMode, MultimediaObject
from repro.objects.presentation import TransparencyMode
from repro.text.search import TextSearchIndex
from repro.trace import EventKind
from repro.workstation.menus import Menu, MenuOption
from repro.workstation.station import Workstation

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.manager import PresentationManager

#: Logical-unit navigation commands and the unit kind they move over.
_UNIT_COMMANDS: dict[BrowseCommand, tuple[LogicalUnitKind, int]] = {
    BrowseCommand.NEXT_CHAPTER: (LogicalUnitKind.CHAPTER, +1),
    BrowseCommand.PREVIOUS_CHAPTER: (LogicalUnitKind.CHAPTER, -1),
    BrowseCommand.NEXT_SECTION: (LogicalUnitKind.SECTION, +1),
    BrowseCommand.PREVIOUS_SECTION: (LogicalUnitKind.SECTION, -1),
    BrowseCommand.NEXT_PARAGRAPH: (LogicalUnitKind.PARAGRAPH, +1),
    BrowseCommand.PREVIOUS_PARAGRAPH: (LogicalUnitKind.PARAGRAPH, -1),
}

ViewDataSource = Callable[[Rect], Bitmap]


class VisualSession:
    """Interactive browsing of one visual mode object.

    Parameters
    ----------
    obj:
        The (archived) multimedia object to present.
    workstation:
        Where to present it.
    manager:
        Optional owning manager; required for relevant-object
        navigation and for server-backed view retrieval.
    """

    def __init__(
        self,
        obj: MultimediaObject,
        workstation: Workstation,
        manager: "PresentationManager | None" = None,
    ) -> None:
        if obj.driving_mode is not DrivingMode.VISUAL:
            raise BrowsingError(
                f"object {obj.object_id} is audio-driven; open an AudioSession"
            )
        self._obj = obj
        self._ws = workstation
        self._manager = manager
        #: Simulated cost (disk service + network) of fetching this
        #: object; set by the presentation manager on session creation.
        self.open_cost_s = 0.0
        self._program = compile_visual_program(
            obj, page_height=workstation.screen.text_lines
        )
        self._messages = MessageEngine(obj)
        self._current: int = 0  # 0 = nothing displayed yet
        self._previous_position: Position = None
        # Fine-grained reading position inside the current page: page
        # navigation resets it to the page's first character; logical
        # and pattern navigation advance it to the target, so repeated
        # "next chapter" / "find again" keep moving forward.
        self._offset_cursor: float = 0.0
        self._search_indexes: dict = {}
        self._last_find: tuple[str, float] | None = None
        self._view: View | None = None
        self._sim_speed = 1.0
        self._tour_controller: TourController | None = None
        #: Voice relevances injected by the manager when this session
        #: presents a relevant object (played via NEXT_RELEVANT_VOICE).
        self.relevant_voice_queue: list = []
        #: Image relevances: polygons projected on top of the named
        #: images ("relevances to images are indicated by closed
        #: polygons displayed at the top of the image").
        self.relevance_regions: dict[ImageId, list] = {}
        #: Raster inherited from the parent object when this session
        #: presents a relevant object whose pages are transparencies
        #: superimposed on the parent's display (Figures 7-8).
        self.inherited_base: Bitmap | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def object(self) -> MultimediaObject:
        """The object being presented."""
        return self._obj

    @property
    def program(self):
        """The compiled page program."""
        return self._program

    @property
    def page_count(self) -> int:
        """Total pages of the presentation form."""
        return len(self._program)

    @property
    def current_page_number(self) -> int:
        """The displayed page's number (0 before :meth:`open`)."""
        return self._current

    @property
    def current_page(self) -> CompiledPage | None:
        """The displayed compiled page."""
        if self._current == 0:
            return None
        return self._program.page(self._current)

    @property
    def workstation(self) -> Workstation:
        """The workstation this session presents onto."""
        return self._ws

    @property
    def view(self) -> View | None:
        """The active image view, if one is defined."""
        return self._view

    # ------------------------------------------------------------------
    # menu
    # ------------------------------------------------------------------

    @property
    def menu(self) -> Menu:
        """The operations available right now.

        Derived from the object ("the presentation and browsing
        functions which are available for each multimedia object depend
        on the object itself") and from the current page.
        """
        options: list[MenuOption] = []

        def add(command: BrowseCommand, label: str) -> None:
            options.append(MenuOption(command=command.value, label=label))

        if self.page_count > 1:
            add(BrowseCommand.NEXT_PAGE, "next page")
            add(BrowseCommand.PREVIOUS_PAGE, "previous page")
            add(BrowseCommand.ADVANCE_PAGES, "advance n pages")
            add(BrowseCommand.GOTO_PAGE, "go to page")

        kinds = set()
        for segment in self._obj.text_segments:
            kinds |= segment.logical_index.kinds_present()
        for command, (kind, _direction) in _UNIT_COMMANDS.items():
            if kind in kinds:
                add(command, command.value.replace("_", " "))

        if self._obj.text_segments:
            add(BrowseCommand.FIND_PATTERN, "find pattern")

        if self._visible_indicator_dicts():
            add(BrowseCommand.SELECT_RELEVANT, "relevant object")
        if self._manager is not None and self._manager.in_relevant(self):
            add(BrowseCommand.RETURN_FROM_RELEVANT, "return from relevant object")
        if self.relevant_voice_queue:
            add(BrowseCommand.NEXT_RELEVANT_VOICE, "next related voice segment")

        page = self.current_page
        if page is not None:
            if page.kind is PageKind.TRANSPARENCY:
                add(BrowseCommand.SELECT_TRANSPARENCIES, "superimpose selected")
            if page.image_id is not None:
                image = self._obj.image(page.image_id)
                if image.labelled_objects():
                    add(BrowseCommand.SELECT_OBJECT, "select object")
                    add(BrowseCommand.HIGHLIGHT_LABELS, "highlight by label")
                if image.voice_labelled_objects():
                    add(BrowseCommand.PLAY_ALL_LABELS, "play all voice labels")
                add(BrowseCommand.DEFINE_VIEW, "define view")
                if self._view is not None:
                    add(BrowseCommand.MOVE_VIEW, "move view")
                    add(BrowseCommand.JUMP_VIEW, "jump view")
                    add(BrowseCommand.RESIZE_VIEW, "resize view")
                    add(BrowseCommand.TOGGLE_VOICE_OPTION, "toggle voice option")
            if page.kind is PageKind.TOUR:
                add(BrowseCommand.START_TOUR, "start tour")
                if self._tour_controller is not None:
                    add(BrowseCommand.INTERRUPT_TOUR, "interrupt tour")
            if page.kind is PageKind.SIM_STEP:
                add(BrowseCommand.RUN_SIMULATION, "run simulation")
                add(BrowseCommand.SET_SIMULATION_SPEED, "set simulation speed")
        return Menu(options)

    def execute(self, command: BrowseCommand, **kwargs):
        """Execute a menu command.

        Raises
        ------
        UnknownCommandError
            If the command is not on the current menu.
        """
        if command.value not in self.menu:
            raise UnknownCommandError(
                f"command {command.value!r} is not on the menu for page "
                f"{self._current}"
            )
        handler = {
            BrowseCommand.NEXT_PAGE: self.next_page,
            BrowseCommand.PREVIOUS_PAGE: self.previous_page,
            BrowseCommand.ADVANCE_PAGES: self.advance_pages,
            BrowseCommand.GOTO_PAGE: self.goto_page,
            BrowseCommand.FIND_PATTERN: self.find_pattern,
            BrowseCommand.SELECT_TRANSPARENCIES: self.select_transparencies,
            BrowseCommand.SELECT_OBJECT: self.select_object_at,
            BrowseCommand.HIGHLIGHT_LABELS: self.highlight_labels,
            BrowseCommand.PLAY_ALL_LABELS: self.play_all_labels,
            BrowseCommand.DEFINE_VIEW: self.define_view,
            BrowseCommand.MOVE_VIEW: self.move_view,
            BrowseCommand.JUMP_VIEW: self.jump_view,
            BrowseCommand.RESIZE_VIEW: self.resize_view,
            BrowseCommand.TOGGLE_VOICE_OPTION: self.toggle_voice_option,
            BrowseCommand.START_TOUR: self.start_tour,
            BrowseCommand.INTERRUPT_TOUR: self.interrupt_tour,
            BrowseCommand.RUN_SIMULATION: self.run_simulation,
            BrowseCommand.SET_SIMULATION_SPEED: self.set_simulation_speed,
            BrowseCommand.SELECT_RELEVANT: self._select_relevant,
            BrowseCommand.RETURN_FROM_RELEVANT: self._return_from_relevant,
            BrowseCommand.NEXT_RELEVANT_VOICE: self.next_relevant_voice,
        }.get(command)
        if handler is None:
            unit = _UNIT_COMMANDS.get(command)
            if unit is None:  # pragma: no cover - exhaustive command table
                raise UnknownCommandError(f"no handler for {command.value!r}")
            kind, direction = unit
            return self.goto_unit(kind, direction)
        self._ws.trace.record(
            self._ws.clock.now, EventKind.COMMAND, command=command.value
        )
        return handler(**kwargs)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render_screen(self, layout=None):
        """Render the current display as a character frame.

        The frame shows the page layout as the user saw it: the pinned
        visual message at the top, the flowing content below, and the
        menu options down the right-hand side (Figures 1-2).
        """
        from repro.workstation.framebuffer import render_frame

        page = self.current_page
        visual = page.visual if page is not None else None
        pinned = self._ws.screen.pinned
        return render_frame(
            visual,
            self.menu,
            pinned_text=pinned.text if pinned else "",
            pinned_image=bool(pinned and pinned.bitmap is not None),
            layout=layout,
        )

    # ------------------------------------------------------------------
    # page navigation
    # ------------------------------------------------------------------

    def open(self) -> None:
        """Display the first page."""
        self.goto_page(1)

    def next_page(self) -> int:
        """Move to the next page; returns the new page number."""
        return self.goto_page(min(self._current + 1, self.page_count))

    def previous_page(self) -> int:
        """Move to the previous page."""
        return self.goto_page(max(self._current - 1, 1))

    def advance_pages(self, count: int = 1) -> int:
        """Advance ``count`` pages forth (or back, when negative)."""
        target = min(max(self._current + count, 1), self.page_count)
        return self.goto_page(target)

    def goto_page(self, number: int) -> int:
        """Display page ``number``.

        Raises
        ------
        NavigationError
            If the page number is out of range.
        """
        if not 1 <= number <= self.page_count:
            raise NavigationError(
                f"page {number} out of range 1..{self.page_count}"
            )
        page = self._program.page(number)
        if (
            page.kind is PageKind.SIM_STEP
            and not self._inside_sim_group(page.sim_group)
        ):
            # Turning into a process simulation runs it automatically
            # ("displayed one after the other automatically").
            return self.run_simulation(group=page.sim_group)
        self._display(page)
        return self._current

    def _inside_sim_group(self, group: int | None) -> bool:
        current = self.current_page
        return (
            current is not None
            and current.kind is PageKind.SIM_STEP
            and current.sim_group == group
        )

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def _display(self, page: CompiledPage) -> None:
        previous = self._previous_position
        position = self._position_of(page)
        self._tour_controller = None
        self._view = None

        if page.kind is PageKind.TEXT:
            self._display_text_page(page, previous, position)
        elif page.kind is PageKind.IMAGE:
            bitmap = render_image(self._obj.image(page.image_id))
            self._ws.screen.unpin()
            self._ws.screen.show_image_page(
                page.number, bitmap, image_id=str(page.image_id)
            )
            self._project_relevance_regions(page.image_id)
        elif page.kind is PageKind.TRANSPARENCY:
            self._display_transparency(page)
        elif page.kind is PageKind.OVERWRITE:
            self._display_overwrite(page)
        elif page.kind is PageKind.SIM_STEP:
            self._display_sim_step(page)
        elif page.kind is PageKind.TOUR:
            bitmap = render_image(self._obj.image(page.image_id))
            self._ws.screen.unpin()
            self._ws.screen.show_image_page(
                page.number, bitmap, image_id=str(page.image_id), tour=True
            )

        self._current = page.number
        self._previous_position = position
        self._offset_cursor = float(page.char_span[0])

        # Voice logical messages fire on branch-into transitions.
        for message in self._messages.voice_messages_entering(previous, position):
            self._ws.audio.play_message(message.recording, str(message.message_id))

        self._ws.screen.show_indicators(self._visible_indicator_dicts())

    def _display_text_page(
        self, page: CompiledPage, previous: Position, position: Position
    ) -> None:
        assert page.visual is not None
        if page.pinned_message_id is not None:
            message = self._messages.visual_message_to_pin(
                page.pinned_message_id, previous, position
            )
            if message is not None:
                bitmap = None
                if message.content.image_ids:
                    bitmap = render_image(
                        self._obj.image(message.content.image_ids[0])
                    )
                self._ws.screen.pin(
                    str(message.message_id),
                    text=message.content.text,
                    bitmap=bitmap,
                )
            else:
                self._ws.screen.unpin()
        else:
            self._ws.screen.unpin()
        self._ws.screen.show_page(page.number, page.visual.rendered_text())

    def _display_transparency(self, page: CompiledPage) -> None:
        base = self._base_composite_before(page)
        self._ws.screen.reset_composite(base)
        members = self._transparency_members(page.transparency_group)
        if page.transparency_mode is TransparencyMode.STACKED:
            to_apply = members[: page.transparency_position + 1]
        else:
            to_apply = [members[page.transparency_position]]
        for member in to_apply:
            overlay = render_image(self._obj.image(member.image_id))
            self._ws.screen.superimpose(overlay, str(member.image_id))
        self._ws.screen.show_page(
            page.number,
            "",
            transparency=str(page.image_id),
            group=page.transparency_group,
        )

    def _display_overwrite(self, page: CompiledPage) -> None:
        # Recompute the accumulated composite deterministically from the
        # nearest base page through every intervening overlay page.
        base_page, base = self._composition_walk_start(page)
        self._ws.screen.reset_composite(base)
        for intermediate in self._program.pages[base_page : page.number]:
            overlay = render_image(self._obj.image(intermediate.image_id))
            if intermediate.kind is PageKind.OVERWRITE:
                self._ws.screen.overwrite(overlay, str(intermediate.image_id))
            elif intermediate.kind is PageKind.TRANSPARENCY:
                self._ws.screen.superimpose(overlay, str(intermediate.image_id))
        self._ws.screen.show_page(
            page.number, "", overwrite=str(page.image_id)
        )

    def _display_sim_step(self, page: CompiledPage) -> None:
        assert page.sim_step is not None
        overlay = render_image(self._obj.image(page.image_id))
        kind = page.sim_step.kind.value
        if kind == "new_page":
            self._ws.screen.reset_composite(overlay)
        elif kind == "transparency":
            self._ws.screen.superimpose(overlay, str(page.image_id))
        else:
            self._ws.screen.overwrite(overlay, str(page.image_id))
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.SIM_PAGE,
            page=page.number,
            image=str(page.image_id),
        )

    def _project_relevance_regions(self, image_id: ImageId) -> None:
        """Project relevance polygons on top of a displayed image."""
        regions = self.relevance_regions.get(image_id)
        if not regions:
            return
        image = self._obj.image(image_id)
        canvas = Canvas(image.width, image.height)
        from repro.images.graphics import GraphicsObject

        for index, polygon in enumerate(regions):
            canvas.draw(
                GraphicsObject(name=f"relevance-{index}", shape=polygon, intensity=255)
            )
        self._ws.screen.superimpose(canvas.snapshot(), "relevance-regions")

    def _transparency_members(self, group: int | None) -> list[CompiledPage]:
        return [
            p
            for p in self._program.pages
            if p.kind is PageKind.TRANSPARENCY and p.transparency_group == group
        ]

    def _base_composite_before(self, page: CompiledPage) -> Bitmap | None:
        """The raster of "the last page before the transparency set"."""
        base_index, base = self._composition_walk_start(page)
        __ = base_index
        return base

    def _composition_walk_start(
        self, page: CompiledPage
    ) -> tuple[int, Bitmap | None]:
        """Find the nearest preceding base page and its raster.

        Returns ``(page_index, bitmap)`` where ``page_index`` is the
        0-based index *after* the base page (the first overlay to
        apply when walking forward).
        """
        for index in range(page.number - 2, -1, -1):
            candidate = self._program.pages[index]
            if candidate.kind is PageKind.IMAGE:
                return index + 1, render_image(self._obj.image(candidate.image_id))
            if candidate.kind is PageKind.SIM_STEP and candidate.sim_step is not None:
                if candidate.sim_step.kind.value == "new_page":
                    return index + 1, render_image(
                        self._obj.image(candidate.image_id)
                    )
            if candidate.kind is PageKind.TEXT:
                return index + 1, None
        return 0, self.inherited_base

    def _position_of(self, page: CompiledPage) -> Position:
        if page.kind is PageKind.TEXT and page.segment_id is not None:
            start, end = page.char_span
            return TextPosition(segment_id=page.segment_id, start=start, end=end)
        if page.image_id is not None:
            return ImagePosition(image_id=page.image_id)
        return None

    # ------------------------------------------------------------------
    # logical-unit browsing
    # ------------------------------------------------------------------

    def goto_unit(self, kind: LogicalUnitKind, direction: int) -> int:
        """Show the page with the next/previous start of a logical unit.

        Raises
        ------
        NavigationError
            If no such unit exists in that direction.
        """
        page = self.current_page
        segment_order = [
            s.segment_id
            for s in self._obj.text_segments
        ]
        if not segment_order:
            raise NavigationError("object has no text part")
        if page is not None and page.segment_id in segment_order:
            segment_id = page.segment_id
            # Units starting mid-page stay reachable because the cursor
            # advances to each unit we navigate to.
            offset = self._offset_cursor
        else:
            segment_id = segment_order[0]
            offset = -1 if direction > 0 else float("inf")

        index = self._obj.text_segment(segment_id).logical_index
        unit = (
            index.next_start(kind, offset)
            if direction > 0
            else index.previous_start(kind, offset)
        )
        if unit is None:
            raise NavigationError(
                f"no {'next' if direction > 0 else 'previous'} {kind.value}"
            )
        target = self._program.page_for_offset(segment_id, unit.start)
        result = self.goto_page(target)
        self._offset_cursor = float(unit.start)
        return result

    # ------------------------------------------------------------------
    # pattern search
    # ------------------------------------------------------------------

    def _index_for(self, segment_id) -> TextSearchIndex:
        if segment_id not in self._search_indexes:
            segment = self._obj.text_segment(segment_id)
            self._search_indexes[segment_id] = TextSearchIndex.from_text(
                segment.plain_text
            )
        return self._search_indexes[segment_id]

    def find_pattern(self, pattern: str = "") -> int | None:
        """Show the next page with an occurrence of ``pattern``.

        Repeated calls with the same pattern keep advancing; a new
        pattern restarts from the current page.  Returns the new page
        number, or None when there is no further occurrence.
        """
        if not pattern:
            raise BrowsingError("find_pattern needs a pattern")
        page = self.current_page
        segment_order = [s.segment_id for s in self._obj.text_segments]
        if not segment_order:
            return None

        if self._last_find is not None and self._last_find[0] == pattern:
            after = self._last_find[1]
        else:
            after = float(page.char_span[0] - 1) if page is not None else -1.0

        start_segment = (
            page.segment_id
            if page is not None and page.segment_id in segment_order
            else segment_order[0]
        )
        start_index = segment_order.index(start_segment)
        for segment_id in segment_order[start_index:]:
            index = self._index_for(segment_id)
            threshold = after if segment_id == start_segment else -1.0
            hit = index.next_occurrence(pattern, threshold)
            if hit is not None:
                self._last_find = (pattern, hit)
                target = self._program.page_for_offset(segment_id, hit)
                self._ws.trace.record(
                    self._ws.clock.now,
                    EventKind.SEARCH_HIT,
                    pattern=pattern,
                    offset=hit,
                    page=target,
                )
                result = self.goto_page(target)
                self._offset_cursor = float(hit)
                return result
        self._last_find = None
        return None

    # ------------------------------------------------------------------
    # transparencies: user-selected superimposition
    # ------------------------------------------------------------------

    def select_transparencies(self, positions: list[int] = ()) -> None:
        """Superimpose only the chosen transparencies of the current set.

        "He can do that by displaying the transparencies independently
        ... and selecting the ones that he wants to see superimposed."

        Raises
        ------
        BrowsingError
            If the current page is not a transparency, or a position is
            out of range.
        """
        page = self.current_page
        if page is None or page.kind is not PageKind.TRANSPARENCY:
            raise BrowsingError("not on a transparency page")
        members = self._transparency_members(page.transparency_group)
        base = self._base_composite_before(page)
        self._ws.screen.reset_composite(base)
        for position in positions:
            if not 0 <= position < len(members):
                raise BrowsingError(
                    f"transparency position {position} out of range "
                    f"0..{len(members) - 1}"
                )
            overlay = render_image(self._obj.image(members[position].image_id))
            self._ws.screen.superimpose(overlay, str(members[position].image_id))

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------

    def _current_image(self):
        page = self.current_page
        if page is None or page.image_id is None:
            raise BrowsingError("current page has no image")
        return self._obj.image(page.image_id)

    def select_object_at(self, x: float = 0, y: float = 0):
        """Mouse-select the object at ``(x, y)``; plays or displays its
        label.  Returns the graphics object, or None if nothing is hit."""
        image = self._current_image()
        obj = image.object_at(Point(x, y))
        if obj is None or obj.label is None:
            return obj
        label = obj.label
        if label.kind.is_voice:
            self._ws.audio.play_label(label.voice, label.text)
        else:
            self._ws.trace.record(
                self._ws.clock.now,
                EventKind.DISPLAY_LABEL,
                label=label.text,
                object=obj.name,
            )
        return obj

    def highlight_labels(self, pattern: str = "") -> list[str]:
        """Highlight objects whose label contains ``pattern``.

        Returns the matched object names (also traced), implementing
        "the user can specify a pattern and request that the objects in
        which this pattern appears within their label are highlighted".
        """
        if not pattern:
            raise BrowsingError("highlight_labels needs a pattern")
        image = self._current_image()
        matches = [g.name for g in image.objects_matching_label(pattern)]
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.HIGHLIGHT,
            pattern=pattern,
            objects=",".join(matches),
        )
        return matches

    def play_all_labels(self) -> int:
        """Play every voice label, in a system-defined (insertion) order.

        Returns the number of labels played.
        """
        image = self._current_image()
        count = 0
        for graphics in image.voice_labelled_objects():
            self._ws.audio.play_label(graphics.label.voice, graphics.label.text)
            count += 1
        return count

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def define_view(self, x: int = 0, y: int = 0, width: int = 0, height: int = 0):
        """Define a view rectangle on the current image.

        When the image is a representation, the view's data comes from
        the *source* image — fetched from the server when this session
        was opened through a manager — so only the window's bytes move.
        """
        image = self._current_image()
        data_source: ViewDataSource | None = None
        if self._manager is not None:
            data_source = self._manager.view_data_source(self._obj, image)
        label_image = None
        if image.is_representation:
            label_image = self._obj.image(image.source_image_id)
            if data_source is None and label_image.bitmap is not None:
                # No server backing: the source image is local, so
                # windows crop its bitmap (coordinates are source-space).
                data_source = label_image.bitmap.crop
        self._view = View(
            image,
            Rect(x, y, width, height),
            data_source=data_source,
            label_image=label_image,
        )
        result = self._view.fetch()
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.VIEW_MOVED,
            rect=f"{x},{y},{width}x{height}",
            bytes=result.nbytes,
            op="define",
        )
        return self._view

    def _require_view(self) -> View:
        if self._view is None:
            raise BrowsingError("no view is defined; use define_view first")
        return self._view

    def move_view(self, dx: int = 0, dy: int = 0):
        """Move the view; plays newly encountered voice labels when the
        voice option is on."""
        view = self._require_view()
        result = view.move(dx, dy)
        self._after_view_op(result, kind="move")
        return result

    def jump_view(self, x: int = 0, y: int = 0):
        """Non-contiguous view move."""
        view = self._require_view()
        result = view.jump(x, y)
        self._after_view_op(result, kind="jump")
        return result

    def resize_view(self, dw: int = 0, dh: int = 0):
        """Shrink or expand the view."""
        view = self._require_view()
        result = view.resize(dw, dh)
        self._after_view_op(result, kind="resize")
        return result

    def toggle_voice_option(self) -> bool:
        """Flip whether encountered voice labels are played."""
        view = self._require_view()
        view.voice_option = not view.voice_option
        return view.voice_option

    def _after_view_op(self, result, kind: str) -> None:
        rect = result.rect
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.VIEW_MOVED if kind != "resize" else EventKind.VIEW_RESIZED,
            rect=f"{rect.x},{rect.y},{rect.width}x{rect.height}",
            bytes=result.bitmap.nbytes,
            op=kind,
        )
        view = self._require_view()
        if view.voice_option:
            for label in result.new_labels:
                self._ws.audio.play_label(label.voice, label.text)

    # ------------------------------------------------------------------
    # process simulation
    # ------------------------------------------------------------------

    def set_simulation_speed(self, factor: float = 1.0) -> float:
        """Adjust the user speed factor (>1 is faster)."""
        if factor <= 0:
            raise BrowsingError(f"speed factor must be positive: {factor}")
        self._sim_speed = factor
        return factor

    def run_simulation(self, group: int | None = None) -> int:
        """Run a process simulation group to completion.

        Defaults to the group of the current page.  Returns the number
        of the last simulation page, which becomes the current page.
        """
        if group is None:
            page = self.current_page
            if page is None or page.sim_group is None:
                raise BrowsingError("not on a process-simulation page")
            group = page.sim_group
        steps = [
            p
            for p in self._program.pages
            if p.kind is PageKind.SIM_STEP and p.sim_group == group
        ]
        if not steps:
            raise BrowsingError(f"no simulation group {group}")
        last = run_simulation_group(self, steps, self._sim_speed)
        self._current = last.number
        self._previous_position = self._position_of(last)
        self._ws.screen.show_indicators(self._visible_indicator_dicts())
        return self._current

    # ------------------------------------------------------------------
    # tours
    # ------------------------------------------------------------------

    def start_tour(self) -> TourController:
        """Begin the tour on the current tour page.

        Returns a controller; call :meth:`TourController.run_all` for
        the automatic sequence or :meth:`TourController.step` /
        :meth:`TourController.interrupt` to drive it interactively.
        """
        page = self.current_page
        if page is None or page.tour is None:
            raise BrowsingError("not on a tour page")
        self._tour_controller = TourController(self, page.tour)
        return self._tour_controller

    def interrupt_tour(self) -> View:
        """Interrupt the running tour; the window stays for free movement.

        "The user may interrupt the tour and move the window all round
        in order to navigate through other positions of the image."
        """
        if self._tour_controller is None:
            raise BrowsingError("no tour is running")
        view = self._tour_controller.interrupt()
        self._view = view
        self._tour_controller = None
        return view

    # ------------------------------------------------------------------
    # relevant objects
    # ------------------------------------------------------------------

    def _visible_indicator_dicts(self) -> list[dict]:
        visible = []
        for link in self._obj.relevant_links:
            if self._indicator_visible(link):
                visible.append(
                    {
                        "indicator": link.indicator_id.value,
                        "label": link.label,
                        "target": link.target_object_id.value,
                    }
                )
        return visible

    def _indicator_visible(self, link) -> bool:
        anchor = link.parent_anchor
        if anchor is None:
            return True
        page = self.current_page
        if page is None:
            return False
        if isinstance(anchor, TextAnchor) and page.segment_id == anchor.segment_id:
            start, end = page.char_span
            return anchor.overlaps(start, end)
        if isinstance(anchor, ImageAnchor):
            return page.image_id == anchor.image_id
        return False

    def visible_indicators(self) -> list[dict]:
        """The relevant-object indicators currently on display."""
        return self._visible_indicator_dicts()

    def _select_relevant(self, indicator: str = ""):
        if self._manager is None:
            raise BrowsingError(
                "relevant-object navigation needs a presentation manager"
            )
        return self._manager.select_relevant(self, indicator)

    def _return_from_relevant(self):
        if self._manager is None:
            raise BrowsingError(
                "relevant-object navigation needs a presentation manager"
            )
        return self._manager.return_from_relevant(self)

    def next_relevant_voice(self) -> bool:
        """Play the next voice relevance of this relevant object.

        "Relevances to voice segments are indicated by the fact that
        the voice segment is played independently.  (A menu option has
        to be selected in order to hear the next related voice
        segment.)"  Returns False when the queue is exhausted.
        """
        if not self.relevant_voice_queue:
            return False
        segment_id, start, end = self.relevant_voice_queue.pop(0)
        segment = self._obj.voice_segment(segment_id)
        clip = segment.recording.slice(start, end)
        self._ws.audio.play_to_end(clip, f"relevance:{segment_id}")
        return True
