"""The MINOS multimedia object presentation manager — the paper's
contribution.

"The multimedia object presentation manager resides in the user's
workstation and requests the appropriate pieces of information from the
multimedia object server subsystems."

:class:`~repro.core.manager.PresentationManager` opens archived objects
onto a :class:`~repro.workstation.station.Workstation` and returns a
browsing session — visual or audio, per the object's driving mode —
exposing the symmetric browsing vocabulary of Section 2: page
navigation, logical-unit navigation, pattern search, pause-based
rewind, logical messages, relevant objects, transparencies, overwrites,
views, tours and process simulation.
"""

from repro.core.browsing import BrowseCommand
from repro.core.compile import CompiledPage, PageKind, compile_visual_program
from repro.core.manager import LocalStore, PresentationManager
from repro.core.visual import VisualSession
from repro.core.audio import AudioSession
from repro.core.spoken import find_spoken_pattern, recognize_pattern
from repro.core.telephone import TelephoneSession
from repro.core.query_session import QueryBrowser, QueryState

__all__ = [
    "AudioSession",
    "TelephoneSession",
    "QueryBrowser",
    "QueryState",
    "find_spoken_pattern",
    "recognize_pattern",
    "BrowseCommand",
    "CompiledPage",
    "LocalStore",
    "PageKind",
    "PresentationManager",
    "VisualSession",
    "compile_visual_program",
]
