"""The browsing command vocabulary.

Commands are the currency between menus and sessions: a session's menu
is a set of :class:`BrowseCommand` values derived from the object's
descriptor ("the menu options which are displayed define the set of
available operations"), and executing a command not on the menu is an
error — exactly like clicking a menu option that is not there.

The table makes the paper's symmetry explicit: every text-browsing
command has an audio counterpart.
"""

from __future__ import annotations

import enum


class BrowseCommand(enum.Enum):
    """Every browsing operation a MINOS menu can offer."""

    # -- page browsing, symmetric between visual and audio pages -------
    NEXT_PAGE = "next_page"
    PREVIOUS_PAGE = "previous_page"
    ADVANCE_PAGES = "advance_pages"  # forth and back by a count
    GOTO_PAGE = "goto_page"

    # -- voice output control (audio mode) ------------------------------
    INTERRUPT = "interrupt"
    RESUME = "resume"
    RESUME_PAGE_START = "resume_page_start"
    REWIND_SHORT_PAUSES = "rewind_short_pauses"
    REWIND_LONG_PAUSES = "rewind_long_pauses"

    # -- logical-unit browsing, symmetric --------------------------------
    NEXT_CHAPTER = "next_chapter"
    PREVIOUS_CHAPTER = "previous_chapter"
    NEXT_SECTION = "next_section"
    PREVIOUS_SECTION = "previous_section"
    NEXT_PARAGRAPH = "next_paragraph"
    PREVIOUS_PARAGRAPH = "previous_paragraph"

    # -- pattern matching, symmetric --------------------------------------
    FIND_PATTERN = "find_pattern"

    # -- relevant objects ---------------------------------------------------
    SELECT_RELEVANT = "select_relevant"
    RETURN_FROM_RELEVANT = "return_from_relevant"
    NEXT_RELEVANT_VOICE = "next_relevant_voice"

    # -- transparencies -----------------------------------------------------
    SELECT_TRANSPARENCIES = "select_transparencies"

    # -- images: labels and views --------------------------------------------
    SELECT_OBJECT = "select_object"
    HIGHLIGHT_LABELS = "highlight_labels"
    PLAY_ALL_LABELS = "play_all_labels"
    DEFINE_VIEW = "define_view"
    MOVE_VIEW = "move_view"
    JUMP_VIEW = "jump_view"
    RESIZE_VIEW = "resize_view"
    TOGGLE_VOICE_OPTION = "toggle_voice_option"

    # -- automatic presentations ----------------------------------------------
    START_TOUR = "start_tour"
    INTERRUPT_TOUR = "interrupt_tour"
    RUN_SIMULATION = "run_simulation"
    SET_SIMULATION_SPEED = "set_simulation_speed"


#: Visual↔audio command symmetry, as the paper frames it: text and
#: voice "present just two alternative ways of representing
#: information" and get the same capabilities.
SYMMETRIC_PAIRS: list[tuple[BrowseCommand, BrowseCommand]] = [
    (BrowseCommand.NEXT_PAGE, BrowseCommand.NEXT_PAGE),
    (BrowseCommand.PREVIOUS_PAGE, BrowseCommand.PREVIOUS_PAGE),
    (BrowseCommand.ADVANCE_PAGES, BrowseCommand.ADVANCE_PAGES),
    (BrowseCommand.GOTO_PAGE, BrowseCommand.GOTO_PAGE),
    (BrowseCommand.NEXT_CHAPTER, BrowseCommand.NEXT_CHAPTER),
    (BrowseCommand.FIND_PATTERN, BrowseCommand.FIND_PATTERN),
    # Re-reading a word/sentence/paragraph from the text page "cache"
    # maps to pause-based rewind in voice:
    (BrowseCommand.PREVIOUS_PARAGRAPH, BrowseCommand.REWIND_LONG_PAUSES),
]
