"""Process simulation execution.

"Process simulation is an ordered set of consecutive visual pages which
is displayed one after the other automatically (without pressing the
next page button)...  When audio messages are attached the next visual
page is only shown after the logical audio message has been played.
The relative speed by which pages are placed one on the top of another
is set at object creation time but it may be altered by the user."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.compile import CompiledPage
from repro.objects.messages import VoiceMessage

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.visual import VisualSession


def run_simulation_group(
    session: "VisualSession",
    steps: list[CompiledPage],
    speed_factor: float,
) -> CompiledPage:
    """Play every step of one simulation group; returns the last page.

    Each step is composited per its kind (new page / transparency /
    overwrite); the clock advances by the designer interval scaled by
    the user's speed factor, and any attached audio message plays to
    completion *before* the next page appears.
    """
    workstation = session.workstation
    for step_page in steps:
        session._display_sim_step(step_page)
        step = step_page.sim_step
        assert step is not None
        if step.message_id is not None:
            message = session.object.message(step.message_id)
            if isinstance(message, VoiceMessage):
                workstation.audio.play_message(
                    message.recording, str(message.message_id)
                )
            else:
                bitmap = None
                if message.content.image_ids:
                    from repro.images.canvas import render_image

                    bitmap = render_image(
                        session.object.image(message.content.image_ids[0])
                    )
                workstation.screen.pin(
                    str(message.message_id),
                    text=message.content.text,
                    bitmap=bitmap,
                )
        workstation.clock.advance(step_page.sim_interval_s / speed_factor)
    return steps[-1]
