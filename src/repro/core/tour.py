"""Tour execution.

"A tour is a sequence of views defined on an image by the multimedia
object designer.  The sequence is played automatically...  A logical
message (visual or audio) may be associated with each position of the
tour.  The user may interrupt the tour and move the window all round."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import BrowsingError
from repro.images.geometry import Rect
from repro.images.view import View
from repro.objects.messages import VoiceMessage
from repro.objects.presentation import Tour
from repro.trace import EventKind

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.visual import VisualSession


class TourController:
    """Drives one tour, automatically or stop by stop."""

    def __init__(self, session: "VisualSession", tour: Tour) -> None:
        self._session = session
        self._tour = tour
        self._next_stop = 0
        self._interrupted = False
        image = session.object.image(tour.image_id)
        data_source = None
        if session._manager is not None:
            data_source = session._manager.view_data_source(session.object, image)
        first = tour.stops[0]
        rect = Rect(
            first.x, first.y, tour.window_width, tour.window_height
        ).clamped_within(View._source_rect(image))
        self._view = View(image, rect, data_source=data_source)

    @property
    def stops_remaining(self) -> int:
        """Number of stops not yet visited."""
        return len(self._tour.stops) - self._next_stop

    @property
    def view(self) -> View:
        """The tour's moving window."""
        return self._view

    def step(self) -> bool:
        """Visit the next stop; returns False when the tour is over.

        Raises
        ------
        BrowsingError
            If the tour was interrupted.
        """
        if self._interrupted:
            raise BrowsingError("tour was interrupted; start it again to resume")
        if self._next_stop >= len(self._tour.stops):
            return False
        stop = self._tour.stops[self._next_stop]
        self._next_stop += 1
        workstation = self._session.workstation
        result = self._view.jump(stop.x, stop.y)
        workstation.trace.record(
            workstation.clock.now,
            EventKind.TOUR_STOP,
            stop=self._next_stop - 1,
            rect=f"{result.rect.x},{result.rect.y}",
            bytes=result.bitmap.nbytes,
        )
        if stop.message_id is not None:
            message = self._session.object.message(stop.message_id)
            if isinstance(message, VoiceMessage):
                workstation.audio.play_message(
                    message.recording, str(message.message_id)
                )
            else:
                workstation.screen.pin(
                    str(message.message_id), text=message.content.text
                )
        workstation.clock.advance(self._tour.dwell_s)
        return True

    def run_all(self) -> int:
        """Play the remaining stops automatically; returns stops visited."""
        visited = 0
        while self.step():
            visited += 1
        return visited

    def interrupt(self) -> View:
        """Stop the tour; the window remains available for free movement."""
        self._interrupted = True
        return self._view
