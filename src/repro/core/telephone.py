"""Telephone access to the multimedia data bank.

Section 1: voice "allows users to access information using
telephones."  A telephone has no screen and no mouse — only a keypad
and an earpiece — so this interface drives a browsing session entirely
through audio:

* audio mode objects play their voice part directly;
* **visual mode objects are read aloud**: each visual page's plain text
  is rendered to speech by the same synthesizer that models dictation
  (the symmetric trick — text and voice are interchangeable carriers);
* keypad digits map to the browsing vocabulary, and short spoken
  prompts announce state changes.

The phone line is modelled by the same clock/trace pair as the
workstation speaker, so tests can assert exactly what a caller heard.
"""

from __future__ import annotations

from repro.audio.signal import Recording, SpeakerProfile, synthesize_speech
from repro.core.audio import AudioSession
from repro.core.visual import VisualSession
from repro.errors import BrowsingError, MinosError
from repro.objects.model import DrivingMode, MultimediaObject
from repro.trace import EventKind
from repro.workstation.station import Workstation

#: Keypad layout, announced by the HELP key.
KEYPAD = {
    "1": "previous page",
    "2": "play / resume",
    "3": "next page",
    "4": "replay from one long pause back",
    "5": "interrupt",
    "6": "replay from one short pause back",
    "7": "previous chapter",
    "9": "next chapter",
    "0": "help",
}

_PROMPT_PROFILE = SpeakerProfile(
    name="operator",
    syllable_duration=0.12,
    word_gap=0.08,
    sentence_gap=0.3,
    paragraph_gap=0.8,
    jitter=0.0,
)


class TelephoneSession:
    """One caller browsing one archived object over the phone.

    Parameters
    ----------
    obj:
        The object to present (either driving mode).
    workstation:
        Supplies the clock, trace and audio path (the "phone line");
        the screen stays dark.
    """

    def __init__(self, obj: MultimediaObject, workstation: Workstation) -> None:
        self._obj = obj
        self._ws = workstation
        self._page_speech: dict[int, Recording] = {}
        if obj.driving_mode is DrivingMode.AUDIO:
            self._audio: AudioSession | None = AudioSession(obj, workstation)
            self._visual: VisualSession | None = None
        else:
            self._audio = None
            self._visual = VisualSession(obj, workstation)

    @property
    def is_reading_visual_object(self) -> bool:
        """Whether this call reads a visual object aloud."""
        return self._visual is not None

    # ------------------------------------------------------------------
    # call control
    # ------------------------------------------------------------------

    def answer(self) -> None:
        """Start the call: announce the object and begin playing."""
        title = self._obj.attributes.get("kind", "object")
        self._announce(f"connected to {title}")
        if self._audio is not None:
            self._audio.open()
        else:
            self._visual.open()
            self._read_current_page()

    def press(self, digit: str) -> None:
        """Handle one keypad press.

        Raises
        ------
        BrowsingError
            On an unmapped digit.
        """
        if digit not in KEYPAD:
            raise BrowsingError(f"telephone keypad has no key {digit!r}")
        self._ws.trace.record(
            self._ws.clock.now, EventKind.COMMAND, command=f"keypad:{digit}"
        )
        handler = {
            "0": self._help,
            "1": self._previous_page,
            "2": self._play,
            "3": self._next_page,
            "4": self._rewind_long,
            "5": self._interrupt,
            "6": self._rewind_short,
            "7": lambda: self._chapter(-1),
            "9": lambda: self._chapter(+1),
        }[digit]
        handler()

    # ------------------------------------------------------------------
    # keypad handlers
    # ------------------------------------------------------------------

    def _help(self) -> None:
        spoken = ". ".join(f"key {k}. {v}" for k, v in sorted(KEYPAD.items()))
        self._announce(spoken)

    def _play(self) -> None:
        if self._audio is not None:
            if not self._audio.is_playing:
                self._audio.resume()
        else:
            self._read_current_page()

    def _interrupt(self) -> None:
        if self._audio is not None and self._audio.is_playing:
            self._audio.interrupt()
        # Reading a visual page aloud completes synchronously; nothing
        # to interrupt afterwards.

    def _next_page(self) -> None:
        self._ensure_quiet()
        if self._audio is not None:
            self._audio.next_page()
        else:
            self._visual.next_page()
            self._announce(f"page {self._visual.current_page_number}")
            self._read_current_page()

    def _previous_page(self) -> None:
        self._ensure_quiet()
        if self._audio is not None:
            self._audio.previous_page()
        else:
            self._visual.previous_page()
            self._announce(f"page {self._visual.current_page_number}")
            self._read_current_page()

    def _rewind_long(self) -> None:
        if self._audio is None:
            self._announce("not available for this object")
            return
        self._ensure_quiet()
        self._audio.rewind_long_pauses(1)

    def _rewind_short(self) -> None:
        if self._audio is None:
            self._announce("not available for this object")
            return
        self._ensure_quiet()
        self._audio.rewind_short_pauses(1)

    def _chapter(self, direction: int) -> None:
        from repro.objects.logical import LogicalUnitKind

        self._ensure_quiet()
        try:
            if self._audio is not None:
                self._audio.goto_unit(LogicalUnitKind.CHAPTER, direction)
            else:
                self._visual.goto_unit(LogicalUnitKind.CHAPTER, direction)
                self._announce(f"page {self._visual.current_page_number}")
                self._read_current_page()
        except MinosError:
            self._announce("no more chapters")

    # ------------------------------------------------------------------
    # audio rendering
    # ------------------------------------------------------------------

    def _ensure_quiet(self) -> None:
        if self._audio is not None and self._audio.is_playing:
            self._audio.interrupt()

    def _announce(self, text: str) -> None:
        prompt = synthesize_speech(text, profile=_PROMPT_PROFILE, seed=0)
        self._ws.audio.play_to_end(prompt, f"phone-prompt:{text[:24]}")

    def _read_current_page(self) -> None:
        """Read the current visual page's text aloud (cached per page)."""
        assert self._visual is not None
        number = self._visual.current_page_number
        speech = self._page_speech.get(number)
        if speech is None:
            page = self._visual.current_page
            text = ""
            if page is not None and page.visual is not None:
                # Strip layout: speak the words.
                text = " ".join(page.visual.rendered_text().split())
            if not text.strip():
                self._announce("this page has no readable text")
                return
            speech = synthesize_speech(text, profile=_PROMPT_PROFILE, seed=number)
            self._page_speech[number] = speech
        self._ws.audio.play_to_end(speech, f"phone-page:{number}")
