"""The logical-message triggering engine.

Voice logical messages "will be played when the user first branches
into the corresponding segments during browsing": the engine compares
the previous browsing position with the new one and fires a message
only on transitions from *outside* an anchor to *inside* it.  Leaving
and re-entering re-arms the trigger.

Visual logical messages pin to the top region while the related content
is displayed; with ``display_once`` set, the pin happens only on the
first branch into the related section.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ImageId, MessageId, SegmentId
from repro.objects.anchors import ImageAnchor, TextAnchor, VoiceAnchor, VoicePointAnchor
from repro.objects.messages import VisualMessage, VoiceMessage
from repro.objects.model import MultimediaObject


@dataclass(frozen=True, slots=True)
class TextPosition:
    """A browsing position within a text flow: the page's char span."""

    segment_id: SegmentId
    start: int
    end: int


@dataclass(frozen=True, slots=True)
class ImagePosition:
    """A browsing position on an image page."""

    image_id: ImageId


@dataclass(frozen=True, slots=True)
class VoicePosition:
    """A browsing position within the object voice part."""

    segment_id: SegmentId
    time: float


Position = TextPosition | ImagePosition | VoicePosition | None


class MessageEngine:
    """Decides which logical messages fire on each position change."""

    def __init__(self, obj: MultimediaObject) -> None:
        self._obj = obj
        self._shown_once: set[MessageId] = set()

    # ------------------------------------------------------------------
    # voice messages
    # ------------------------------------------------------------------

    def voice_messages_entering(
        self, previous: Position, current: Position
    ) -> list[VoiceMessage]:
        """Voice messages triggered by moving from ``previous`` to
        ``current`` — anchors covering the new position but not the old."""
        triggered: list[VoiceMessage] = []
        for message in self._obj.voice_messages:
            if self._covers(message, current) and not self._covers(message, previous):
                triggered.append(message)
        return triggered

    # ------------------------------------------------------------------
    # visual messages
    # ------------------------------------------------------------------

    def visual_message_to_pin(
        self, message_id: MessageId, previous: Position, current: Position
    ) -> VisualMessage | None:
        """Whether the page's pinned visual message should display.

        Honors ``display_once``: once a once-only message has been
        pinned, branching back into the related section does not pin it
        again — but *staying* inside the section (turning pages within
        the related span) keeps it pinned.
        """
        message = self._obj.message(message_id)
        if not isinstance(message, VisualMessage):
            return None
        if not message.display_once:
            return message
        stayed_inside = self._covers(message, previous) and self._covers(
            message, current
        )
        if stayed_inside:
            return message
        if message_id in self._shown_once:
            return None
        self._shown_once.add(message_id)
        return message

    def visual_messages_for_voice(
        self, segment_id: SegmentId, time: float
    ) -> list[VisualMessage]:
        """Visual messages that must stay on display at a voice position.

        "The visual logical message will stay on display for the
        duration of the play of each voice segment to which it is
        attached."
        """
        return [
            m
            for m in self._obj.visual_messages
            if m.covers_voice(segment_id, time)
        ]

    # ------------------------------------------------------------------
    # coverage
    # ------------------------------------------------------------------

    @staticmethod
    def _anchor_covers(anchor, position: Position) -> bool:
        if position is None:
            return False
        if isinstance(position, TextPosition) and isinstance(anchor, TextAnchor):
            return anchor.segment_id == position.segment_id and anchor.overlaps(
                position.start, position.end
            )
        if isinstance(position, ImagePosition) and isinstance(anchor, ImageAnchor):
            return anchor.image_id == position.image_id
        if isinstance(position, VoicePosition):
            if isinstance(anchor, VoiceAnchor):
                return anchor.segment_id == position.segment_id and anchor.covers(
                    position.time
                )
            if isinstance(anchor, VoicePointAnchor):
                return (
                    anchor.segment_id == position.segment_id
                    and 0 <= position.time - anchor.time < 1.0
                )
        return False

    @classmethod
    def _covers(cls, message: VoiceMessage | VisualMessage, position: Position) -> bool:
        return any(cls._anchor_covers(a, position) for a in message.anchors)
