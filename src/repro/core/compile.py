"""Compiling a presentation specification into a concrete page program.

The presentation manager turns the designer's ordered
:class:`~repro.objects.presentation.PresentationSpec` plus the object's
parts into a flat sequence of :class:`CompiledPage` entries — the thing
"next page" walks over.  Text flows are paginated here, including the
visual-logical-message interaction of Figures 3-4: pages whose text
falls inside a message's anchored span reserve the top region for the
pinned message, and pagination breaks at span boundaries so a page
never mixes related and unrelated text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DescriptorError, PaginationError
from repro.ids import ImageId, MessageId, SegmentId
from repro.objects.messages import VisualMessage
from repro.objects.model import MultimediaObject
from repro.objects.presentation import (
    ImagePage,
    OverwritePage,
    ProcessSimulation,
    SimStep,
    TextFlow,
    Tour,
    TransparencyMode,
    TransparencySet,
)
from repro.text.formatter import FormattedLine, LineKind, TextFormatter
from repro.text.pagination import Paginator, VisualPage


class PageKind(enum.Enum):
    """What a compiled page is."""

    TEXT = "text"
    IMAGE = "image"
    TRANSPARENCY = "transparency"
    OVERWRITE = "overwrite"
    SIM_STEP = "sim_step"
    TOUR = "tour"


@dataclass
class CompiledPage:
    """One page of the compiled program.

    Attributes
    ----------
    number:
        1-based global page number.
    kind:
        Page classification.
    visual:
        For TEXT pages, the paginated content.
    segment_id:
        For TEXT pages, the text segment the content comes from.
    image_id:
        For image-bearing pages, the image shown/composited.
    pinned_message_id:
        Visual logical message pinned at the top of this page, if any.
    transparency_group, transparency_position, transparency_mode:
        Grouping info for members of a transparency set.
    sim_group, sim_step, sim_interval_s:
        Grouping info for process-simulation steps.
    tour:
        For TOUR pages, the tour specification.
    """

    number: int
    kind: PageKind
    visual: VisualPage | None = None
    segment_id: SegmentId | None = None
    image_id: ImageId | None = None
    pinned_message_id: MessageId | None = None
    transparency_group: int | None = None
    transparency_position: int = 0
    transparency_mode: TransparencyMode | None = None
    sim_group: int | None = None
    sim_step: SimStep | None = None
    sim_interval_s: float = 0.0
    tour: Tour | None = None

    @property
    def char_span(self) -> tuple[int, int]:
        """Plain-text span of a TEXT page (``(0, 0)`` otherwise)."""
        if self.visual is None:
            return (0, 0)
        return (self.visual.char_start, self.visual.char_end)


@dataclass
class VisualProgram:
    """The full compiled page program of a visual mode object."""

    pages: list[CompiledPage] = field(default_factory=list)
    #: Page number of the first page of each text segment.
    segment_first_page: dict[SegmentId, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pages)

    def page(self, number: int) -> CompiledPage:
        """Look up a page by 1-based number.

        Raises
        ------
        PaginationError
            If out of range.
        """
        if not 1 <= number <= len(self.pages):
            raise PaginationError(
                f"page {number} out of range 1..{len(self.pages)}"
            )
        return self.pages[number - 1]

    def page_for_offset(self, segment_id: SegmentId, offset: float) -> int:
        """The page showing character ``offset`` of a text segment."""
        best: int | None = None
        for page in self.pages:
            if page.kind is not PageKind.TEXT or page.segment_id != segment_id:
                continue
            start, end = page.char_span
            if start <= offset < end:
                return page.number
            if start <= offset:
                best = page.number
        if best is not None:
            return best
        raise PaginationError(
            f"no page covers offset {offset} of segment {segment_id}"
        )


#: Height (in lines) the pinned message region occupies on a page.
PINNED_REGION_LINES = 14


def compile_visual_program(
    obj: MultimediaObject,
    page_height: int = 40,
    width: int = 72,
) -> VisualProgram:
    """Compile the object's presentation spec into a page program."""
    program = VisualProgram()
    formatter = TextFormatter(width=width)
    transparency_group = 0
    sim_group = 0

    def image_lines(tag: str) -> int:
        try:
            image = obj.image(ImageId(tag))
        except DescriptorError:
            # The tag names data outside the object (e.g. captured
            # externally); reserve a default placeholder region.
            return 12
        # One text line stands for ~20 pixels of image height, capped to
        # fit a page with a couple of lines to spare.
        return min(max(image.height // 20, 4), page_height - 4)

    for item in obj.presentation.items:
        if isinstance(item, TextFlow):
            segment = obj.text_segment(item.segment_id)
            lines = formatter.format(segment.document)
            messages = [
                m
                for m in obj.visual_messages
                if any(
                    getattr(a, "segment_id", None) == item.segment_id
                    for a in m.anchors
                )
            ]
            pages = _paginate_text_flow(
                lines, messages, item.segment_id, page_height, image_lines
            )
            first = len(program.pages) + 1
            program.segment_first_page.setdefault(item.segment_id, first)
            program.pages.extend(pages)
        elif isinstance(item, ImagePage):
            program.pages.append(
                CompiledPage(number=0, kind=PageKind.IMAGE, image_id=item.image_id)
            )
        elif isinstance(item, TransparencySet):
            transparency_group += 1
            for position, member in enumerate(item.members):
                program.pages.append(
                    CompiledPage(
                        number=0,
                        kind=PageKind.TRANSPARENCY,
                        image_id=member,
                        transparency_group=transparency_group,
                        transparency_position=position,
                        transparency_mode=item.mode,
                    )
                )
        elif isinstance(item, OverwritePage):
            program.pages.append(
                CompiledPage(
                    number=0, kind=PageKind.OVERWRITE, image_id=item.image_id
                )
            )
        elif isinstance(item, ProcessSimulation):
            sim_group += 1
            for step_index, step in enumerate(item.steps):
                program.pages.append(
                    CompiledPage(
                        number=0,
                        kind=PageKind.SIM_STEP,
                        image_id=step.image_id,
                        sim_group=sim_group,
                        sim_step=step,
                        sim_interval_s=item.interval_s,
                    )
                )
        elif isinstance(item, Tour):
            program.pages.append(
                CompiledPage(
                    number=0, kind=PageKind.TOUR, image_id=item.image_id, tour=item
                )
            )
        else:  # pragma: no cover - exhaustive over PresentationItem
            raise PaginationError(f"unknown presentation item {type(item).__name__}")

    for index, page in enumerate(program.pages, start=1):
        page.number = index
    return program


def _paginate_text_flow(
    lines: list[FormattedLine],
    messages: list[VisualMessage],
    segment_id: SegmentId,
    page_height: int,
    image_lines,
) -> list[CompiledPage]:
    """Paginate one text flow, honouring pinned visual messages.

    The line stream is cut wherever the *pinned state* changes (a
    visual message's anchored span begins or ends); each run is then
    paginated with the top region reserved when a message is pinned.
    This reproduces Figures 3-4: the related text flows through the
    lower region over as many pages as needed, and the page after the
    related span "does not contain the image".
    """

    def pinned_for(line: FormattedLine) -> MessageId | None:
        if line.end <= line.start:
            return None
        for message in messages:
            if message.covers_text(segment_id, line.start, line.end):
                return message.message_id
        return None

    runs: list[tuple[MessageId | None, list[FormattedLine]]] = []
    current_pin: MessageId | None = None
    current_run: list[FormattedLine] = []
    for line in lines:
        pin = pinned_for(line) if line.kind is not LineKind.BLANK else current_pin
        if pin != current_pin and current_run:
            runs.append((current_pin, current_run))
            current_run = []
        current_pin = pin
        current_run.append(line)
    if current_run:
        runs.append((current_pin, current_run))

    compiled: list[CompiledPage] = []
    for pin, run_lines in runs:
        reserved = PINNED_REGION_LINES if pin is not None else 0
        paginator = Paginator(page_height=page_height, image_lines=image_lines)
        for visual in paginator.paginate(run_lines, reserved_top=reserved):
            if not visual.elements:
                continue
            compiled.append(
                CompiledPage(
                    number=0,
                    kind=PageKind.TEXT,
                    visual=visual,
                    segment_id=segment_id,
                    pinned_message_id=pin,
                )
            )
    return compiled
