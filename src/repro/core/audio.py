"""The audio-mode browsing session.

The symmetric counterpart of :class:`~repro.core.visual.VisualSession`:
audio pages instead of visual pages, pause-based rewind instead of
re-reading, recognized-utterance search instead of text search, and
visual logical messages pinned to the screen while the related voice
plays.

Playback runs against the simulated clock: :meth:`AudioSession.play`
starts output, the caller advances time (or uses
:meth:`AudioSession.play_for`), and :meth:`AudioSession.interrupt`
settles the position — exactly the interactive pattern of a user
listening and pressing menu buttons.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.audio.pages import AudioPage, AudioPager
from repro.audio.pauses import PauseKind
from repro.core.browsing import BrowseCommand
from repro.core.messages import MessageEngine, VoicePosition
from repro.errors import BrowsingError, NavigationError, UnknownCommandError
from repro.objects.logical import LogicalUnitKind
from repro.objects.model import DrivingMode, MultimediaObject
from repro.objects.parts import VoiceSegment
from repro.text.search import TextSearchIndex
from repro.trace import EventKind
from repro.workstation.menus import Menu, MenuOption
from repro.workstation.station import Workstation

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.manager import PresentationManager

_UNIT_COMMANDS: dict[BrowseCommand, tuple[LogicalUnitKind, int]] = {
    BrowseCommand.NEXT_CHAPTER: (LogicalUnitKind.CHAPTER, +1),
    BrowseCommand.PREVIOUS_CHAPTER: (LogicalUnitKind.CHAPTER, -1),
    BrowseCommand.NEXT_SECTION: (LogicalUnitKind.SECTION, +1),
    BrowseCommand.PREVIOUS_SECTION: (LogicalUnitKind.SECTION, -1),
    BrowseCommand.NEXT_PARAGRAPH: (LogicalUnitKind.PARAGRAPH, +1),
    BrowseCommand.PREVIOUS_PARAGRAPH: (LogicalUnitKind.PARAGRAPH, -1),
}


class AudioSession:
    """Interactive browsing of one audio mode object."""

    def __init__(
        self,
        obj: MultimediaObject,
        workstation: Workstation,
        manager: "PresentationManager | None" = None,
    ) -> None:
        if obj.driving_mode is not DrivingMode.AUDIO:
            raise BrowsingError(
                f"object {obj.object_id} is visually driven; open a VisualSession"
            )
        self._obj = obj
        self._ws = workstation
        self._manager = manager
        #: Simulated cost (disk service + network) of fetching this
        #: object; set by the presentation manager on session creation.
        self.open_cost_s = 0.0
        self._messages = MessageEngine(obj)

        order = obj.presentation.audio_order or [
            s.segment_id for s in obj.voice_segments
        ]
        self._segments: list[VoiceSegment] = [
            obj.voice_segment(segment_id) for segment_id in order
        ]
        if not self._segments:
            raise BrowsingError(f"object {obj.object_id} has no voice part")
        self._offsets: list[float] = []
        cursor = 0.0
        for segment in self._segments:
            self._offsets.append(cursor)
            cursor += segment.duration
        self._total = cursor

        self._pager = _GlobalPager(
            self._total, obj.presentation.audio_page_seconds
        )
        self._position = 0.0  # global seconds
        self._playing_since: float | None = None  # clock time play began
        self._playing_from: float = 0.0
        self._search_indexes: dict = {}
        self._last_find: tuple[str, float] | None = None
        self.relevant_voice_queue: list = []
        self._pinned_visual: str | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def object(self) -> MultimediaObject:
        """The object being presented."""
        return self._obj

    @property
    def workstation(self) -> Workstation:
        """The workstation this session presents onto."""
        return self._ws

    @property
    def duration(self) -> float:
        """Total length of the object voice part, in seconds."""
        return self._total

    @property
    def is_playing(self) -> bool:
        """Whether voice output is running."""
        return self._playing_since is not None

    @property
    def position(self) -> float:
        """Current position in the voice part, in global seconds."""
        if self._playing_since is not None:
            elapsed = self._ws.clock.now - self._playing_since
            return min(self._playing_from + elapsed, self._total)
        return self._position

    @property
    def page_count(self) -> int:
        """Number of audio pages."""
        return len(self._pager)

    @property
    def current_page(self) -> AudioPage:
        """The audio page containing the current position."""
        return self._pager.page_at(self.position)

    @property
    def current_page_number(self) -> int:
        """Number of the current audio page."""
        return self.current_page.number

    def locate(self, global_time: float) -> tuple[VoiceSegment, float]:
        """Map a global position to ``(segment, local_time)``."""
        index = max(bisect_right(self._offsets, global_time) - 1, 0)
        segment = self._segments[index]
        local = min(global_time - self._offsets[index], segment.duration)
        return segment, local

    # ------------------------------------------------------------------
    # menu
    # ------------------------------------------------------------------

    @property
    def menu(self) -> Menu:
        """The operations available right now."""
        options: list[MenuOption] = []

        def add(command: BrowseCommand, label: str) -> None:
            options.append(MenuOption(command=command.value, label=label))

        if self.is_playing:
            add(BrowseCommand.INTERRUPT, "interrupt voice output")
        else:
            add(BrowseCommand.RESUME, "resume voice output")
            add(BrowseCommand.RESUME_PAGE_START, "resume from page start")
            add(BrowseCommand.REWIND_SHORT_PAUSES, "replay from short pauses back")
            add(BrowseCommand.REWIND_LONG_PAUSES, "replay from long pauses back")
            if self.page_count > 1:
                add(BrowseCommand.NEXT_PAGE, "next voice page")
                add(BrowseCommand.PREVIOUS_PAGE, "previous voice page")
                add(BrowseCommand.ADVANCE_PAGES, "advance n voice pages")
                add(BrowseCommand.GOTO_PAGE, "go to voice page")
            kinds = set()
            for segment in self._segments:
                kinds |= segment.logical_index.kinds_present()
            for command, (kind, _direction) in _UNIT_COMMANDS.items():
                if kind in kinds:
                    add(command, command.value.replace("_", " "))
            if any(segment.utterances for segment in self._segments):
                add(BrowseCommand.FIND_PATTERN, "find spoken pattern")
            if self._visible_indicator_dicts():
                add(BrowseCommand.SELECT_RELEVANT, "relevant object")
            if self._manager is not None and self._manager.in_relevant(self):
                add(BrowseCommand.RETURN_FROM_RELEVANT, "return from relevant object")
            if self.relevant_voice_queue:
                add(BrowseCommand.NEXT_RELEVANT_VOICE, "next related voice segment")
        return Menu(options)

    def execute(self, command: BrowseCommand, **kwargs):
        """Execute a menu command.

        Raises
        ------
        UnknownCommandError
            If the command is not on the current menu.
        """
        if command.value not in self.menu:
            raise UnknownCommandError(
                f"command {command.value!r} is not on the audio menu "
                f"(playing={self.is_playing})"
            )
        handler = {
            BrowseCommand.INTERRUPT: self.interrupt,
            BrowseCommand.RESUME: self.resume,
            BrowseCommand.RESUME_PAGE_START: self.resume_page_start,
            BrowseCommand.REWIND_SHORT_PAUSES: self.rewind_short_pauses,
            BrowseCommand.REWIND_LONG_PAUSES: self.rewind_long_pauses,
            BrowseCommand.NEXT_PAGE: self.next_page,
            BrowseCommand.PREVIOUS_PAGE: self.previous_page,
            BrowseCommand.ADVANCE_PAGES: self.advance_pages,
            BrowseCommand.GOTO_PAGE: self.goto_page,
            BrowseCommand.FIND_PATTERN: self.find_pattern,
            BrowseCommand.SELECT_RELEVANT: self._select_relevant,
            BrowseCommand.RETURN_FROM_RELEVANT: self._return_from_relevant,
            BrowseCommand.NEXT_RELEVANT_VOICE: self.next_relevant_voice,
        }.get(command)
        if handler is None:
            unit = _UNIT_COMMANDS.get(command)
            if unit is None:  # pragma: no cover - exhaustive command table
                raise UnknownCommandError(f"no handler for {command.value!r}")
            kind, direction = unit
            return self.goto_unit(kind, direction)
        self._ws.trace.record(
            self._ws.clock.now, EventKind.COMMAND, command=command.value
        )
        return handler(**kwargs)

    # ------------------------------------------------------------------
    # playback
    # ------------------------------------------------------------------

    def open(self) -> None:
        """Present the object: branch to the beginning and start playing."""
        self._branch_to(0.0, play=True)

    def play(self) -> None:
        """Start voice output from the current position.

        Raises
        ------
        BrowsingError
            If already playing.
        """
        if self.is_playing:
            raise BrowsingError("already playing")
        self._start_output(self._position)

    def play_for(self, seconds: float) -> float:
        """Let playback run for ``seconds`` of simulated time.

        Starts output if necessary, advances the clock, fires any voice
        messages whose anchors are entered during the interval, and
        updates the pinned visual message.  Returns the new position.
        """
        if not self.is_playing:
            self.play()
        start = self.position
        span = min(seconds, self._total - start)
        self._ws.clock.advance(max(span, 0.0))
        end = self.position
        self._process_interval(start, end)
        if end >= self._total:
            self._settle(end)
        return end

    def play_to_end(self) -> float:
        """Play the remaining voice part to completion."""
        return self.play_for(self._total - self.position + 1e-9)

    def interrupt(self) -> float:
        """Interrupt voice output; returns the settled position."""
        if not self.is_playing:
            raise BrowsingError("not playing")
        position = self.position
        self._process_interval(self._playing_from, position)
        self._settle(position)
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.INTERRUPT_VOICE,
            label="voice_part",
            at_s=round(position, 3),
        )
        return position

    def resume(self) -> None:
        """Resume voice output from the current position."""
        if self.is_playing:
            raise BrowsingError("already playing")
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.RESUME_VOICE,
            label="voice_part",
            from_s=round(self._position, 3),
        )
        self._start_output(self._position)

    def resume_page_start(self) -> float:
        """Resume from the beginning of the current voice page."""
        page = self.current_page
        self._branch_to(page.start, play=True)
        return page.start

    def _start_output(self, from_position: float) -> None:
        # Voice output needs real samples: a lazily-shipped segment
        # decodes at its first playback, firing DECODE_VOICE via the
        # recording's on_decode hook.
        segment, _local = self.locate(from_position)
        segment.recording.materialize()
        self._playing_from = from_position
        self._playing_since = self._ws.clock.now
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.PLAY_VOICE,
            label="voice_part",
            from_s=round(from_position, 3),
        )
        self._update_visual_message(from_position)

    def _settle(self, position: float) -> None:
        self._position = position
        self._playing_since = None

    # ------------------------------------------------------------------
    # pause-based rewind
    # ------------------------------------------------------------------

    def rewind_short_pauses(self, count: int = 1) -> float:
        """Replay from ``count`` short pauses back from the current position."""
        return self._rewind(PauseKind.SHORT, count)

    def rewind_long_pauses(self, count: int = 1) -> float:
        """Replay from ``count`` long pauses back from the current position."""
        return self._rewind(PauseKind.LONG, count)

    def _rewind(self, kind: PauseKind, count: int) -> float:
        if self.is_playing:
            raise BrowsingError("interrupt before rewinding")
        segment, local = self.locate(self._position)
        target_local = segment.pause_index.rewind_position(local, kind, count)
        target = self._offsets[self._segments.index(segment)] + target_local
        self._branch_to(target, play=True)
        return target

    # ------------------------------------------------------------------
    # audio page browsing
    # ------------------------------------------------------------------

    def next_page(self) -> int:
        """Seek to the start of the next voice page and play."""
        number = min(self.current_page_number + 1, self.page_count)
        return self.goto_page(number)

    def previous_page(self) -> int:
        """Seek to the start of the previous voice page and play."""
        number = max(self.current_page_number - 1, 1)
        return self.goto_page(number)

    def advance_pages(self, count: int = 1) -> int:
        """Advance ``count`` voice pages forth (or back)."""
        number = min(max(self.current_page_number + count, 1), self.page_count)
        return self.goto_page(number)

    def goto_page(self, number: int) -> int:
        """Seek to voice page ``number`` and play.

        Raises
        ------
        NavigationError
            If the number is out of range.
        """
        if not 1 <= number <= self.page_count:
            raise NavigationError(
                f"voice page {number} out of range 1..{self.page_count}"
            )
        page = self._pager.page(number)
        self._branch_to(page.start, play=True)
        return number

    # ------------------------------------------------------------------
    # logical-unit browsing
    # ------------------------------------------------------------------

    def goto_unit(self, kind: LogicalUnitKind, direction: int) -> float:
        """Seek to the next/previous start of a logical unit and play.

        Raises
        ------
        NavigationError
            If no such unit exists in that direction.
        """
        position = self._position
        segment, local = self.locate(position)
        segment_index = self._segments.index(segment)
        order = (
            range(segment_index, len(self._segments))
            if direction > 0
            else range(segment_index, -1, -1)
        )
        for index in order:
            candidate = self._segments[index]
            reference = (
                local
                if index == segment_index
                else (-1.0 if direction > 0 else float("inf"))
            )
            unit = (
                candidate.logical_index.next_start(kind, reference)
                if direction > 0
                else candidate.logical_index.previous_start(kind, reference)
            )
            if unit is not None:
                target = self._offsets[index] + unit.start
                self._branch_to(target, play=True)
                return target
        raise NavigationError(
            f"no {'next' if direction > 0 else 'previous'} {kind.value}"
        )

    # ------------------------------------------------------------------
    # pattern search over recognized voice
    # ------------------------------------------------------------------

    def _index_for(self, segment: VoiceSegment) -> TextSearchIndex:
        key = segment.segment_id
        if key not in self._search_indexes:
            self._search_indexes[key] = TextSearchIndex.from_utterances(
                segment.utterances
            )
        return self._search_indexes[key]

    def find_pattern(self, pattern: str = "") -> int | None:
        """Seek to the next voice page with an occurrence of ``pattern``.

        The occurrence comes from the recognized utterances produced at
        insertion time — "voice recognition is not taking place at the
        time of browsing".  Returns the page number, or None.
        """
        if not pattern:
            raise BrowsingError("find_pattern needs a pattern")
        if self._last_find is not None and self._last_find[0] == pattern:
            after = self._last_find[1]
        else:
            after = self.position
        segment, local = self.locate(after)
        start_index = self._segments.index(segment)
        for index in range(start_index, len(self._segments)):
            candidate = self._segments[index]
            threshold = (after - self._offsets[index]) if index == start_index else -1.0
            hit = self._index_for(candidate).next_occurrence(pattern, threshold)
            if hit is not None:
                target = self._offsets[index] + hit
                self._last_find = (pattern, target)
                page = self._pager.page_at(target)
                self._ws.trace.record(
                    self._ws.clock.now,
                    EventKind.SEARCH_HIT,
                    pattern=pattern,
                    at_s=round(target, 3),
                    page=page.number,
                )
                self._branch_to(page.start, play=True)
                return page.number
        self._last_find = None
        return None

    # ------------------------------------------------------------------
    # branching and messages
    # ------------------------------------------------------------------

    def _branch_to(self, target: float, play: bool) -> None:
        """Seek to a position, firing branch-triggered messages.

        Voice logical messages anchored at the target fire *before* the
        related voice resumes ("the logical voice message is played
        before the voice of the related segment").
        """
        if self.is_playing:
            position = self.position
            self._process_interval(self._playing_from, position)
            self._settle(position)
        previous = self._voice_position(self._position)
        self._position = min(max(target, 0.0), self._total)
        current = self._voice_position(self._position)
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.SEEK_VOICE,
            label="voice_part",
            to_s=round(self._position, 3),
        )
        for message in self._messages.voice_messages_entering(previous, current):
            self._ws.audio.play_message(message.recording, str(message.message_id))
        self._update_visual_message(self._position)
        if play:
            self._start_output(self._position)

    def _voice_position(self, global_time: float) -> VoicePosition:
        segment, local = self.locate(global_time)
        return VoicePosition(segment_id=segment.segment_id, time=local)

    def _process_interval(self, start: float, end: float) -> None:
        """Fire messages whose anchors were entered during [start, end)."""
        if end <= start:
            return
        previous = self._voice_position(start)
        # Sample the interval at anchor boundaries: collect candidate
        # entry times from message anchors inside the window.
        entries: list[float] = []
        for message in self._obj.voice_messages:
            for anchor in message.anchors:
                anchor_start = getattr(anchor, "start", getattr(anchor, "time", None))
                segment_id = getattr(anchor, "segment_id", None)
                if anchor_start is None or segment_id is None:
                    continue
                index = next(
                    (
                        i
                        for i, s in enumerate(self._segments)
                        if s.segment_id == segment_id
                    ),
                    None,
                )
                if index is None:
                    continue
                global_anchor = self._offsets[index] + anchor_start
                if start < global_anchor <= end:
                    entries.append(global_anchor)
        for entry in sorted(entries):
            current = self._voice_position(min(entry + 1e-6, self._total))
            for message in self._messages.voice_messages_entering(previous, current):
                self._ws.audio.play_message(
                    message.recording, str(message.message_id)
                )
            previous = current
        self._update_visual_message(end)

    def _update_visual_message(self, global_time: float) -> None:
        """Pin/unpin the visual logical message for the current position."""
        segment, local = self.locate(min(global_time, self._total - 1e-9))
        covering = self._messages.visual_messages_for_voice(
            segment.segment_id, local
        )
        if covering:
            message = covering[0]
            name = str(message.message_id)
            if self._pinned_visual != name:
                bitmap = None
                if message.content.image_ids:
                    from repro.images.canvas import render_image

                    bitmap = render_image(
                        self._obj.image(message.content.image_ids[0])
                    )
                self._ws.screen.pin(name, text=message.content.text, bitmap=bitmap)
                self._pinned_visual = name
        elif self._pinned_visual is not None:
            self._ws.screen.unpin()
            self._pinned_visual = None

    # ------------------------------------------------------------------
    # relevant objects
    # ------------------------------------------------------------------

    def _visible_indicator_dicts(self) -> list[dict]:
        visible = []
        segment, local = self.locate(self._position)
        for link in self._obj.relevant_links:
            anchor = link.parent_anchor
            show = False
            if anchor is None:
                show = True
            else:
                covers = getattr(anchor, "covers", None)
                if (
                    covers is not None
                    and getattr(anchor, "segment_id", None) == segment.segment_id
                ):
                    show = covers(local)
            if show:
                visible.append(
                    {
                        "indicator": link.indicator_id.value,
                        "label": link.label,
                        "target": link.target_object_id.value,
                    }
                )
        return visible

    def visible_indicators(self) -> list[dict]:
        """The relevant-object indicators currently on display."""
        return self._visible_indicator_dicts()

    def _select_relevant(self, indicator: str = ""):
        if self._manager is None:
            raise BrowsingError(
                "relevant-object navigation needs a presentation manager"
            )
        return self._manager.select_relevant(self, indicator)

    def _return_from_relevant(self):
        if self._manager is None:
            raise BrowsingError(
                "relevant-object navigation needs a presentation manager"
            )
        return self._manager.return_from_relevant(self)

    def next_relevant_voice(self) -> bool:
        """Play the next voice relevance; False when exhausted."""
        if not self.relevant_voice_queue:
            return False
        segment_id, start, end = self.relevant_voice_queue.pop(0)
        segment = self._obj.voice_segment(segment_id)
        clip = segment.recording.slice(start, end)
        self._ws.audio.play_to_end(clip, f"relevance:{segment_id}")
        return True


class _GlobalPager:
    """Audio pages over the concatenated voice part."""

    def __init__(self, total: float, page_seconds: float) -> None:
        from repro.audio.signal import Recording
        import numpy as np

        # Reuse AudioPager's partitioning logic via a dummy recording of
        # the right duration (1 sample per page-second granularity would
        # distort lengths, so use a real-rate silent carrier).
        carrier = Recording(
            samples=np.zeros(max(int(total * 100), 1), dtype=np.float32),
            sample_rate=100,
        )
        self._pager = AudioPager(carrier, page_seconds=page_seconds)

    def __len__(self) -> int:
        return len(self._pager)

    def page(self, number: int) -> AudioPage:
        return self._pager.page(number)

    def page_at(self, position: float) -> AudioPage:
        return self._pager.page_at(position)
