"""Spoken pattern input.

"A user types a text pattern **or speaks a voice pattern which is
recognized**, and the system returns the next page with the occurrence
of this pattern in the object's text or voice."

Unlike content recognition (which happens at insertion time), the
user's *query utterance* is recognized at browse time — it is a few
words against a limited vocabulary, which 1986 devices handled
interactively.  The recognized terms become an ordinary pattern for
either session type.
"""

from __future__ import annotations

from repro.audio.recognition import VocabularyRecognizer
from repro.audio.signal import Recording
from repro.errors import RecognitionError


def recognize_pattern(
    utterance: Recording, recognizer: VocabularyRecognizer
) -> str:
    """Turn a spoken query into a text pattern.

    Returns the recognized terms joined in spoken order.

    Raises
    ------
    RecognitionError
        If nothing in the utterance is recognizable.
    """
    recognized = recognizer.recognize(utterance)
    if not recognized:
        raise RecognitionError(
            "no vocabulary word recognized in the spoken pattern"
        )
    ordered = sorted(recognized, key=lambda u: u.time)
    return " ".join(u.term for u in ordered)


def find_spoken_pattern(session, utterance: Recording,
                        recognizer: VocabularyRecognizer):
    """Recognize a spoken pattern and search the session for it.

    Works symmetrically on :class:`~repro.core.visual.VisualSession`
    and :class:`~repro.core.audio.AudioSession` — both expose
    ``find_pattern``.
    """
    pattern = recognize_pattern(utterance, recognizer)
    return session.find_pattern(pattern)
