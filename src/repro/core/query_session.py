"""The query-specification and sequential-browsing loop of Section 5.

"Users submit queries based on object content from their workstation...
Miniatures of qualifying objects may be returned to the user using a
sequential browsing interface...  When the user selects the miniature
of an object the multimedia object presentation manager undertakes the
responsibility to present the information of the selected object...
The user may interrupt this process and return back to the sequential
browsing interface or to the query specification interface to refine
his filter."

:class:`QueryBrowser` is that loop as a state machine:
``SPECIFYING → BROWSING → PRESENTING``, with explicit transitions back
to either earlier state.
"""

from __future__ import annotations

import enum

from repro.errors import BrowsingError, QueryError
from repro.ids import ObjectId
from repro.server.archiver import Archiver
from repro.server.query import MiniatureCard, QueryInterface


class QueryState(enum.Enum):
    """Where the user is in the query loop."""

    SPECIFYING = "specifying"
    BROWSING = "browsing"
    PRESENTING = "presenting"


class QueryBrowser:
    """Drives the query → miniatures → present → refine loop.

    Parameters
    ----------
    manager:
        A :class:`~repro.core.manager.PresentationManager` whose store
        is an archiver.
    """

    def __init__(self, manager) -> None:
        if not isinstance(manager._store, Archiver):
            raise BrowsingError("query browsing needs an archiver store")
        self._manager = manager
        self._interface = QueryInterface(manager._store, link=manager._link)
        self._state = QueryState.SPECIFYING
        self._terms: list[str] = []
        self._criteria: dict = {}
        self._result_ids: list[ObjectId] = []
        self._cursor = 0
        self._cards: list[MiniatureCard] = []

    @property
    def state(self) -> QueryState:
        """Current loop state."""
        return self._state

    @property
    def result_count(self) -> int:
        """Number of qualifying objects for the current filter."""
        return len(self._result_ids)

    @property
    def filter_description(self) -> str:
        """Human-readable current filter."""
        parts = []
        if self._terms:
            parts.append("terms: " + ", ".join(self._terms))
        if self._criteria:
            parts.append(
                "attributes: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self._criteria.items()))
            )
        return "; ".join(parts) if parts else "(no filter)"

    # ------------------------------------------------------------------
    # query specification
    # ------------------------------------------------------------------

    def specify(self, terms: list[str] | None = None, **criteria) -> int:
        """Set a fresh filter and evaluate it; returns the result count."""
        self._terms = list(terms or [])
        self._criteria = dict(criteria)
        return self._evaluate()

    def refine(self, extra_terms: list[str] | None = None, **extra_criteria) -> int:
        """Narrow the current filter (conjunctively) and re-evaluate.

        Raises
        ------
        QueryError
            If nothing is added.
        """
        if not extra_terms and not extra_criteria:
            raise QueryError("refinement must add terms or criteria")
        self._terms.extend(extra_terms or [])
        self._criteria.update(extra_criteria)
        return self._evaluate()

    def _evaluate(self) -> int:
        self._result_ids = self._interface.select(
            terms=self._terms or None, **self._criteria
        )
        self._cursor = 0
        self._cards = []
        self._state = QueryState.BROWSING
        return len(self._result_ids)

    # ------------------------------------------------------------------
    # sequential miniature browsing
    # ------------------------------------------------------------------

    def next_miniature(self) -> MiniatureCard | None:
        """Show the next miniature of the result stream (None at the end).

        Raises
        ------
        BrowsingError
            When not in the BROWSING state.
        """
        if self._state is not QueryState.BROWSING:
            raise BrowsingError(
                f"not browsing miniatures (state: {self._state.value})"
            )
        if self._cursor >= len(self._result_ids):
            return None
        # Materialize the stream lazily, one card per call.
        while len(self._cards) <= self._cursor:
            remaining = self._result_ids[len(self._cards):]
            card = next(iter(self._interface.miniature_stream(remaining[:1])))
            self._cards.append(card)
            self._manager.workstation.clock.advance(
                max(card.available_at_s, 0.0)
            )
        card = self._cards[self._cursor]
        self._cursor += 1
        return card

    # ------------------------------------------------------------------
    # presenting and returning
    # ------------------------------------------------------------------

    def select(self, card: MiniatureCard):
        """Open the object behind a miniature; enters PRESENTING."""
        if self._state is not QueryState.BROWSING:
            raise BrowsingError(
                f"select a miniature while browsing (state: {self._state.value})"
            )
        session = self._manager.open(card.object_id)
        self._state = QueryState.PRESENTING
        return session

    def back_to_miniatures(self) -> None:
        """Interrupt presentation, back to the sequential interface."""
        if self._state is not QueryState.PRESENTING:
            raise BrowsingError("not presenting an object")
        self._state = QueryState.BROWSING

    def back_to_query(self) -> None:
        """Return to the query-specification interface to refine."""
        self._state = QueryState.SPECIFYING
