"""The presentation manager.

"When the user selects the miniature of an object the multimedia object
presentation manager undertakes the responsibility to present the
information of the selected object.  The multimedia object presentation
manager will also facilitate the user in navigating from the current
object to other related objects...  The multimedia object presentation
manager resides in the user's workstation and requests the appropriate
pieces of information from the multimedia object server subsystems."

Two store backends are supported: a :class:`LocalStore` (objects held
in workstation memory — the editing-state preview path of Section 4)
and the :class:`~repro.server.archiver.Archiver`, in which case opening
an object moves real bytes over the :class:`~repro.server.network
.NetworkLink`, advancing the simulated clock — and, crucially, the
bitmaps of images that have an on-screen *representation* are **not**
shipped: views defined on the representation fetch only their window's
rows from the server (the C-VIEW claim).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Protocol, Union

import numpy as np

from repro.core.audio import AudioSession
from repro.core.visual import VisualSession
from repro.errors import BrowsingError, ObjectNotFoundError
from repro.ids import ImageId, ObjectId
from repro.images.bitmap import Bitmap
from repro.images.geometry import Rect
from repro.objects.model import DrivingMode, MultimediaObject, ObjectState
from repro.objects.relationships import RelevanceKind, RelevantLink
from repro.obs.context import bind as bind_span
from repro.obs.context import current as current_span
from repro.obs.spans import SpanKind as ObsSpanKind
from repro.obs.spans import SpanRecorder
from repro.obs.spans import SpanStatus as ObsSpanStatus
from repro.server.archiver import Archiver, _all_archiver
from repro.server.network import NetworkLink
from repro.server.query import MiniatureCard, QueryInterface
from repro.trace import EventKind
from repro.workstation.station import Workstation

Session = Union[VisualSession, AudioSession]


class ObjectStore(Protocol):
    """Anything the manager can fetch archived objects from."""

    def fetch_object(
        self, object_id: ObjectId
    ) -> tuple[MultimediaObject, float]:  # pragma: no cover - protocol
        ...


class LocalStore:
    """In-memory store: archived objects held at the workstation.

    Also usable for previewing editing-state objects with the same
    browsing software ("duplication of software is not required").
    """

    def __init__(self) -> None:
        self._objects: dict[ObjectId, MultimediaObject] = {}

    def add(self, obj: MultimediaObject) -> None:
        """Register an object for presentation."""
        self._objects[obj.object_id] = obj

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._objects

    def fetch_object(self, object_id: ObjectId) -> tuple[MultimediaObject, float]:
        """Fetch with zero simulated cost (local memory).

        Raises
        ------
        ObjectNotFoundError
            If the object was never added.
        """
        obj = self._objects.get(object_id)
        if obj is None:
            raise ObjectNotFoundError(f"local store has no object {object_id}")
        return obj, 0.0


@dataclass
class _DeferredImage:
    """A source image whose bitmap stays on the server."""

    tag: str
    width: int
    height: int


@dataclass
class _DecodedEntry:
    """One decoded-object cache entry."""

    obj: MultimediaObject
    version: int
    nbytes: int


class DecodedObjectCache:
    """LRU cache of rebuilt (decoded) objects at the workstation.

    The byte LRU in the server staging path caches *archive bytes*;
    this cache sits one tier up and holds the finished product of an
    open — descriptor parsed, pieces rebuilt, recognition injected — so
    a relevant-object excursion, a ``return_from_relevant`` or a tour
    re-visit re-opens the object with zero server requests and zero
    bytes shipped.

    Entries are memory-accounted by the composition bytes that were
    shipped to build them and evicted least-recently-used.  Every entry
    carries the archiver's version token at build time; a lookup with a
    newer token (bumped by :meth:`Archiver.attach_recognition`)
    invalidates the entry instead of serving stale utterances.
    """

    def __init__(self, capacity_bytes: int = 8 << 20) -> None:
        if capacity_bytes <= 0:
            raise BrowsingError(
                f"decoded-object cache capacity must be positive: {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[ObjectId, _DecodedEntry] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._entries

    def get(self, object_id: ObjectId, version: int) -> MultimediaObject | None:
        """The cached object, or None on miss or stale version token."""
        entry = self._entries.get(object_id)
        if entry is None:
            self.misses += 1
            return None
        if entry.version != version:
            self.invalidations += 1
            self.misses += 1
            self._drop(object_id)
            return None
        self._entries.move_to_end(object_id)
        self.hits += 1
        return entry.obj

    def put(
        self,
        object_id: ObjectId,
        obj: MultimediaObject,
        version: int,
        nbytes: int,
    ) -> None:
        """Insert (or replace) an entry, evicting LRU entries to fit.

        Objects larger than the whole cache are not admitted.
        """
        if object_id in self._entries:
            self._drop(object_id)
        if nbytes > self.capacity_bytes:
            return
        while self.used_bytes + nbytes > self.capacity_bytes and self._entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1
        self._entries[object_id] = _DecodedEntry(
            obj=obj, version=version, nbytes=nbytes
        )
        self.used_bytes += nbytes

    def invalidate(self, object_id: ObjectId) -> bool:
        """Explicitly drop an entry; True if one was present."""
        if object_id not in self._entries:
            return False
        self.invalidations += 1
        self._drop(object_id)
        return True

    def _drop(self, object_id: ObjectId) -> None:
        entry = self._entries.pop(object_id)
        self.used_bytes -= entry.nbytes


@dataclass
class _StackEntry:
    """One level of relevant-object nesting."""

    session: Session
    link: RelevantLink | None = None
    parent_composite: Bitmap | None = field(default=None, repr=False)


class PresentationManager:
    """Presents archived objects onto a workstation.

    Parameters
    ----------
    store:
        Where objects come from: a :class:`LocalStore` or an
        :class:`~repro.server.archiver.Archiver`.
    workstation:
        The user's workstation.
    link:
        Network model used when the store is a remote archiver.
    """

    def __init__(
        self,
        store: ObjectStore,
        workstation: Workstation,
        link: NetworkLink | None = None,
        *,
        batch_open: bool = True,
        decoded_cache_bytes: int = 8 << 20,
        obs: SpanRecorder | None = None,
    ) -> None:
        self._store = store
        self._ws = workstation
        self._link = link or NetworkLink()
        #: Optional span recorder; when set, every user-visible request
        #: (open / navigate / search) roots one span tree and the store
        #: layers below nest their spans under it via the ambient
        #: context (docs/OBSERVABILITY.md).
        self.obs = obs
        if obs is not None:
            if obs.clock is None:
                obs.clock = lambda: self._ws.clock.now
            if hasattr(self._store, "obs"):
                self._store.obs = obs
        self._stack: list[_StackEntry] = []
        self._deferred: dict[ObjectId, dict[ImageId, _DeferredImage]] = {}
        self.bytes_shipped = 0
        #: When True (the default), an open collects every piece read
        #: into one scatter-gather server request instead of one
        #: round-trip per piece.  False keeps the sequential path — the
        #: baseline the C-OPEN benchmark measures against.
        self.batch_open = batch_open
        self.decoded_cache = DecodedObjectCache(decoded_cache_bytes)

    @property
    def workstation(self) -> Workstation:
        """The workstation the manager presents onto."""
        return self._ws

    @property
    def current_session(self) -> Session | None:
        """The session the user is currently browsing (top of stack)."""
        return self._stack[-1].session if self._stack else None

    @property
    def nesting_depth(self) -> int:
        """How many relevant objects deep the user currently is."""
        return max(len(self._stack) - 1, 0)

    # ------------------------------------------------------------------
    # opening objects
    # ------------------------------------------------------------------

    def open(self, object_id: ObjectId) -> Session:
        """Open an object as the root browsing session and display it."""
        if self.obs is not None:
            active = self.obs.start(
                None, "open", ObsSpanKind.REQUEST, self._ws.clock.now,
                baggage={
                    "station": self._ws.name, "object": str(object_id),
                },
            )
            try:
                with bind_span(active.context):
                    session = self._make_session(object_id)
            except Exception as exc:
                active.finish(
                    self._ws.clock.now, status=ObsSpanStatus.ERROR,
                    error=type(exc).__name__,
                )
                raise
            active.finish(
                active.start_s + session.open_cost_s,
                open_cost_s=round(session.open_cost_s, 9),
            )
        else:
            session = self._make_session(object_id)
        self._stack = [_StackEntry(session=session)]
        session.open()
        # The menu options "are presented in the form of menu options"
        # alongside the object; record what the user was offered.
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.MENU_SHOWN,
            object=str(object_id),
            options=len(session.menu),
        )
        return session

    def _make_session(self, object_id: ObjectId) -> Session:
        obj, cost = self._fetch(object_id)
        if obj.state is not ObjectState.ARCHIVED:
            raise BrowsingError(
                f"object {object_id} is not archived; archive before presenting"
            )
        if obj.driving_mode is DrivingMode.AUDIO:
            session: Session = AudioSession(obj, self._ws, manager=self)
        else:
            session = VisualSession(obj, self._ws, manager=self)
        # The fetch cost (disk service + network) is part of what the
        # user waited for; keep it on the session for traces/benchmarks.
        session.open_cost_s = cost
        return session

    def _fetch(self, object_id: ObjectId) -> tuple[MultimediaObject, float]:
        if not isinstance(self._store, Archiver):
            obj, cost = self._store.fetch_object(object_id)
            return obj, cost

        # Archiver path: fetch pieces selectively, deferring the
        # bitmaps of images that have a representation in the object —
        # views over the representation fetch windows later.
        from repro.formatter.builder import rebuild_object

        version = self._store.version_of(object_id)
        cached = self.decoded_cache.get(object_id, version)
        if cached is not None:
            # Warm open: the decoded object is already at the
            # workstation — no server requests, zero bytes shipped.
            if self.obs is not None:
                now = self._ws.clock.now
                self.obs.emit(
                    current_span(), "decoded_cache", ObsSpanKind.CACHE,
                    now, now, hit=True, object=str(object_id),
                )
            self._ws.trace.record(
                self._ws.clock.now,
                EventKind.TRANSFER,
                object=str(object_id),
                bytes=0,
                service_s=0.0,
                network_s=0.0,
                decoded_cache="hit",
            )
            return cached, 0.0

        record = self._store.record(object_id)
        descriptor = _all_archiver(record.descriptor)
        # _all_archiver already shallow-copies ``extra``; the only
        # mutation below is popping ``bitmap_tag`` out of image payload
        # dicts, so copying the image list and its dicts is enough — no
        # need to deep-copy every nested graphics/label structure.
        extra = dict(descriptor.extra)
        if "images" in extra:
            extra["images"] = [dict(payload) for payload in extra["images"]]
        deferred: dict[ImageId, _DeferredImage] = {}
        represented = {
            payload["source_image_id"]
            for payload in extra.get("images", [])
            if payload.get("is_representation") and "source_image_id" in payload
        }
        for payload in extra.get("images", []):
            if payload["image_id"] in represented and "bitmap_tag" in payload:
                deferred[ImageId(payload["image_id"])] = _DeferredImage(
                    tag=payload.pop("bitmap_tag"),
                    width=payload["width"],
                    height=payload["height"],
                )
        descriptor.extra.clear()
        descriptor.extra.update(extra)

        total_cost = 0.0
        shipped = 0

        if self.batch_open:
            # Piece-read planner: every piece the rebuild will touch is
            # known from the descriptor (all locations minus deferred
            # bitmaps), so collect them into ONE scatter-gather server
            # request instead of a round-trip per piece.
            deferred_tags = {info.tag for info in deferred.values()}
            ranges = [
                (location.offset, location.length)
                for location in descriptor.locations
                if location.tag not in deferred_tags
            ]
            payloads, service = self._store.read_scattered(ranges)
            staged = {
                key: data for key, data in zip(ranges, payloads)
            }
            total_cost += service
            shipped += sum(length for _offset, length in ranges)

            def archiver_read(offset: int, length: int) -> bytes:
                nonlocal total_cost, shipped
                data = staged.get((offset, length))
                if data is not None:
                    return data
                # Fallback for reads outside the plan (defensive; the
                # descriptor enumerates every piece the rebuild uses).
                extra_data, service = self._store.read_absolute(offset, length)
                total_cost += service
                shipped += length
                return extra_data

        else:

            def archiver_read(offset: int, length: int) -> bytes:
                nonlocal total_cost, shipped
                data, service = self._store.read_absolute(offset, length)
                total_cost += service
                shipped += length
                return data

        obj = rebuild_object(descriptor, b"", archiver_read=archiver_read)
        side_table = self._store.recognition_for(object_id)
        if side_table:
            for segment in obj.voice_segments:
                extra = side_table.get(segment.segment_id)
                if extra and not segment.utterances:
                    segment.utterances = list(extra)
        # Voice segments arrive with companded bytes only; hook the
        # one-shot decode trace so the first playback is observable.
        for segment in obj.voice_segments:
            recording = segment.recording
            if not recording.is_materialized and recording.on_decode is None:
                recording.on_decode = self._decode_tracer(segment.segment_id)
        network = self._link.transfer_time(shipped)
        if self.obs is not None:
            t0 = self._ws.clock.now
            parent = current_span()
            self.obs.emit(
                parent, "archiver_read", ObsSpanKind.DEVICE,
                t0, t0 + total_cost, bytes=shipped,
                object=str(object_id),
            )
            self.obs.emit(
                parent, "ship", ObsSpanKind.NETWORK,
                t0 + total_cost, t0 + total_cost + network, bytes=shipped,
            )
        self._ws.clock.advance(total_cost + network)
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.TRANSFER,
            object=str(object_id),
            bytes=shipped,
            service_s=round(total_cost, 4),
            network_s=round(network, 4),
        )
        self.bytes_shipped += shipped
        self._deferred[object_id] = deferred
        self.decoded_cache.put(object_id, obj, version, nbytes=shipped)
        return obj, total_cost + network

    def _decode_tracer(self, segment_id):
        def on_decode(recording) -> None:
            self._ws.trace.record(
                self._ws.clock.now,
                EventKind.DECODE_VOICE,
                segment=str(segment_id),
                samples=recording.n_samples,
            )

        return on_decode

    # ------------------------------------------------------------------
    # server-backed views
    # ------------------------------------------------------------------

    def view_data_source(self, obj: MultimediaObject, image):
        """A window-fetching data source for views on ``image``.

        Returns None when the image's data is local (the view crops the
        in-memory bitmap).  For representations of deferred source
        images, returns a callable that reads only the window's rows
        from the archiver and charges disk + network time.
        """
        if not isinstance(self._store, Archiver):
            return None
        if not image.is_representation or image.source_image_id is None:
            return None
        deferred = self._deferred.get(obj.object_id, {})
        info = deferred.get(image.source_image_id)
        if info is None:
            return None
        archiver: Archiver = self._store
        object_id = obj.object_id

        def fetch_window(rect: Rect) -> Bitmap:
            ranges = [
                ((rect.y + row) * info.width + rect.x, rect.width)
                for row in range(rect.height)
            ]
            rows, service = archiver.read_piece_rows(object_id, info.tag, ranges)
            payload = b"".join(rows)
            network = self._link.transfer_time(len(payload))
            self._ws.clock.advance(service + network)
            self.bytes_shipped += len(payload)
            self._ws.trace.record(
                self._ws.clock.now,
                EventKind.TRANSFER,
                object=str(object_id),
                piece=info.tag,
                bytes=len(payload),
                service_s=round(service, 4),
                network_s=round(network, 4),
            )
            pixels = np.frombuffer(payload, dtype=np.uint8).reshape(
                rect.height, rect.width
            )
            return Bitmap(pixels.copy())

        return fetch_window

    # ------------------------------------------------------------------
    # relevant-object navigation
    # ------------------------------------------------------------------

    def in_relevant(self, session: Session) -> bool:
        """Whether ``session`` is a relevant object (non-root level)."""
        for depth, entry in enumerate(self._stack):
            if entry.session is session:
                return depth > 0
        return False

    def select_relevant(self, session: Session, indicator: str) -> Session:
        """Branch into a relevant object via its indicator.

        The child session browses "by using the driving mode of the
        relevant object"; relevances are materialized on it (text
        highlight events, image polygons, queued voice segments).
        When the child's presentation is a transparency over the
        parent's display (Figures 7-8), the parent's raster seeds the
        child's compositing base.

        Raises
        ------
        BrowsingError
            If the indicator is not currently visible, or ``session``
            is not the top of the navigation stack.
        """
        if not self._stack or self._stack[-1].session is not session:
            raise BrowsingError("only the current session can branch")
        link = self._find_visible_link(session, indicator)
        parent_composite = self._ws.screen.composite
        if self.obs is not None:
            active = self.obs.start(
                None, "navigate", ObsSpanKind.REQUEST, self._ws.clock.now,
                baggage={
                    "station": self._ws.name,
                    "object": str(link.target_object_id),
                },
                indicator=indicator, depth=len(self._stack),
            )
            try:
                with bind_span(active.context):
                    child = self._make_session(link.target_object_id)
            except Exception as exc:
                active.finish(
                    self._ws.clock.now, status=ObsSpanStatus.ERROR,
                    error=type(exc).__name__,
                )
                raise
            active.finish(
                active.start_s + child.open_cost_s,
                open_cost_s=round(child.open_cost_s, 9),
            )
        else:
            child = self._make_session(link.target_object_id)
        self._materialize_relevances(child, link)
        if isinstance(child, VisualSession) and parent_composite is not None:
            child.inherited_base = parent_composite
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.ENTER_RELEVANT,
            indicator=indicator,
            target=str(link.target_object_id),
            depth=len(self._stack),
        )
        self._stack.append(
            _StackEntry(
                session=child, link=link, parent_composite=parent_composite
            )
        )
        child.open()
        return child

    def return_from_relevant(self, session: Session) -> Session:
        """Return to the parent object, re-establishing its browsing mode.

        Raises
        ------
        BrowsingError
            If ``session`` is not the current relevant object.
        """
        if len(self._stack) < 2 or self._stack[-1].session is not session:
            raise BrowsingError("not inside a relevant object")
        entry = self._stack.pop()
        parent = self._stack[-1].session
        self._ws.trace.record(
            self._ws.clock.now,
            EventKind.RETURN_RELEVANT,
            target=str(parent.object.object_id),
            depth=len(self._stack) - 1,
        )
        if isinstance(parent, VisualSession):
            if parent.current_page_number:
                parent.goto_page(parent.current_page_number)
        else:
            parent._update_visual_message(parent.position)
        __ = entry
        return parent

    def _find_visible_link(self, session: Session, indicator: str) -> RelevantLink:
        visible = {d["indicator"] for d in session.visible_indicators()}
        for link in session.object.relevant_links:
            if link.indicator_id.value == indicator:
                if indicator not in visible:
                    raise BrowsingError(
                        f"indicator {indicator!r} is not currently displayed"
                    )
                return link
        raise BrowsingError(f"object has no relevant-object indicator {indicator!r}")

    def _materialize_relevances(self, child: Session, link: RelevantLink) -> None:
        for relevance in link.relevances:
            if relevance.kind is RelevanceKind.TEXT:
                self._ws.trace.record(
                    self._ws.clock.now,
                    EventKind.HIGHLIGHT,
                    relevance="text",
                    segment=str(relevance.segment_id),
                    span=f"{relevance.text_start}-{relevance.text_end}",
                )
            elif relevance.kind is RelevanceKind.IMAGE:
                if isinstance(child, VisualSession):
                    child.relevance_regions.setdefault(
                        relevance.image_id, []
                    ).append(relevance.region)
            elif relevance.kind is RelevanceKind.VOICE:
                child.relevant_voice_queue.append(
                    (
                        relevance.segment_id,
                        relevance.voice_start,
                        relevance.voice_end,
                    )
                )

    # ------------------------------------------------------------------
    # miniature browsing interface
    # ------------------------------------------------------------------

    def browse_by_content(
        self, terms: list[str] | None = None, **criteria
    ) -> Iterator[MiniatureCard]:
        """Query the server and stream miniatures of qualifying objects.

        Each yielded card is also traced as MINIATURE_SHOWN and the
        clock advances to the card's arrival time.  Select a card with
        :meth:`open` on its ``object_id``.

        Raises
        ------
        BrowsingError
            If the store is not a server archiver.
        """
        if not isinstance(self._store, Archiver):
            raise BrowsingError("content queries need an archiver store")
        interface = QueryInterface(self._store, link=self._link)
        if self.obs is not None:
            active = self.obs.start(
                None, "search", ObsSpanKind.REQUEST, self._ws.clock.now,
                baggage={"station": self._ws.name},
                terms=list(terms) if terms else [],
            )
            with bind_span(active.context):
                object_ids = interface.select(terms=terms, **criteria)
            active.finish(self._ws.clock.now, results=len(object_ids))
        else:
            object_ids = interface.select(terms=terms, **criteria)
        for card in interface.miniature_stream(object_ids):
            self._ws.clock.advance_to(card.available_at_s)
            self._ws.trace.record(
                self._ws.clock.now,
                EventKind.MINIATURE_SHOWN,
                object=str(card.object_id),
                mode=card.driving_mode,
                bytes=card.nbytes,
            )
            yield card
