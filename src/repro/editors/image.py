"""The image editor.

Adds, removes and labels graphics objects on an image, and produces the
image's *final form* — "when the editing of an image is completed its
archival form (which is device and software package independent) is
produced.  The presentation interface of the archiver expects always
the data in its final form."
"""

from __future__ import annotations

from repro.audio.signal import Recording
from repro.errors import FormationError, ImageError
from repro.images.geometry import Point
from repro.images.graphics import GraphicsObject, Label, LabelKind
from repro.images.image import Image


class ImageEditor:
    """Edits one image's graphics objects and labels."""

    def __init__(self, image: Image) -> None:
        if image.is_representation:
            raise ImageError("representations are derived; edit the source image")
        self._image = image
        self._graphics: list[GraphicsObject] = list(image.graphics)
        self._final = False

    @property
    def is_final(self) -> bool:
        """Whether :meth:`finalize` has produced the archival form."""
        return self._final

    @property
    def object_names(self) -> list[str]:
        """Names of all graphics objects in the working copy."""
        return [g.name for g in self._graphics]

    # ------------------------------------------------------------------
    # graphics editing
    # ------------------------------------------------------------------

    def add_object(self, obj: GraphicsObject) -> None:
        """Add a graphics object.

        Raises
        ------
        FormationError
            On a duplicate name or after finalization.
        """
        self._require_editable()
        if any(g.name == obj.name for g in self._graphics):
            raise FormationError(f"object {obj.name!r} already exists")
        self._graphics.append(obj)

    def remove_object(self, name: str) -> GraphicsObject:
        """Remove a graphics object by name."""
        self._require_editable()
        for index, obj in enumerate(self._graphics):
            if obj.name == name:
                return self._graphics.pop(index)
        raise FormationError(f"no graphics object {name!r}")

    def attach_text_label(
        self, name: str, text: str, position: Point, invisible: bool = False
    ) -> None:
        """Attach (or replace with) a text label."""
        self._require_editable()
        kind = LabelKind.INVISIBLE_TEXT if invisible else LabelKind.TEXT
        self._replace_label(name, Label(kind, text, position))

    def attach_voice_label(
        self,
        name: str,
        transcript: str,
        position: Point,
        recording: Recording,
        invisible: bool = False,
    ) -> None:
        """Attach (or replace with) a voice label."""
        self._require_editable()
        kind = LabelKind.INVISIBLE_VOICE if invisible else LabelKind.VOICE
        self._replace_label(
            name, Label(kind, transcript, position, voice=recording)
        )

    def remove_label(self, name: str) -> None:
        """Strip the label from an object."""
        self._require_editable()
        self._replace_label(name, None)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def finalize(self) -> Image:
        """Produce the archival (final-form) image.

        The editor becomes read-only afterwards; further edits need a
        fresh editor on the returned image.
        """
        self._final = True
        return Image(
            image_id=self._image.image_id,
            width=self._image.width,
            height=self._image.height,
            bitmap=self._image.bitmap.copy() if self._image.bitmap else None,
            graphics=list(self._graphics),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_editable(self) -> None:
        if self._final:
            raise FormationError(
                "image already finalized; its archival form is immutable"
            )

    def _replace_label(self, name: str, label: Label | None) -> None:
        for index, obj in enumerate(self._graphics):
            if obj.name == name:
                self._graphics[index] = GraphicsObject(
                    name=obj.name,
                    shape=obj.shape,
                    label=label,
                    intensity=obj.intensity,
                    filled=obj.filled,
                )
                return
        raise FormationError(f"no graphics object {name!r}")
