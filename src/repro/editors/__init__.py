"""The MINOS editors (Section 4).

"There is a number of editors in MINOS.  These editors are responsible
for the interactive generation and editing of text, image and voice
data."  The paper does not detail their operation ("their functionality
is similar to other editors described in the literature"), so this
package provides the operations the rest of the paper *depends on*:

* :class:`~repro.editors.text.TextEditor` — line/region editing of
  markup with undo, preserving directive structure;
* :class:`~repro.editors.voice.VoiceEditor` — cut/splice of digitized
  voice, and the manual identification of logical components "by
  pressing the appropriate buttons (or at some later point in time)";
* :class:`~repro.editors.image.ImageEditor` — adding and labelling
  graphics objects on an image, producing its final (archival) form.

All editors operate on objects in the EDITING state only.
"""

from repro.editors.text import TextEditor
from repro.editors.voice import VoiceEditor
from repro.editors.image import ImageEditor

__all__ = ["ImageEditor", "TextEditor", "VoiceEditor"]
