"""The text editor: line-oriented markup editing with undo.

Edits target a :class:`~repro.objects.parts.TextSegment`'s markup.
Because the segment caches its parsed document, every commit replaces
the segment's markup through :meth:`TextEditor.commit`, which returns a
*fresh* segment — the formation workflow then re-derives pagination,
exactly the "part of the descriptor file and the composition file may
have to be deleted and recreated" behaviour of Section 4.
"""

from __future__ import annotations

from repro.errors import FormationError
from repro.objects.parts import TextSegment
from repro.text.markup import parse_markup


class TextEditor:
    """Edits the markup of one text segment.

    The editor holds the working copy as a list of lines; every
    mutating operation pushes an undo snapshot.
    """

    def __init__(self, segment: TextSegment) -> None:
        self._segment = segment
        self._lines = segment.markup.splitlines()
        self._undo: list[list[str]] = []

    @property
    def line_count(self) -> int:
        """Number of lines in the working copy."""
        return len(self._lines)

    @property
    def text(self) -> str:
        """The current working markup."""
        return "\n".join(self._lines)

    def line(self, index: int) -> str:
        """Read one line (0-based).

        Raises
        ------
        FormationError
            If the index is out of range.
        """
        self._check(index)
        return self._lines[index]

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def insert_line(self, index: int, text: str) -> None:
        """Insert ``text`` as a new line before ``index``."""
        if not 0 <= index <= len(self._lines):
            raise FormationError(f"insert position {index} out of range")
        self._snapshot()
        self._lines.insert(index, text)

    def delete_lines(self, start: int, count: int = 1) -> None:
        """Delete ``count`` lines starting at ``start``."""
        self._check(start)
        if count < 1 or start + count > len(self._lines):
            raise FormationError(
                f"cannot delete {count} lines at {start} of {len(self._lines)}"
            )
        self._snapshot()
        del self._lines[start: start + count]

    def replace_line(self, index: int, text: str) -> None:
        """Replace one line."""
        self._check(index)
        self._snapshot()
        self._lines[index] = text

    def append_paragraph(self, text: str) -> None:
        """Append a paragraph (blank-line separated) at the end."""
        self._snapshot()
        if self._lines and self._lines[-1].strip():
            self._lines.append("")
        self._lines.append(text)

    def insert_chapter(self, index: int, title: str) -> None:
        """Insert a chapter directive before line ``index``."""
        self.insert_line(index, f"@chapter{{{title}}}")

    def undo(self) -> bool:
        """Revert the last mutation; False if nothing to undo."""
        if not self._undo:
            return False
        self._lines = self._undo.pop()
        return True

    # ------------------------------------------------------------------
    # committing
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Parse the working copy, raising on malformed markup."""
        parse_markup(self.text)

    def commit(self) -> TextSegment:
        """Produce a fresh segment with the edited markup.

        Raises
        ------
        MarkupError
            If the working copy does not parse.
        """
        self.validate()
        return TextSegment(segment_id=self._segment.segment_id, markup=self.text)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _snapshot(self) -> None:
        self._undo.append(list(self._lines))

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._lines):
            raise FormationError(
                f"line {index} out of range 0..{len(self._lines) - 1}"
            )
