"""The voice editor.

Supports the two editing activities the paper relies on:

* **waveform editing** — cutting a span and splicing recordings, with
  annotation bookkeeping (ground-truth word marks shift with the cut);
* **logical marking** — "the logical components of voice may be
  manually identified at the time of the insertion by pressing the
  appropriate buttons (or at some later point in time)".  The editor
  collects button presses (``mark_start``/``mark_end``) and builds the
  segment's :class:`~repro.objects.logical.LogicalIndex`, honouring
  the paper's point that "the degree of desired editing varies
  according to the importance of information": mark only chapters, or
  chapters and sections, or nothing at all.
"""

from __future__ import annotations

import numpy as np

from repro.audio.signal import Recording, TimedWord
from repro.errors import AudioError, FormationError
from repro.objects.logical import LogicalIndex, LogicalUnit, LogicalUnitKind
from repro.objects.parts import VoiceSegment


class VoiceEditor:
    """Edits one voice segment's recording and logical marks."""

    def __init__(self, segment: VoiceSegment) -> None:
        self._segment = segment
        self._recording = segment.recording
        self._open_marks: dict[LogicalUnitKind, tuple[float, str]] = {}
        self._units: list[LogicalUnit] = list(segment.logical_index.roots)

    @property
    def duration(self) -> float:
        """Working-copy duration in seconds."""
        return self._recording.duration

    @property
    def recording(self) -> Recording:
        """The working-copy recording."""
        return self._recording

    # ------------------------------------------------------------------
    # waveform editing
    # ------------------------------------------------------------------

    def cut(self, start: float, end: float) -> Recording:
        """Remove ``[start, end)`` seconds; returns the removed clip.

        Word/sentence/paragraph annotations inside the cut are dropped;
        those after it shift left.

        Raises
        ------
        AudioError
            On an empty or out-of-range span.
        """
        if not 0 <= start < end <= self.duration + 1e-9:
            raise AudioError(f"cut span [{start}, {end}) out of range")
        removed = self._recording.slice(start, end)
        rate = self._recording.sample_rate
        i0, i1 = int(start * rate), int(end * rate)
        samples = np.concatenate(
            [self._recording.samples[:i0], self._recording.samples[i1:]]
        )
        shift = end - start

        def keep_and_shift(time: float) -> float | None:
            if time < start:
                return time
            if time >= end:
                return time - shift
            return None

        words = []
        for word in self._recording.words:
            new_start = keep_and_shift(word.start)
            new_end = keep_and_shift(word.end)
            if new_start is not None and new_end is not None:
                words.append(TimedWord(word.word, new_start, new_end))
        self._recording = Recording(
            samples=samples,
            sample_rate=rate,
            words=words,
            sentence_ends=[
                t for t in map(keep_and_shift, self._recording.sentence_ends)
                if t is not None
            ],
            paragraph_ends=[
                t for t in map(keep_and_shift, self._recording.paragraph_ends)
                if t is not None
            ],
            speaker=self._recording.speaker,
        )
        return removed

    def splice(self, position: float, clip: Recording) -> None:
        """Insert ``clip`` at ``position`` seconds.

        Raises
        ------
        AudioError
            If sample rates differ or the position is out of range.
        """
        if clip.sample_rate != self._recording.sample_rate:
            raise AudioError(
                f"sample-rate mismatch: {clip.sample_rate} vs "
                f"{self._recording.sample_rate}"
            )
        if not 0 <= position <= self.duration + 1e-9:
            raise AudioError(f"splice position {position} out of range")
        rate = self._recording.sample_rate
        i = int(position * rate)
        shift = clip.duration
        samples = np.concatenate(
            [
                self._recording.samples[:i],
                clip.samples,
                self._recording.samples[i:],
            ]
        )

        def shifted(time: float) -> float:
            return time + shift if time >= position else time

        words = [
            TimedWord(w.word, shifted(w.start), shifted(w.end))
            for w in self._recording.words
        ]
        words.extend(
            TimedWord(w.word, w.start + position, w.end + position)
            for w in clip.words
        )
        words.sort(key=lambda w: w.start)
        self._recording = Recording(
            samples=samples,
            sample_rate=rate,
            words=words,
            sentence_ends=sorted(
                [shifted(t) for t in self._recording.sentence_ends]
                + [t + position for t in clip.sentence_ends]
            ),
            paragraph_ends=sorted(
                [shifted(t) for t in self._recording.paragraph_ends]
                + [t + position for t in clip.paragraph_ends]
            ),
            speaker=self._recording.speaker,
        )

    # ------------------------------------------------------------------
    # logical marking ("pressing the appropriate buttons")
    # ------------------------------------------------------------------

    def mark_start(
        self, kind: LogicalUnitKind, time: float, label: str = ""
    ) -> None:
        """Press the "start of <unit>" button at ``time``.

        Raises
        ------
        FormationError
            If a unit of this kind is already open.
        """
        if kind in self._open_marks:
            raise FormationError(f"a {kind.value} is already open")
        if not 0 <= time <= self.duration + 1e-9:
            raise FormationError(f"mark time {time} out of range")
        self._open_marks[kind] = (time, label)

    def mark_end(self, kind: LogicalUnitKind, time: float) -> LogicalUnit:
        """Press the "end of <unit>" button at ``time``.

        Raises
        ------
        FormationError
            If no unit of this kind is open, or the end precedes the
            start.
        """
        if kind not in self._open_marks:
            raise FormationError(f"no open {kind.value} to end")
        start, label = self._open_marks.pop(kind)
        if time < start:
            raise FormationError(
                f"{kind.value} end {time} precedes its start {start}"
            )
        unit = LogicalUnit(kind, start, min(time, self.duration), label)
        self._units.append(unit)
        return unit

    def marked_units(self, kind: LogicalUnitKind | None = None) -> list[LogicalUnit]:
        """Units marked so far (optionally of one kind), in time order."""
        units = [
            u for u in self._units if kind is None or u.kind is kind
        ]
        return sorted(units, key=lambda u: u.start)

    # ------------------------------------------------------------------
    # committing
    # ------------------------------------------------------------------

    def commit(self) -> VoiceSegment:
        """Produce a fresh segment with the edits and marks applied.

        Recognized utterances are *not* carried over: after waveform
        edits the insertion-time recognition must be re-run (or done
        at idle time), exactly as in the paper.

        Raises
        ------
        FormationError
            If any logical mark is still open.
        """
        if self._open_marks:
            open_kinds = ", ".join(k.value for k in self._open_marks)
            raise FormationError(f"unclosed logical marks: {open_kinds}")
        roots = _nest_units(self.marked_units())
        return VoiceSegment(
            segment_id=self._segment.segment_id,
            recording=self._recording,
            logical_index=LogicalIndex(roots),
            utterances=[],
        )


def _nest_units(units: list[LogicalUnit]) -> list[LogicalUnit]:
    """Nest marked units by rank and containment (chapters > sections...)."""
    roots: list[LogicalUnit] = []
    stack: list[LogicalUnit] = []
    for unit in sorted(units, key=lambda u: (u.start, u.kind.rank)):
        fresh = LogicalUnit(unit.kind, unit.start, unit.end, unit.label)
        while stack and (
            stack[-1].end <= fresh.start
            or stack[-1].kind.rank >= fresh.kind.rank
        ):
            stack.pop()
        if stack:
            stack[-1].children.append(fresh)
        else:
            roots.append(fresh)
        stack.append(fresh)
    return roots
