"""The codec registry: raw media bytes to smaller bytes and back.

Three real codecs plus an identity fallback, each picked by the *kind*
of the data piece being archived (the formatter knows the kind; the
frame records the codec, so decode needs neither):

``rle8``
    Byte-delta followed by PackBits-style run-length coding, for 8-bit
    greyscale rasters.  Scanned documents and synthetic maps are
    locally smooth, so the delta stream collapses into long runs.

``dvarint``
    Byte-delta with zero-runs escaped as ``0x00`` + varint run length,
    for mu-law voice.  Silence (and any held sample) deltas to zero;
    busy speech stays byte-for-byte and falls back to ``stored``.

``deflate``
    ``zlib`` for text markup and structured metadata pieces.

``stored``
    Identity.  :func:`repro.compress.frame.encode_piece` falls back to
    it automatically whenever a codec fails to pay, so compression
    never inflates a piece beyond the fixed frame header.

Every encoder is deterministic: the shared-data length check in the
formatter relies on two formations of the same bytes producing the
same stored length.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import MediaCodecError

#: Codec identifiers as stored in the frame header (one byte).
STORED = 0
RLE8 = 1
DVARINT = 2
DEFLATE = 3

_CODEC_NAMES = {
    STORED: "stored",
    RLE8: "rle8",
    DVARINT: "dvarint",
    DEFLATE: "deflate",
}

#: Piece kind (as named by the blob registry) -> preferred codec.
_CODEC_FOR_KIND = {
    "image": RLE8,
    "voice": DVARINT,
    "message_voice": DVARINT,
    "label_voice": DVARINT,
    "text": DEFLATE,
    "meta": DEFLATE,
}


def codec_name(codec_id: int) -> str:
    """Human name of a codec id (for metrics and traces)."""
    name = _CODEC_NAMES.get(codec_id)
    if name is None:
        raise MediaCodecError(f"unknown codec id {codec_id}")
    return name


def codec_for_kind(kind) -> int:
    """The preferred codec for a piece kind (enum or registry name)."""
    return _CODEC_FOR_KIND.get(str(getattr(kind, "value", kind)), DEFLATE)


# ----------------------------------------------------------------------
# shared delta transform
# ----------------------------------------------------------------------


def _delta(raw: bytes) -> np.ndarray:
    arr = np.frombuffer(raw, dtype=np.uint8)
    delta = arr.copy()
    delta[1:] -= arr[:-1]  # uint8 arithmetic wraps mod 256
    return delta


def _undelta(delta: np.ndarray) -> bytes:
    return np.cumsum(delta, dtype=np.uint8).tobytes()


# ----------------------------------------------------------------------
# rle8: delta + PackBits
# ----------------------------------------------------------------------


def rle8_encode(raw: bytes) -> bytes:
    """Delta the bytes, then PackBits the delta stream."""
    if not raw:
        return b""
    data = _delta(raw)
    n = len(data)
    boundaries = np.flatnonzero(data[1:] != data[:-1]) + 1
    starts = np.concatenate(([0], boundaries)).tolist()
    ends = np.concatenate((boundaries, [n])).tolist()
    out = bytearray()
    literal_start: int | None = None

    def flush_literal(lo: int, hi: int) -> None:
        pos = lo
        while pos < hi:
            chunk = min(128, hi - pos)
            out.append(chunk - 1)
            out.extend(data[pos : pos + chunk].tobytes())
            pos += chunk

    for start, end in zip(starts, ends):
        run = end - start
        if run >= 3:
            if literal_start is not None:
                flush_literal(literal_start, start)
                literal_start = None
            value = int(data[start])
            while run > 0:
                chunk = min(128, run)
                if chunk >= 3:
                    out.append(257 - chunk)
                    out.append(value)
                else:
                    out.append(chunk - 1)
                    out += bytes([value]) * chunk
                run -= chunk
        elif literal_start is None:
            literal_start = start
    if literal_start is not None:
        flush_literal(literal_start, n)
    return bytes(out)


def rle8_decode(payload: bytes, raw_len: int) -> bytes:
    """Invert :func:`rle8_encode` into exactly ``raw_len`` bytes."""
    out = bytearray()
    i, n = 0, len(payload)
    while i < n:
        control = payload[i]
        i += 1
        if control < 128:
            count = control + 1
            if i + count > n:
                raise MediaCodecError("rle8 literal truncated")
            out += payload[i : i + count]
            i += count
        elif control == 128:  # no-op byte, per PackBits convention
            continue
        else:
            if i >= n:
                raise MediaCodecError("rle8 run truncated")
            out += bytes([payload[i]]) * (257 - control)
            i += 1
        if len(out) > raw_len:
            raise MediaCodecError(
                f"rle8 stream expands past declared length {raw_len}"
            )
    if len(out) != raw_len:
        raise MediaCodecError(
            f"rle8 stream yields {len(out)} bytes, header says {raw_len}"
        )
    return _undelta(np.frombuffer(bytes(out), dtype=np.uint8))


# ----------------------------------------------------------------------
# dvarint: delta + varint-escaped zero runs
# ----------------------------------------------------------------------


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        low = value & 0x7F
        value >>= 7
        if value:
            out.append(low | 0x80)
        else:
            out.append(low)
            return bytes(out)


def _read_varint(payload: bytes, i: int) -> tuple[int, int]:
    value, shift = 0, 0
    while True:
        if i >= len(payload):
            raise MediaCodecError("dvarint run length truncated")
        byte = payload[i]
        i += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, i
        shift += 7
        if shift > 35:
            raise MediaCodecError("dvarint run length overflows")


def dvarint_encode(raw: bytes) -> bytes:
    """Delta the bytes; zero-runs become ``0x00`` + varint length."""
    if not raw:
        return b""
    delta = _delta(raw)
    zero = delta == 0
    boundaries = np.flatnonzero(zero[1:] != zero[:-1]) + 1
    starts = np.concatenate(([0], boundaries)).tolist()
    ends = np.concatenate((boundaries, [len(delta)])).tolist()
    out = bytearray()
    for start, end in zip(starts, ends):
        if zero[start]:
            out.append(0)
            out += _varint(end - start)
        else:
            out += delta[start:end].tobytes()
    return bytes(out)


def dvarint_decode(payload: bytes, raw_len: int) -> bytes:
    """Invert :func:`dvarint_encode` into exactly ``raw_len`` bytes."""
    out = bytearray()
    i, n = 0, len(payload)
    while i < n:
        byte = payload[i]
        i += 1
        if byte:
            out.append(byte)
        else:
            run, i = _read_varint(payload, i)
            out += b"\x00" * run
        if len(out) > raw_len:
            raise MediaCodecError(
                f"dvarint stream expands past declared length {raw_len}"
            )
    if len(out) != raw_len:
        raise MediaCodecError(
            f"dvarint stream yields {len(out)} bytes, header says {raw_len}"
        )
    return _undelta(np.frombuffer(bytes(out), dtype=np.uint8))


# ----------------------------------------------------------------------
# deflate + stored
# ----------------------------------------------------------------------


def deflate_encode(raw: bytes) -> bytes:
    """zlib-compress text/metadata bytes."""
    return zlib.compress(raw, 6)


def deflate_decode(payload: bytes, raw_len: int) -> bytes:
    """zlib-decompress, rejecting corrupt or wrong-length streams."""
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise MediaCodecError(f"deflate payload corrupt: {exc}") from None
    if len(raw) != raw_len:
        raise MediaCodecError(
            f"deflate stream yields {len(raw)} bytes, header says {raw_len}"
        )
    return raw


def stored_encode(raw: bytes) -> bytes:
    """Identity."""
    return raw


def stored_decode(payload: bytes, raw_len: int) -> bytes:
    """Identity, length-checked against the frame header."""
    if len(payload) != raw_len:
        raise MediaCodecError(
            f"stored payload is {len(payload)} bytes, header says {raw_len}"
        )
    return payload


ENCODERS = {
    STORED: stored_encode,
    RLE8: rle8_encode,
    DVARINT: dvarint_encode,
    DEFLATE: deflate_encode,
}

DECODERS = {
    STORED: stored_decode,
    RLE8: rle8_decode,
    DVARINT: dvarint_decode,
    DEFLATE: deflate_decode,
}
