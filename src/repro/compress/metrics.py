"""Compression observability: per-codec counters and ratio histograms.

Mirrors every encode and decode into a :class:`repro.trace.Trace` as
``COMPRESS_ENCODE`` / ``COMPRESS_DECODE`` events, following the same
pattern as :class:`repro.server.metrics.ServerMetrics`, so trace
tooling sees compression activity alongside device and server events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.trace import EventKind, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.metrics import Histogram, HistogramSnapshot


@dataclass(frozen=True)
class CompressionSnapshot:
    """Immutable point-in-time view of :class:`CompressionMetrics`."""

    #: Encoded pieces by codec name.
    encode_counts: dict[str, int]
    #: Decoded pieces by codec name.
    decode_counts: dict[str, int]
    #: Raw bytes in, by codec name (encode side).
    bytes_raw: dict[str, int]
    #: Stored (framed) bytes out, by codec name (encode side).
    bytes_stored: dict[str, int]
    #: Compression-ratio histograms (raw/stored per piece) by codec.
    ratios: dict[str, HistogramSnapshot]

    @property
    def total_raw(self) -> int:
        """Raw bytes across all codecs."""
        return sum(self.bytes_raw.values())

    @property
    def total_stored(self) -> int:
        """Stored bytes across all codecs."""
        return sum(self.bytes_stored.values())

    @property
    def overall_ratio(self) -> float:
        """Aggregate raw/stored ratio (1.0 when nothing was encoded)."""
        return self.total_raw / self.total_stored if self.total_stored else 1.0


class CompressionMetrics:
    """Thread-safe per-codec compression instrumentation.

    Parameters
    ----------
    trace:
        Optional trace to mirror ``COMPRESS_*`` events into.
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self._encode_counts: dict[str, int] = {}
        self._decode_counts: dict[str, int] = {}
        self._bytes_raw: dict[str, int] = {}
        self._bytes_stored: dict[str, int] = {}
        self._ratios: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _ratio_histogram(self, codec: str) -> Histogram:
        # Imported lazily: repro.server imports repro.compress (the
        # archiver decodes frames), so a module-level import here would
        # be circular.
        from repro.server.metrics import Histogram

        histogram = self._ratios.get(codec)
        if histogram is None:
            # Ratios live in roughly [0.5, 300] for these codecs.
            histogram = Histogram(
                min_value=1e-2, max_value=1e3, buckets_per_decade=8
            )
            self._ratios[codec] = histogram
        return histogram

    def on_encode(
        self,
        codec: str,
        raw_len: int,
        stored_len: int,
        *,
        tag: str = "",
        time_s: float = 0.0,
    ) -> None:
        """Record one encoded piece."""
        with self._lock:
            self._encode_counts[codec] = self._encode_counts.get(codec, 0) + 1
            self._bytes_raw[codec] = self._bytes_raw.get(codec, 0) + raw_len
            self._bytes_stored[codec] = (
                self._bytes_stored.get(codec, 0) + stored_len
            )
            if stored_len:
                self._ratio_histogram(codec).record(raw_len / stored_len)
            self.trace.record(
                time_s,
                EventKind.COMPRESS_ENCODE,
                codec=codec,
                tag=tag,
                raw_len=raw_len,
                stored_len=stored_len,
            )

    def on_decode(
        self,
        codec: str,
        raw_len: int,
        stored_len: int,
        *,
        time_s: float = 0.0,
    ) -> None:
        """Record one decoded piece."""
        with self._lock:
            self._decode_counts[codec] = self._decode_counts.get(codec, 0) + 1
            self.trace.record(
                time_s,
                EventKind.COMPRESS_DECODE,
                codec=codec,
                raw_len=raw_len,
                stored_len=stored_len,
            )

    def snapshot(self) -> CompressionSnapshot:
        """A coherent immutable copy of all counters and histograms."""
        with self._lock:
            return CompressionSnapshot(
                encode_counts=dict(self._encode_counts),
                decode_counts=dict(self._decode_counts),
                bytes_raw=dict(self._bytes_raw),
                bytes_stored=dict(self._bytes_stored),
                ratios={
                    codec: histogram.snapshot()
                    for codec, histogram in self._ratios.items()
                },
            )
