"""Transparent per-piece media compression.

MINOS assumed compressed image and voice data on the optical archiver —
WORM capacity and transfer rates only work out if a raster does not
cost a byte per pixel.  This package supplies the codecs and the
self-describing frame the formatter wraps each data piece in at
archive time, so every layer below the formatter (platter extents,
staging cache, shared link, cluster replication) moves *stored* bytes
and every rebuild decodes without a side channel.
"""

from repro.compress.codecs import (
    DEFLATE,
    DVARINT,
    RLE8,
    STORED,
    codec_for_kind,
    codec_name,
)
from repro.compress.frame import (
    FRAME_MAGIC,
    HEADER_SIZE,
    PieceStats,
    decode_frame,
    encode_piece,
    frame_codec,
    frame_raw_length,
    is_framed,
    maybe_decode,
)
from repro.compress.metrics import CompressionMetrics, CompressionSnapshot

__all__ = [
    "CompressionMetrics",
    "CompressionSnapshot",
    "DEFLATE",
    "DVARINT",
    "FRAME_MAGIC",
    "HEADER_SIZE",
    "PieceStats",
    "RLE8",
    "STORED",
    "codec_for_kind",
    "codec_name",
    "decode_frame",
    "encode_piece",
    "frame_codec",
    "frame_raw_length",
    "is_framed",
    "maybe_decode",
]
