"""Self-describing compressed piece frames.

A framed piece carries everything decode needs — no side channel, no
descriptor field, no archive lookup:

```
offset  size  field
0       4     magic  b"MCF1"
4       1     codec id (see repro.compress.codecs)
5       4     raw length, big-endian u32
9       4     CRC32 over (codec id ‖ raw length ‖ payload)
13      ...   codec payload
```

The CRC covers the codec id and raw length as well as the payload, so
a single flipped byte *anywhere* after the magic fails the checksum,
and a flipped magic byte fails the magic check — strict decoding
(:func:`decode_frame`) rejects every single-byte corruption with a
typed :class:`repro.errors.MediaCodecError`.

:func:`encode_piece` falls back to the ``stored`` codec whenever the
preferred codec's payload is not strictly smaller than the raw bytes,
so a frame never exceeds ``len(raw) + HEADER_SIZE``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.compress.codecs import (
    DECODERS,
    ENCODERS,
    STORED,
    codec_for_kind,
    codec_name,
)
from repro.errors import MediaCodecError

#: First four bytes of every framed piece ("Media Compression Frame v1").
FRAME_MAGIC = b"MCF1"

_FRAME = struct.Struct(">4sBI")
_CHECK = struct.Struct(">BI")
_CRC = struct.Struct(">I")

#: Fixed per-frame overhead in bytes (magic + codec + raw length + CRC).
HEADER_SIZE = _FRAME.size + _CRC.size


@dataclass(frozen=True, slots=True)
class PieceStats:
    """Per-piece compression accounting emitted by the formatter."""

    tag: str
    kind: str
    codec: str
    raw_len: int
    stored_len: int

    @property
    def ratio(self) -> float:
        """Raw bytes per stored byte (1.0 for an empty piece)."""
        return self.raw_len / self.stored_len if self.stored_len else 1.0


def _crc(codec_id: int, raw_len: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_CHECK.pack(codec_id, raw_len)))


def is_framed(data: bytes) -> bool:
    """Whether ``data`` starts with a complete frame header."""
    return len(data) >= HEADER_SIZE and data.startswith(FRAME_MAGIC)


def frame_codec(data: bytes) -> int:
    """Codec id declared by a frame header (no payload validation)."""
    if not is_framed(data):
        raise MediaCodecError("not a compressed frame")
    return data[_FRAME.size - 5]


def frame_raw_length(data: bytes) -> int:
    """Raw (decoded) length declared by a frame header."""
    if not is_framed(data):
        raise MediaCodecError("not a compressed frame")
    _, _, raw_len = _FRAME.unpack_from(data)
    return raw_len


def encode_piece(raw: bytes, kind) -> tuple[bytes, str]:
    """Frame ``raw`` with the preferred codec for ``kind``.

    Returns ``(frame, codec_name)``.  Falls back to ``stored`` when the
    codec's payload is not strictly smaller than the raw bytes, so the
    frame is never more than ``HEADER_SIZE`` bytes larger than ``raw``.
    """
    codec_id = codec_for_kind(kind)
    payload = ENCODERS[codec_id](raw)
    if codec_id != STORED and len(payload) >= len(raw):
        codec_id, payload = STORED, raw
    raw_len = len(raw)
    header = _FRAME.pack(FRAME_MAGIC, codec_id, raw_len)
    crc = _CRC.pack(_crc(codec_id, raw_len, payload))
    return header + crc + payload, codec_name(codec_id)


def decode_frame(data: bytes) -> tuple[bytes, int]:
    """Strictly decode one frame, returning ``(raw, codec_id)``.

    Raises :class:`MediaCodecError` on truncation, bad magic, CRC
    mismatch, unknown codec, or a payload that does not reproduce the
    declared raw length.
    """
    if len(data) < HEADER_SIZE:
        raise MediaCodecError(
            f"frame truncated: {len(data)} bytes < {HEADER_SIZE}-byte header"
        )
    magic, codec_id, raw_len = _FRAME.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise MediaCodecError(f"bad frame magic {magic!r}")
    (crc,) = _CRC.unpack_from(data, _FRAME.size)
    payload = data[HEADER_SIZE:]
    if _crc(codec_id, raw_len, payload) != crc:
        raise MediaCodecError("frame CRC mismatch")
    decoder = DECODERS.get(codec_id)
    if decoder is None:
        raise MediaCodecError(f"unknown codec id {codec_id}")
    raw = decoder(payload, raw_len)
    return raw, codec_id


def maybe_decode(data: bytes) -> bytes:
    """Decode ``data`` if it is framed; otherwise pass it through.

    This is the lenient entry point used on the open path, where a
    piece may predate compression (or be deliberately stored raw, as
    windowed bitmaps are) and must come back untouched.
    """
    if not is_framed(data):
        return data
    raw, _ = decode_frame(data)
    return raw
