"""The shared workstation network as a contended medium.

:class:`~repro.server.network.NetworkLink` models one point-to-point
request: latency plus serialized transfer.  Streaming delivery needs
more: N workstations share *one* Ethernet segment, so every chunk pays
a per-chunk arbitration overhead and queues behind whatever the medium
is currently carrying.  :class:`SharedLink` is that medium as a
discrete-event resource on the simulated clock — who transmits next is
decided elsewhere (the chunk scheduler); the link only accounts for
occupancy, per-station fairness and utilization.

The chunked cost model is exactly the point-to-point one applied per
chunk: moving ``n`` bytes as ``k`` chunks costs
``transfer_time(n) + (k - 1) * latency`` — the invariant pinned down by
``tests/test_property_network.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeliveryError
from repro.server.network import NetworkLink


@dataclass
class LinkStats:
    """Accumulated shared-medium statistics."""

    chunks_sent: int = 0
    bytes_sent: int = 0
    busy_s: float = 0.0
    #: Sum over chunks of (transmit start - ready time): time spent
    #: waiting for the medium while ready to send.
    contention_wait_s: float = 0.0
    bytes_by_station: dict[str, int] = field(default_factory=dict)
    chunks_by_station: dict[str, int] = field(default_factory=dict)

    def utilization(self, horizon_s: float) -> float:
        """Fraction of ``horizon_s`` the medium spent transmitting."""
        if horizon_s <= 0:
            return 0.0
        return min(self.busy_s / horizon_s, 1.0)


@dataclass(frozen=True)
class Transmission:
    """Outcome of one chunk transmission on the shared medium."""

    station: str
    nbytes: int
    ready_s: float
    start_s: float
    finish_s: float

    @property
    def waited_s(self) -> float:
        """Time the chunk sat ready while the medium was busy."""
        return self.start_s - self.ready_s


class SharedLink:
    """One broadcast medium serialized among all stations.

    Parameters
    ----------
    link:
        Per-chunk timing model (arbitration latency + bandwidth); the
        same :class:`NetworkLink` the point-to-point path uses, so a
        one-chunk transfer on the shared medium costs exactly what the
        analytic formula says.

    The link is a pure resource: it has no queue and no policy.  A
    caller (the pipeline's chunk scheduler) decides *which* ready chunk
    transmits when the medium frees; :meth:`transmit` then serializes
    it and returns the occupancy interval.
    """

    def __init__(self, link: NetworkLink | None = None) -> None:
        self._link = link or NetworkLink()
        self._free_s = 0.0
        self.stats = LinkStats()

    @property
    def link(self) -> NetworkLink:
        """The per-chunk timing model."""
        return self._link

    @property
    def free_s(self) -> float:
        """Simulated time at which the medium is next idle."""
        return self._free_s

    def chunk_time(self, nbytes: int) -> float:
        """Medium occupancy of one ``nbytes`` chunk (no queueing)."""
        return self._link.transfer_time(nbytes)

    def transmit(
        self,
        station: str,
        nbytes: int,
        ready_s: float,
        *,
        start_not_before_s: float = 0.0,
    ) -> Transmission:
        """Serialize one chunk onto the medium; returns its interval.

        The chunk must be *ready* (fetched from the server) at
        ``ready_s``; it starts when the chunk, the medium, and the
        dispatching scheduler (``start_not_before_s``, the scheduler's
        current simulated time) are all available, and occupies the
        medium for ``latency + nbytes / bandwidth``.  The gap between
        ``ready_s`` and the start is the chunk's contention wait.

        Raises
        ------
        DeliveryError
            If the chunk size is negative.
        """
        if nbytes < 0:
            raise DeliveryError(f"negative chunk size: {nbytes}")
        start = max(self._free_s, ready_s, start_not_before_s)
        duration = self._link.transfer_time(nbytes)
        finish = start + duration
        self._free_s = finish
        self.stats.chunks_sent += 1
        self.stats.bytes_sent += nbytes
        self.stats.busy_s += duration
        self.stats.contention_wait_s += start - ready_s
        self.stats.bytes_by_station[station] = (
            self.stats.bytes_by_station.get(station, 0) + nbytes
        )
        self.stats.chunks_by_station[station] = (
            self.stats.chunks_by_station.get(station, 0) + 1
        )
        return Transmission(
            station=station, nbytes=nbytes, ready_s=ready_s,
            start_s=start, finish_s=finish,
        )
