"""Playout sessions: deadlines, jitter buffer, underrun accounting.

Section 5's requirement is that voice reaches the workstation
"continuously in real time".  A :class:`StreamSession` turns one stored
voice piece into a playout plan — fixed-size chunks whose deadlines
follow from the codec byte rate (mu-law: ``sample_rate`` bytes per
second) — and then scores the delivery: when did playback start, how
full was the jitter buffer, and exactly where did the speaker go
silent (underruns).

Deadline math.  Chunk ``i`` covers bytes
``[i * chunk_bytes, (i+1) * chunk_bytes)`` and therefore
``chunk_bytes / bytes_per_s`` seconds of speech.  Playback begins once
the first ``prebuffer_chunks`` chunks are buffered; from then on chunk
``i`` is consumed at

    started_s + playout_offset(i) + accumulated_stall

so its *nominal* deadline — usable for EDF scheduling before the
startup latency or any stall is known — is the lower bound
``request_s + playout_offset(i)``.  A chunk arriving after its
consumption instant stalls playback by the difference: one underrun
event, and every later deadline shifts by the stall (speech resumes
where it stopped; it does not skip).

:class:`~repro.audio.pages.AudioPage` boundaries are navigation units:
:meth:`StreamSession.chunks_for_page` maps a page onto the chunk range
that must be resident before the page can play, which is what a
page-seek restart and the prefetcher both consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.audio.pages import AudioPager
from repro.errors import DeliveryError, StreamStateError
from repro.ids import ObjectId


@dataclass(frozen=True)
class PlayoutChunk:
    """One chunk of a stream's playout plan."""

    seq: int
    offset: int
    length: int
    duration_s: float


@dataclass(frozen=True)
class UnderrunEvent:
    """One playback stall: chunk ``seq`` arrived ``stall_s`` late."""

    seq: int
    at_s: float
    stall_s: float


class StreamSession:
    """Deadline bookkeeping for one voice stream to one station.

    Parameters
    ----------
    station, object_id, tag:
        Who is listening and which stored data piece is streamed
        (``tag`` is the archiver piece tag, e.g. ``voice/<segment>``).
    total_bytes:
        Length of the voice piece.
    bytes_per_s:
        Codec rate; mu-law stores one byte per sample, so this is the
        recording's sample rate.
    chunk_bytes:
        Transfer granularity.
    prebuffer_chunks:
        Jitter-buffer depth required before playback starts.
    request_s:
        Simulated time the user pressed play.
    pager:
        Optional :class:`AudioPager` over the same recording; enables
        page-aligned seeks and page-granular prefetch plans.
    """

    def __init__(
        self,
        station: str,
        object_id: ObjectId,
        tag: str,
        total_bytes: int,
        bytes_per_s: float,
        *,
        chunk_bytes: int = 4000,
        prebuffer_chunks: int = 2,
        request_s: float = 0.0,
        pager: AudioPager | None = None,
    ) -> None:
        if total_bytes <= 0:
            raise DeliveryError(f"stream needs bytes: {total_bytes}")
        if bytes_per_s <= 0:
            raise DeliveryError(f"codec rate must be positive: {bytes_per_s}")
        if chunk_bytes <= 0:
            raise DeliveryError(f"chunk size must be positive: {chunk_bytes}")
        if prebuffer_chunks < 1:
            raise DeliveryError(
                f"prebuffer must hold at least one chunk: {prebuffer_chunks}"
            )
        self.station = station
        self.object_id = object_id
        self.tag = tag
        self.bytes_per_s = float(bytes_per_s)
        self.chunk_bytes = chunk_bytes
        self.request_s = request_s
        self._pager = pager
        self._chunks: list[PlayoutChunk] = []
        offset = 0
        seq = 0
        while offset < total_bytes:
            length = min(chunk_bytes, total_bytes - offset)
            self._chunks.append(
                PlayoutChunk(
                    seq=seq, offset=offset, length=length,
                    duration_s=length / self.bytes_per_s,
                )
            )
            offset += length
            seq += 1
        self.prebuffer_chunks = min(prebuffer_chunks, len(self._chunks))
        # Cumulative playout offsets: _offsets[i] = seconds of speech
        # before chunk i begins.
        self._offsets = [0.0]
        for chunk in self._chunks:
            self._offsets.append(self._offsets[-1] + chunk.duration_s)
        # Delivery state.
        self._arrived: dict[int, float] = {}
        self._contiguous = 0  # chunks 0.._contiguous-1 have arrived
        self.started_s: float | None = None
        self.startup_latency_s: float | None = None
        self.underruns: list[UnderrunEvent] = []
        self.total_stall_s = 0.0

    # ------------------------------------------------------------------
    # the plan
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def chunks(self) -> list[PlayoutChunk]:
        """The full playout plan, in order."""
        return list(self._chunks)

    @property
    def duration_s(self) -> float:
        """Total speech duration of the stream."""
        return self._offsets[-1]

    def chunk(self, seq: int) -> PlayoutChunk:
        """Chunk ``seq`` of the plan.

        Raises
        ------
        DeliveryError
            If ``seq`` is out of range.
        """
        if not 0 <= seq < len(self._chunks):
            raise DeliveryError(
                f"chunk {seq} out of range 0..{len(self._chunks) - 1}"
            )
        return self._chunks[seq]

    def playout_offset(self, seq: int) -> float:
        """Seconds of speech consumed before chunk ``seq`` plays."""
        self.chunk(seq)
        return self._offsets[seq]

    def nominal_deadline(self, seq: int) -> float:
        """Deadline usable at issue time (before any stall is known).

        Playback actually consumes chunk ``seq`` at
        ``started_s + stall + playout_offset(seq)``, and both the
        startup latency and the stall are nonnegative, so
        ``request_s + playout_offset(seq)`` is a lower bound on the
        true consumption instant — a conservative deadline, exactly
        what an EDF scheduler wants before the stream's fate is known.
        """
        self.chunk(seq)
        return self.request_s + self._offsets[seq]

    def chunks_for_page(self, page_number: int) -> range:
        """Chunk seq range covering one audio page (needs a pager).

        Raises
        ------
        StreamStateError
            If the session was built without an :class:`AudioPager`.
        """
        if self._pager is None:
            raise StreamStateError("session has no audio pager")
        page = self._pager.page(page_number)
        first = int(page.start * self.bytes_per_s) // self.chunk_bytes
        last_byte = max(
            int(math.ceil(page.end * self.bytes_per_s)) - 1, 0
        )
        last = min(last_byte // self.chunk_bytes, len(self._chunks) - 1)
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # delivery accounting
    # ------------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Whether every chunk has arrived."""
        return self._contiguous == len(self._chunks)

    def on_delivered(self, seq: int, at_s: float) -> UnderrunEvent | None:
        """Record chunk ``seq`` arriving at ``at_s``.

        Returns the :class:`UnderrunEvent` this arrival caused, if any.
        Arrivals may come out of order; playout consumes contiguously,
        so only the chunk that extends the contiguous prefix can stall
        the playhead.

        Raises
        ------
        StreamStateError
            If the chunk was already delivered.
        """
        if seq in self._arrived:
            raise StreamStateError(
                f"chunk {seq} of {self.station}/{self.tag} delivered twice"
            )
        self.chunk(seq)
        self._arrived[seq] = at_s
        while self._contiguous in self._arrived:
            self._contiguous += 1
        if self.started_s is None:
            if self._contiguous >= self.prebuffer_chunks:
                self.started_s = at_s
                self.startup_latency_s = at_s - self.request_s
            return None
        # Consumption instant of chunk seq under everything known so far.
        due = self.started_s + self.total_stall_s + self._offsets[seq]
        if seq >= self.prebuffer_chunks and at_s > due and seq < self._contiguous:
            stall = at_s - due
            self.total_stall_s += stall
            event = UnderrunEvent(seq=seq, at_s=at_s, stall_s=stall)
            self.underruns.append(event)
            return event
        return None

    def buffered_s(self, now_s: float) -> float:
        """Seconds of contiguous speech buffered ahead of the playhead."""
        if self.started_s is None:
            return self._offsets[self._contiguous]
        played = now_s - self.started_s - self.total_stall_s
        played = min(max(played, 0.0), self.duration_s)
        return max(self._offsets[self._contiguous] - played, 0.0)
