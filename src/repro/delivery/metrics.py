"""Delivery observability: histograms, counters, ``DELIVERY_*`` events.

The continuous-voice claim is only checkable if the pipeline reports
what the listener experienced: startup latency, jitter-buffer
occupancy, underruns, chunk latency and page-turn latency.  Everything
is mirrored into a :class:`repro.trace.Trace` as ``DELIVERY_*`` events
(stamped with simulated time) so the existing trace tooling works on
delivery activity exactly as it does on server activity, and the
histograms reuse :class:`repro.server.metrics.Histogram` so percentile
assertions read the same in C-CONC and C-STREAM.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.server.metrics import Histogram, HistogramSnapshot
from repro.trace import EventKind, Trace


@dataclass(frozen=True)
class DeliverySnapshot:
    """Immutable point-in-time view of :class:`DeliveryMetrics`."""

    chunks_delivered: int
    audio_bytes: int
    bulk_bytes: int
    underruns: int
    stall_s: float
    streams_started: int
    page_turns: int
    prefetch_page_hits: int
    prefetch_issued: int
    prefetch_cancelled: int
    chunk_latency: HistogramSnapshot
    page_latency: HistogramSnapshot
    startup_latency: HistogramSnapshot
    buffer_occupancy: HistogramSnapshot

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of page turns satisfied from staged read-ahead."""
        return self.prefetch_page_hits / self.page_turns if self.page_turns else 0.0


class DeliveryMetrics:
    """Thread-safe instrumentation for the delivery pipeline.

    Parameters
    ----------
    trace:
        Optional trace to mirror ``DELIVERY_*`` events into (a fresh
        one is created if omitted).
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self.chunk_latency = Histogram()
        self.page_latency = Histogram()
        self.startup_latency = Histogram()
        # Occupancy in seconds of buffered speech; well under the 1e4
        # default ceiling, recorded at every chunk delivery.
        self.buffer_occupancy = Histogram()
        self._chunks_delivered = 0
        self._audio_bytes = 0
        self._bulk_bytes = 0
        self._underruns = 0
        self._stall_s = 0.0
        self._streams_started = 0
        self._page_turns = 0
        self._prefetch_page_hits = 0
        self._prefetch_issued = 0
        self._prefetch_cancelled = 0
        self._lock = threading.Lock()

    def on_chunk(
        self,
        station: str,
        traffic_class: str,
        nbytes: int,
        latency_s: float,
        time_s: float,
    ) -> None:
        """Record one chunk delivered to a station."""
        self.chunk_latency.record(latency_s)
        with self._lock:
            self._chunks_delivered += 1
            if traffic_class == "audio":
                self._audio_bytes += nbytes
            else:
                self._bulk_bytes += nbytes
            self.trace.record(
                time_s, EventKind.DELIVERY_CHUNK, station=station,
                traffic_class=traffic_class, nbytes=nbytes,
                latency_s=round(latency_s, 6),
            )

    def on_stream_start(
        self, station: str, startup_latency_s: float, time_s: float
    ) -> None:
        """Record playback beginning on a station."""
        self.startup_latency.record(startup_latency_s)
        with self._lock:
            self._streams_started += 1
            self.trace.record(
                time_s, EventKind.DELIVERY_START, station=station,
                startup_latency_s=round(startup_latency_s, 6),
            )

    def on_buffer_level(self, buffered_s: float) -> None:
        """Sample the jitter-buffer occupancy of a running stream."""
        self.buffer_occupancy.record(buffered_s)

    def on_underrun(
        self, station: str, seq: int, stall_s: float, time_s: float
    ) -> None:
        """Record one playback stall (the speaker went silent)."""
        with self._lock:
            self._underruns += 1
            self._stall_s += stall_s
            self.trace.record(
                time_s, EventKind.DELIVERY_UNDERRUN, station=station,
                seq=seq, stall_s=round(stall_s, 6),
            )

    def on_page_turn(
        self,
        station: str,
        page: int,
        latency_s: float,
        prefetched: bool,
        time_s: float,
    ) -> None:
        """Record one visual page becoming fully resident at a station."""
        self.page_latency.record(latency_s)
        with self._lock:
            self._page_turns += 1
            if prefetched:
                self._prefetch_page_hits += 1
            self.trace.record(
                time_s, EventKind.DELIVERY_PAGE, station=station, page=page,
                latency_s=round(latency_s, 6), prefetched=prefetched,
            )

    def on_prefetch(self, station: str, page: int, time_s: float) -> None:
        """Record one read-ahead task issued."""
        with self._lock:
            self._prefetch_issued += 1
            self.trace.record(
                time_s, EventKind.DELIVERY_PREFETCH, station=station, page=page,
            )

    def on_cancel(self, station: str, count: int, time_s: float) -> None:
        """Record a jump revoking ``count`` outstanding prefetches."""
        with self._lock:
            self._prefetch_cancelled += count
            self.trace.record(
                time_s, EventKind.DELIVERY_CANCEL, station=station, count=count,
            )

    def snapshot(self) -> DeliverySnapshot:
        """A coherent immutable copy of all counters and histograms."""
        with self._lock:
            return DeliverySnapshot(
                chunks_delivered=self._chunks_delivered,
                audio_bytes=self._audio_bytes,
                bulk_bytes=self._bulk_bytes,
                underruns=self._underruns,
                stall_s=self._stall_s,
                streams_started=self._streams_started,
                page_turns=self._page_turns,
                prefetch_page_hits=self._prefetch_page_hits,
                prefetch_issued=self._prefetch_issued,
                prefetch_cancelled=self._prefetch_cancelled,
                chunk_latency=self.chunk_latency.snapshot(),
                page_latency=self.page_latency.snapshot(),
                startup_latency=self.startup_latency.snapshot(),
                buffer_occupancy=self.buffer_occupancy.snapshot(),
            )
