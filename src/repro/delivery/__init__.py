"""Deadline-aware streaming delivery (Section 5, the wire half).

"Voice must reach the workstation continuously in real time, while the
next visual and audio pages are prefetched in the background."  The
PR-1 serving stack ends at the archiver; this subsystem carries object
parts the rest of the way — as chunked, scheduled transfers over a
shared medium, against playout deadlines, with read-ahead:

* :mod:`repro.delivery.link` — the shared Ethernet segment as a
  contended discrete-event resource.
* :mod:`repro.delivery.chunks` — chunk requests and link arbitration
  (FIFO baseline vs. EDF with audio preemption and fair bulk).
* :mod:`repro.delivery.session` — playout deadlines from codec rates
  and audio-page boundaries; jitter buffer; underrun accounting.
* :mod:`repro.delivery.prefetch` — browse-direction read-ahead through
  the shared cache, with generation-gated cancellation.
* :mod:`repro.delivery.metrics` — ``DELIVERY_*`` trace events and
  latency/occupancy histograms.
* :mod:`repro.delivery.pipeline` — the deterministic replay engine,
  workload builder, and policy comparison (C-STREAM).
"""

from repro.delivery.chunks import (
    ChunkRequest,
    ChunkScheduler,
    LinkDiscipline,
    TrafficClass,
)
from repro.delivery.link import LinkStats, SharedLink, Transmission
from repro.delivery.metrics import DeliveryMetrics, DeliverySnapshot
from repro.delivery.pipeline import (
    DeliveryConfig,
    DeliveryPipeline,
    DeliveryPolicy,
    DeliveryReport,
    PageView,
    StationScript,
    RETRYABLE_ERRORS,
    StreamIntent,
    build_streaming_workload,
    fetch_with_retry,
    page_extents_for,
)
from repro.delivery.prefetch import (
    PrefetchStats,
    PrefetchTask,
    Prefetcher,
    piece_range_key,
)
from repro.delivery.session import PlayoutChunk, StreamSession, UnderrunEvent

__all__ = [
    "ChunkRequest",
    "ChunkScheduler",
    "DeliveryConfig",
    "DeliveryMetrics",
    "DeliveryPipeline",
    "DeliveryPolicy",
    "DeliveryReport",
    "DeliverySnapshot",
    "LinkDiscipline",
    "LinkStats",
    "PageView",
    "PlayoutChunk",
    "PrefetchStats",
    "PrefetchTask",
    "Prefetcher",
    "RETRYABLE_ERRORS",
    "SharedLink",
    "StationScript",
    "StreamIntent",
    "StreamSession",
    "TrafficClass",
    "Transmission",
    "UnderrunEvent",
    "build_streaming_workload",
    "fetch_with_retry",
    "page_extents_for",
    "piece_range_key",
]
