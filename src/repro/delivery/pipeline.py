"""The deadline-aware streaming delivery pipeline.

Everything between the archiver and the playout device, on one
simulated clock: object parts leave the (PR-1) serving stack as
*chunked, scheduled transfers* over a :class:`SharedLink` that all
stations contend for, voice chunks carry playout deadlines, and a
:class:`Prefetcher` stages the next pages before the user asks.

Two delivery policies bracket the paper's Section-5 claim:

``ON_DEMAND``
    The naive baseline: bytes are fetched when the presentation needs
    them, the medium is FIFO, no read-ahead.  One outstanding voice
    window per stream; page turns pay device + link cold.

``DEADLINE``
    Voice read-ahead in batches ``lookahead_s`` before each chunk's
    deadline, EDF link arbitration (audio preempts bulk at chunk
    boundaries, bulk served fair), and browse-direction prefetch of
    the next pages into the shared cache *and* onward to the station.

The replay is a deterministic discrete-event simulation (same stance
as :func:`repro.server.loadgen.replay_virtual`): one shared device
served FIFO in issue order, one shared medium arbitrated by the chunk
scheduler, all latencies in simulated seconds.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.cluster.placement import stable_hash
from repro.delivery.chunks import (
    ChunkRequest,
    ChunkScheduler,
    LinkDiscipline,
    TrafficClass,
)
from repro.delivery.link import SharedLink
from repro.delivery.metrics import DeliveryMetrics
from repro.delivery.prefetch import Prefetcher, piece_range_key
from repro.delivery.session import StreamSession
from repro.errors import (
    DeliveryError,
    RequestTimeoutError,
    ServerBusyError,
    TransientIOError,
)
from repro.ids import ObjectId
from repro.objects.model import DrivingMode, MultimediaObject
from repro.obs.context import bind as bind_span
from repro.obs.context import current as current_span
from repro.obs.spans import SpanContext, SpanKind as ObsSpanKind
from repro.obs.spans import SpanRecorder
from repro.obs.spans import SpanStatus as ObsSpanStatus
from repro.server.archiver import Archiver, CachingArchiver
from repro.server.frontend import ServerFrontend
from repro.server.metrics import percentile as shared_percentile
from repro.server.network import NetworkLink
from repro.storage.blockdev import Extent
from repro.storage.cache import LRUCache


class DeliveryPolicy(Enum):
    """How the pipeline moves bytes to the stations."""

    ON_DEMAND = "on_demand"
    DEADLINE = "deadline"


@dataclass(frozen=True)
class DeliveryConfig:
    """Tunable knobs of one pipeline run."""

    policy: DeliveryPolicy = DeliveryPolicy.DEADLINE
    chunk_bytes: int = 4000
    page_bytes: int = 32_000
    prebuffer_chunks: int = 2
    #: DEADLINE policy: how far before a voice chunk's deadline its
    #: device read is issued.
    lookahead_s: float = 3.0
    #: DEADLINE policy: voice chunks fetched per device read (one seek
    #: amortized over the batch).
    batch_chunks: int = 4
    prefetch_depth: int = 2
    #: Spacing between successive read-ahead issues after a page view,
    #: so prefetch trickles behind the foreground traffic.
    prefetch_stagger_s: float = 0.25
    link: NetworkLink = field(default_factory=NetworkLink)
    cache_bytes: int = 8_000_000

    @property
    def discipline(self) -> LinkDiscipline:
        """Link arbitration implied by the policy."""
        if self.policy is DeliveryPolicy.DEADLINE:
            return LinkDiscipline.EDF
        return LinkDiscipline.FIFO


@dataclass(frozen=True)
class StreamIntent:
    """One station's voice stream: which piece, from when."""

    object_id: ObjectId
    tag: str
    total_bytes: int
    bytes_per_s: float
    start_s: float


@dataclass(frozen=True)
class PageView:
    """One page the user asks to see, at a scripted time.

    ``jump`` marks views the prefetcher could not have predicted
    (non-adjacent page, new object): they revoke outstanding
    read-ahead for the station.
    """

    at_s: float
    object_id: ObjectId
    page: int
    jump: bool = False


@dataclass
class StationScript:
    """Everything one workstation does during the replay."""

    station: str
    stream: StreamIntent | None = None
    views: list[PageView] = field(default_factory=list)


@dataclass
class DeliveryReport:
    """Aggregate outcome of one pipeline replay."""

    policy: str
    stations: int
    underruns: int = 0
    stall_s: float = 0.0
    startup_latencies: list[float] = field(default_factory=list)
    page_latencies: list[float] = field(default_factory=list)
    cold_page_latencies: list[float] = field(default_factory=list)
    page_turns: int = 0
    prefetched_page_hits: int = 0
    wasted_prefetches: int = 0
    cancelled_prefetches: int = 0
    streams_completed: int = 0
    chunks_delivered: int = 0
    device_busy_s: float = 0.0
    link_busy_s: float = 0.0
    link_wait_s: float = 0.0
    finished_s: float = 0.0

    def page_latency_percentile(self, p: float) -> float:
        """Percentile of page-turn latency over all turns (0.0 if none)."""
        return shared_percentile(self.page_latencies, p)

    @property
    def median_page_latency_s(self) -> float:
        """Median page-turn latency, local hits included."""
        return self.page_latency_percentile(50)

    @property
    def max_startup_latency_s(self) -> float:
        """Worst stream startup latency."""
        return max(self.startup_latencies) if self.startup_latencies else 0.0


def page_extents_for(
    archiver: Archiver | CachingArchiver, object_id: ObjectId, page_bytes: int
) -> list[tuple[str, int, int]]:
    """Byte ranges of a visual object's pages, ``page_bytes`` each.

    The object's largest data piece (the image raster for the library
    corpus) is the visual payload; it is windowed into consecutive
    page-sized ranges, the delivery analogue of the view windows the
    archiver already serves.
    """
    record = archiver.record(object_id)
    if not record.descriptor.locations:
        raise DeliveryError(f"object {object_id} has no data pieces")
    location = max(record.descriptor.locations, key=lambda loc: loc.length)
    return [
        (location.tag, start, min(page_bytes, location.length - start))
        for start in range(0, location.length, page_bytes)
    ]


def _voice_piece(obj: MultimediaObject) -> tuple[str, float]:
    """(piece tag, codec bytes/s) of an audio object's first segment."""
    if not obj.voice_segments:
        raise DeliveryError(f"object {obj.object_id} has no voice part")
    segment = obj.voice_segments[0]
    return f"voice/{segment.segment_id}", float(segment.recording.sample_rate)


def build_streaming_workload(
    archiver: Archiver | CachingArchiver,
    objects: list[MultimediaObject],
    *,
    stations: int,
    duration_s: float,
    think_s: float = 2.0,
    jump_probability: float = 0.15,
    page_bytes: int = 32_000,
    seed: int = 0,
) -> list[StationScript]:
    """Deterministic per-station scripts: one voice stream + browsing.

    Station ``i`` streams the ``i``-th audio object (mod count) from a
    staggered start and browses the visual objects in rotation: mostly
    forward page turns every ``think_s`` (with seeded jitter), a
    ``jump_probability`` chance of leaping to a random page, and a jump
    to the next object when a sweep completes.  Scripts are mutually
    independent, so the first N scripts form a nested subset workload —
    latency growth between N and N+k stations is attributable to
    contention alone.

    Raises
    ------
    DeliveryError
        If the library lacks visual or audio objects, or ``stations``
        is not positive.
    """
    if stations <= 0:
        raise DeliveryError(f"workload needs stations: {stations}")
    visual = [o for o in objects if o.driving_mode is DrivingMode.VISUAL]
    audio = [o for o in objects if o.driving_mode is DrivingMode.AUDIO]
    if not visual or not audio:
        raise DeliveryError("workload needs both visual and audio objects")
    page_counts = {
        obj.object_id: len(page_extents_for(archiver, obj.object_id, page_bytes))
        for obj in visual
    }
    scripts: list[StationScript] = []
    for index in range(stations):
        rng = np.random.default_rng(seed * 1009 + index)
        station = f"ws-{index}"
        audio_obj = audio[index % len(audio)]
        tag, bytes_per_s = _voice_piece(audio_obj)
        extent = archiver.data_extent(audio_obj.object_id, tag)
        # The stream delivers *stored* bytes.  A compressed piece holds
        # the same playout seconds in fewer bytes, so the byte rate that
        # keeps the speaker fed scales by stored/raw (ratio 1 when
        # compression is off).
        raw_len = audio_obj.voice_segments[0].recording.n_samples
        if raw_len:
            bytes_per_s *= extent.length / raw_len
        stream = StreamIntent(
            object_id=audio_obj.object_id,
            tag=tag,
            total_bytes=extent.length,
            bytes_per_s=bytes_per_s,
            start_s=0.5 + 0.11 * index,
        )
        views: list[PageView] = []
        rotation = index % len(visual)
        current = visual[rotation].object_id
        page = 0
        expected = 0  # the page a forward browse would show next
        now = 1.0 + 0.07 * index
        while now < duration_s:
            views.append(
                PageView(
                    at_s=now, object_id=current, page=page,
                    jump=(page != expected),
                )
            )
            count = page_counts[current]
            if float(rng.random()) < jump_probability and count > 1:
                expected = page + 1
                page = int(rng.integers(0, count))
            elif page + 1 >= count:
                rotation = (rotation + 1) % len(visual)
                current = visual[rotation].object_id
                expected = -1  # object switch: never the predicted page
                page = 0
            else:
                expected = page + 1
                page = page + 1
            now += think_s * float(0.7 + 0.6 * rng.random())
        scripts.append(StationScript(station=station, stream=stream, views=views))
    return scripts


class DeliveryPipeline:
    """Deterministic replay of station scripts over device + medium.

    Parameters
    ----------
    archiver:
        The object store; a :class:`CachingArchiver` is unwrapped —
        the pipeline owns its own staging cache so each run starts
        cold and the two policies compare fairly.
    config:
        Policy and knobs.
    metrics:
        Instrumentation sink (a fresh one is created if omitted); its
        trace carries the ``DELIVERY_*`` timeline.
    """

    def __init__(
        self,
        archiver: Archiver | CachingArchiver,
        config: DeliveryConfig | None = None,
        metrics: DeliveryMetrics | None = None,
        *,
        obs: SpanRecorder | None = None,
    ) -> None:
        self.config = config or DeliveryConfig()
        self._archiver = (
            archiver.archiver if isinstance(archiver, CachingArchiver) else archiver
        )
        self.cache = LRUCache(self.config.cache_bytes)
        self.metrics = metrics if metrics is not None else DeliveryMetrics()
        self.link = SharedLink(self.config.link)
        self._sched = ChunkScheduler(self.config.discipline)
        self._prefetcher = Prefetcher(
            self._archiver, self.cache, depth=self.config.prefetch_depth
        )
        self._events: list[tuple[float, int, str, object]] = []
        self._order = itertools.count()
        self._chunk_seq = itertools.count()
        self._now = 0.0
        self._device_free = 0.0
        self._device_busy = 0.0
        self._link_busy = False
        #: When the bytes behind a cache key become available in
        #: simulated time (single-flight: a hit on an in-flight key
        #: piggybacks on the fetch instead of being instantly ready).
        self._key_ready: dict[str, float] = {}
        self._sessions: dict[str, StreamSession] = {}
        self._next_audio_seq: dict[str, int] = {}
        #: (station, object_id, page) -> how the page got here.
        self._page_store: dict[tuple[str, str, int], str] = {}
        self._pending_pages: dict[tuple[str, str, int], list] = {}
        self._pending_prefetch: dict[tuple[str, int, str, int], int] = {}
        self._page_extents: dict[str, list[tuple[str, int, int]]] = {}
        #: Optional span recorder: page turns, streams, prefetches and
        #: underruns become DELIVERY spans on the replay's simulated
        #: clock (docs/OBSERVABILITY.md).
        self.obs = obs
        self._page_spans: dict[tuple[str, str, int], object] = {}
        self._prefetch_spans: dict[tuple[str, int, str, int], object] = {}
        self._stream_spans: dict[str, object] = {}
        self._stream_ctx: dict[str, SpanContext] = {}

    @property
    def prefetcher(self) -> Prefetcher:
        """The read-ahead planner (stats live here)."""
        return self._prefetcher

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def run(self, scripts: list[StationScript]) -> DeliveryReport:
        """Replay the scripts to completion; returns the report.

        Raises
        ------
        DeliveryError
            If a script names an unknown object or the pipeline was
            already run.
        """
        if self._now > 0.0 or self._events:
            raise DeliveryError("pipeline instances replay one workload once")
        report = DeliveryReport(
            policy=self.config.policy.value, stations=len(scripts)
        )
        self._report = report
        for script in scripts:
            if script.stream is not None:
                self._schedule(script.stream.start_s, "stream_start", script)
            for view in script.views:
                self._schedule(view.at_s, "view", (script.station, view))
        while self._events:
            time_s, _, kind, payload = heapq.heappop(self._events)
            self._now = max(self._now, time_s)
            getattr(self, f"_on_{kind}")(payload)
        for station, session in self._sessions.items():
            report.underruns += len(session.underruns)
            report.stall_s += session.total_stall_s
            if session.startup_latency_s is not None:
                report.startup_latencies.append(session.startup_latency_s)
            if session.complete:
                report.streams_completed += 1
            active = self._stream_spans.pop(station, None)
            if active is not None:
                status = (
                    ObsSpanStatus.ERROR if session.underruns
                    else ObsSpanStatus.OK
                )
                active.finish(
                    self._now, status=status,
                    underruns=len(session.underruns),
                    stall_s=round(session.total_stall_s, 9),
                    complete=session.complete,
                )
        # Prefetches revoked by a jump never see their final chunk
        # delivered; close their spans as CANCELLED.
        for active in self._prefetch_spans.values():
            active.finish(self._now, status=ObsSpanStatus.CANCELLED)
        self._prefetch_spans.clear()
        report.device_busy_s = self._device_busy
        report.link_busy_s = self.link.stats.busy_s
        report.link_wait_s = self.link.stats.contention_wait_s
        report.chunks_delivered = self.link.stats.chunks_sent
        report.cancelled_prefetches = self._prefetcher.stats.cancelled
        report.finished_s = self._now
        return report

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _schedule(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(
            self._events, (time_s, next(self._order), kind, payload)
        )

    def _on_stream_start(self, script: StationScript) -> None:
        intent = script.stream
        session = StreamSession(
            station=script.station,
            object_id=intent.object_id,
            tag=intent.tag,
            total_bytes=intent.total_bytes,
            bytes_per_s=intent.bytes_per_s,
            chunk_bytes=self.config.chunk_bytes,
            prebuffer_chunks=self.config.prebuffer_chunks,
            request_s=self._now,
        )
        self._sessions[script.station] = session
        if self.obs is not None:
            active = self.obs.start(
                None, "stream", ObsSpanKind.DELIVERY, self._now,
                baggage={"station": script.station},
                object=str(intent.object_id), tag=intent.tag,
            )
            self._stream_spans[script.station] = active
            self._stream_ctx[script.station] = active.context
        if self.config.policy is DeliveryPolicy.DEADLINE:
            # Plan every batch up front: fetch lookahead_s before the
            # batch's first deadline, never before the stream starts.
            size = max(self.config.batch_chunks, 1)
            for first in range(0, len(session), size):
                at = max(
                    self._now,
                    session.nominal_deadline(first) - self.config.lookahead_s,
                )
                self._schedule(
                    at, "audio_batch",
                    (script.station, first, min(first + size, len(session))),
                )
        else:
            # Fetch-on-demand: fill the prebuffer, then one chunk per
            # delivery (a single outstanding read window).
            window = min(session.prebuffer_chunks, len(session))
            self._next_audio_seq[script.station] = window
            for seq in range(window):
                self._issue_audio(script.station, seq)

    def _on_audio_batch(self, payload: tuple[str, int, int]) -> None:
        station, first, stop = payload
        session = self._sessions[station]
        chunks = [session.chunk(seq) for seq in range(first, stop)]
        base = self._archiver.data_extent(session.object_id, session.tag)
        start_byte = chunks[0].offset
        length = chunks[-1].offset + chunks[-1].length - start_byte
        ready = self._device_read(
            Extent(base.offset + start_byte, length),
            parent=self._stream_ctx.get(station),
        )
        for chunk in chunks:
            self._enqueue_at(
                ready,
                ChunkRequest(
                    seq=next(self._chunk_seq),
                    station=station,
                    nbytes=chunk.length,
                    traffic_class=TrafficClass.AUDIO,
                    deadline_s=session.nominal_deadline(chunk.seq),
                    issued_s=self._now,
                    meta={"kind": "stream", "stream_seq": chunk.seq},
                ),
            )

    def _issue_audio(self, station: str, seq: int) -> None:
        session = self._sessions[station]
        chunk = session.chunk(seq)
        base = self._archiver.data_extent(session.object_id, session.tag)
        ready = self._device_read(
            Extent(base.offset + chunk.offset, chunk.length),
            parent=self._stream_ctx.get(station),
        )
        self._enqueue_at(
            ready,
            ChunkRequest(
                seq=next(self._chunk_seq),
                station=station,
                nbytes=chunk.length,
                traffic_class=TrafficClass.AUDIO,
                deadline_s=session.nominal_deadline(seq),
                issued_s=self._now,
                meta={"kind": "stream", "stream_seq": seq},
            ),
        )

    def _on_view(self, payload: tuple[str, PageView]) -> None:
        station, view = payload
        deadline_mode = self.config.policy is DeliveryPolicy.DEADLINE
        if view.jump and deadline_mode:
            generation = self._prefetcher.jump(station)
            revoked = self._sched.cancel_where(
                lambda c: (
                    c.station == station
                    and c.meta.get("kind") == "prefetch"
                    and c.meta.get("generation", generation) < generation
                )
            )
            self.metrics.on_cancel(station, len(revoked), self._now)
        key = (station, str(view.object_id), view.page)
        extents = self._extents_of(view.object_id)
        if view.page >= len(extents):
            raise DeliveryError(
                f"script asks for page {view.page} of "
                f"{len(extents)}-page object {view.object_id}"
            )
        if key in self._page_store:
            prefetched = self._page_store[key] == "prefetch"
            self.metrics.on_page_turn(
                station, view.page, 0.0, prefetched, self._now
            )
            self._report.page_turns += 1
            self._report.page_latencies.append(0.0)
            if prefetched:
                self._report.prefetched_page_hits += 1
            if self.obs is not None:
                self.obs.emit(
                    None, "page_turn", ObsSpanKind.DELIVERY,
                    self._now, self._now,
                    baggage={"station": station},
                    object=str(view.object_id), page=view.page,
                    source=self._page_store[key], latency_s=0.0,
                )
        elif key not in self._pending_pages:
            tag, start, length = extents[view.page]
            if self.obs is not None:
                active = self.obs.start(
                    None, "page_turn", ObsSpanKind.DELIVERY, self._now,
                    baggage={"station": station},
                    object=str(view.object_id), page=view.page,
                    source="demand",
                )
                self._page_spans[key] = active
                with bind_span(active.context):
                    ready = self._fetch_cached(
                        view.object_id, tag, start, length
                    )
            else:
                ready = self._fetch_cached(view.object_id, tag, start, length)
            total = self._split_bulk(
                station, length, ready,
                {"kind": "page", "page_key": key},
            )
            self._pending_pages[key] = [self._now, total]
        if deadline_mode:
            tasks = self._prefetcher.observe_view(
                station, view.object_id, view.page, extents
            )
            if self.config.prefetch_stagger_s <= 0.0:
                # No trickle requested: issue the whole plan as one
                # scatter-gather device sweep (one seek pattern for the
                # read-ahead window instead of one per page).
                if tasks:
                    self._schedule(self._now, "prefetch_batch", tasks)
            else:
                for index, task in enumerate(tasks):
                    self._schedule(
                        self._now + (index + 1) * self.config.prefetch_stagger_s,
                        "prefetch", task,
                    )

    def _on_prefetch_batch(self, tasks: list) -> None:
        wanted = []
        for task in tasks:
            page_key = (task.station, str(task.object_id), task.page)
            pending = (
                task.station, task.generation, str(task.object_id), task.page
            )
            if page_key in self._page_store or pending in self._pending_prefetch:
                continue  # already at (or in flight to) the station
            wanted.append(task)
        if not wanted:
            return
        payloads, service = self._prefetcher.execute_batch(wanted)
        # One device occupancy for the whole sweep; every fetched range
        # becomes ready when the sweep completes.
        if service > 0.0:
            start = max(self._device_free, self._now)
            sweep_ready = start + service
            self._device_free = sweep_ready
            self._device_busy += service
        else:
            sweep_ready = self._now
        for task, data in zip(wanted, payloads):
            if data is None:
                continue  # cancelled by a jump; nothing was published
            key = task.cache_key()
            if service > 0.0:
                self._key_ready[key] = sweep_ready
                ready = sweep_ready
            else:
                ready = max(self._now, self._key_ready.get(key, self._now))
            page_key = (task.station, str(task.object_id), task.page)
            pending = (
                task.station, task.generation, str(task.object_id), task.page
            )
            self.metrics.on_prefetch(task.station, task.page, self._now)
            self._start_prefetch_span(task, pending)
            total = self._split_bulk(
                task.station, task.length, ready,
                {
                    "kind": "prefetch",
                    "generation": task.generation,
                    "page_key": page_key,
                    "pending_key": pending,
                },
            )
            self._pending_prefetch[pending] = total

    def _on_prefetch(self, task) -> None:
        page_key = (task.station, str(task.object_id), task.page)
        pending = (task.station, task.generation, str(task.object_id), task.page)
        if page_key in self._page_store or pending in self._pending_prefetch:
            return  # already at (or in flight to) the station
        data, service = self._prefetcher.execute(task)
        if data is None:
            return
        if service > 0.0:
            # execute() read the device directly; serialize that read
            # on the shared device timeline like every other fetch.
            start = max(self._device_free, self._now)
            ready = start + service
            self._device_free = ready
            self._device_busy += service
            self._key_ready[task.cache_key()] = ready
        else:
            # Served from the shared cache: no device work, but honour
            # an in-flight fetch of the same key.
            ready = max(
                self._now, self._key_ready.get(task.cache_key(), self._now)
            )
        self.metrics.on_prefetch(task.station, task.page, self._now)
        self._start_prefetch_span(task, pending)
        total = self._split_bulk(
            task.station, task.length, ready,
            {
                "kind": "prefetch",
                "generation": task.generation,
                "page_key": page_key,
                "pending_key": pending,
            },
        )
        self._pending_prefetch[pending] = total

    def _start_prefetch_span(self, task, pending) -> None:
        if self.obs is None:
            return
        self._prefetch_spans[pending] = self.obs.start(
            None, "prefetch", ObsSpanKind.DELIVERY, self._now,
            baggage={"station": task.station},
            object=str(task.object_id), page=task.page,
            generation=task.generation,
        )

    def _on_enqueue(self, chunk: ChunkRequest) -> None:
        self._sched.add(chunk)
        self._pump()

    def _on_deliver(self, payload: tuple[ChunkRequest, float]) -> None:
        chunk, _ = payload
        self._link_busy = False
        latency = self._now - chunk.issued_s
        self.metrics.on_chunk(
            chunk.station, chunk.traffic_class.value, chunk.nbytes,
            latency, self._now,
        )
        kind = chunk.meta.get("kind")
        if kind == "stream":
            self._deliver_stream_chunk(chunk)
        elif kind == "page":
            self._deliver_page_chunk(chunk)
        elif kind == "prefetch":
            self._deliver_prefetch_chunk(chunk)
        self._pump()

    # ------------------------------------------------------------------
    # delivery bookkeeping
    # ------------------------------------------------------------------

    def _deliver_stream_chunk(self, chunk: ChunkRequest) -> None:
        station = chunk.station
        session = self._sessions[station]
        was_started = session.started_s is not None
        event = session.on_delivered(chunk.meta["stream_seq"], self._now)
        if not was_started and session.started_s is not None:
            self.metrics.on_stream_start(
                station, session.startup_latency_s, self._now
            )
        if event is not None:
            self.metrics.on_underrun(
                station, event.seq, event.stall_s, self._now
            )
            if self.obs is not None:
                self.obs.emit(
                    self._stream_ctx.get(station), "underrun",
                    ObsSpanKind.DELIVERY, self._now, self._now,
                    status=ObsSpanStatus.ERROR,
                    seq=event.seq, stall_s=round(event.stall_s, 9),
                )
        self.metrics.on_buffer_level(session.buffered_s(self._now))
        if self.config.policy is DeliveryPolicy.ON_DEMAND:
            next_seq = self._next_audio_seq.get(station, len(session))
            if next_seq < len(session):
                self._next_audio_seq[station] = next_seq + 1
                self._issue_audio(station, next_seq)

    def _deliver_page_chunk(self, chunk: ChunkRequest) -> None:
        key = chunk.meta["page_key"]
        state = self._pending_pages.get(key)
        if state is None:  # pragma: no cover - defensive
            return
        state[1] -= 1
        if state[1] == 0:
            del self._pending_pages[key]
            latency = self._now - state[0]
            self._page_store[key] = "demand"
            station, _, page = key
            self.metrics.on_page_turn(station, page, latency, False, self._now)
            self._report.page_turns += 1
            self._report.page_latencies.append(latency)
            self._report.cold_page_latencies.append(latency)
            active = self._page_spans.pop(key, None)
            if active is not None:
                active.finish(self._now, latency_s=round(latency, 9))

    def _deliver_prefetch_chunk(self, chunk: ChunkRequest) -> None:
        pending = chunk.meta["pending_key"]
        remaining = self._pending_prefetch.get(pending)
        if remaining is None:  # pragma: no cover - defensive
            return
        if remaining > 1:
            self._pending_prefetch[pending] = remaining - 1
            return
        del self._pending_prefetch[pending]
        station = chunk.station
        wasted = chunk.meta["generation"] != self._prefetcher.generation(station)
        if not wasted:
            self._page_store.setdefault(chunk.meta["page_key"], "prefetch")
        else:
            self._report.wasted_prefetches += 1
        active = self._prefetch_spans.pop(pending, None)
        if active is not None:
            active.finish(
                self._now,
                status=(
                    ObsSpanStatus.CANCELLED if wasted else ObsSpanStatus.OK
                ),
                wasted=wasted,
            )

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------

    def _extents_of(self, object_id: ObjectId) -> list[tuple[str, int, int]]:
        key = str(object_id)
        if key not in self._page_extents:
            self._page_extents[key] = page_extents_for(
                self._archiver, object_id, self.config.page_bytes
            )
        return self._page_extents[key]

    def _device_read(
        self, extent: Extent, *, parent: SpanContext | None = None
    ) -> float:
        """FIFO device read; returns the simulated completion time."""
        start = max(self._device_free, self._now)
        _, service = self._archiver.read_raw(extent)
        ready = start + service
        self._device_free = ready
        self._device_busy += service
        if self.obs is not None:
            self.obs.emit(
                parent if parent is not None else current_span(),
                "device_read", ObsSpanKind.DEVICE, start, ready,
                bytes=extent.length,
            )
        return ready

    def _fetch_cached(
        self, object_id: ObjectId, tag: str, start: int, length: int
    ) -> float:
        """Read a piece range through the staging cache; returns ready time.

        A cache hit is free but may still wait for an in-flight fetch
        of the same key (single-flight piggyback); a miss pays the
        device and publishes for everyone.
        """
        key = piece_range_key(object_id, tag, start, length)
        cached = self.cache.get(key)
        if cached is not None:
            ready = max(self._now, self._key_ready.get(key, self._now))
            if self.obs is not None:
                self.obs.emit(
                    current_span(), "staging_cache", ObsSpanKind.CACHE,
                    self._now, ready, hit=True, key=key,
                )
            return ready
        base = self._archiver.data_extent(object_id, tag)
        if start < 0 or start + length > base.length:
            raise DeliveryError(
                f"range [{start}, {start + length}) exceeds piece "
                f"{tag!r} of length {base.length}"
            )
        data_start = max(self._device_free, self._now)
        data, service = self._archiver.read_raw(
            Extent(base.offset + start, length)
        )
        ready = data_start + service
        self._device_free = ready
        self._device_busy += service
        self.cache.put(key, data)
        self._key_ready[key] = ready
        if self.obs is not None:
            self.obs.emit(
                current_span(), "device_read", ObsSpanKind.DEVICE,
                data_start, ready, bytes=length,
            )
        return ready

    def _split_bulk(
        self, station: str, length: int, ready_s: float, meta: dict
    ) -> int:
        """Enqueue a bulk payload as link chunks; returns the chunk count."""
        count = max(1, math.ceil(length / self.config.chunk_bytes))
        remaining = length
        for _ in range(count):
            nbytes = min(self.config.chunk_bytes, remaining)
            remaining -= nbytes
            self._enqueue_at(
                ready_s,
                ChunkRequest(
                    seq=next(self._chunk_seq),
                    station=station,
                    nbytes=nbytes,
                    traffic_class=TrafficClass.BULK,
                    issued_s=self._now,
                    meta=dict(meta),
                ),
            )
        return count

    def _enqueue_at(self, ready_s: float, chunk: ChunkRequest) -> None:
        chunk.ready_s = ready_s
        if ready_s <= self._now:
            self._on_enqueue(chunk)
        else:
            self._schedule(ready_s, "enqueue", chunk)

    def _pump(self) -> None:
        if self._link_busy:
            return
        chunk = self._sched.pop_next(self._now)
        if chunk is None:
            return
        tx = self.link.transmit(
            chunk.station, chunk.nbytes, chunk.ready_s,
            start_not_before_s=self._now,
        )
        self._link_busy = True
        self._schedule(tx.finish_s, "deliver", (chunk, tx.finish_s))


#: Failure modes :func:`fetch_with_retry` retries: admission rejection,
#: wall-clock expiry, and injected transient device faults.  Everything
#: else propagates — refetching will not fix a missing object, a bad
#: range, or a torn write already abandoned by the commit protocol.
RETRYABLE_ERRORS = (ServerBusyError, RequestTimeoutError, TransientIOError)


def fetch_with_retry(
    frontend: ServerFrontend,
    op: str,
    *params,
    station: str = "ws-0",
    attempts: int = 3,
    timeout_s: float = 30.0,
    backoff_s: float = 0.0,
    backoff_factor: float = 2.0,
    jitter_fraction: float = 0.0,
    rng=None,
    sleep=None,
    on_retry=None,
):
    """Submit a server request, retrying the transient failure modes.

    Delivery clients keep a presentation running across the retryable
    server outcomes — admission rejection (:class:`ServerBusyError`),
    wall-clock expiry (:class:`RequestTimeoutError`), and transient
    device faults (:class:`TransientIOError`, e.g. injected by a fault
    plan at the ``device.read`` site) — and let every other archiver
    error propagate, since refetching will not fix a missing object or
    a bad range.  Returns ``(payload, service_time_s)``.

    Attempts are bounded by ``attempts``; after the last one the final
    retryable error is re-raised unchanged.  Between attempts the
    client waits ``backoff_s * backoff_factor**retry_index`` seconds —
    a monotone non-decreasing schedule (``backoff_factor >= 1``) so a
    saturated server sees pressure back off, not pile up.  The default
    ``backoff_s=0.0`` keeps the historical immediate-retry behaviour.
    ``sleep`` injects the waiting primitive (real ``time.sleep`` by
    default; tests pass a recorder), and ``on_retry(retry_index,
    delay_s, error)`` observes every scheduled retry.

    ``jitter_fraction`` decorrelates the schedule: each wait is
    stretched to ``delay * (1 + jitter_fraction * u)`` with ``u``
    drawn uniformly from ``[0, 1)`` by ``rng``.  Without jitter, every
    workstation that lost the same replica retries on the *same*
    exponential schedule and the failover target absorbs the whole
    herd at once; with it, the herd spreads over a window that widens
    with the backoff.  The default ``rng`` is seeded from the station
    name (``random.Random(stable_hash(station))``), so each station's
    jitter sequence is deterministic and repeatable while distinct
    stations decorrelate — pass an explicit ``rng`` to override.

    Every op in :attr:`ServerFrontend._OPS` is retry-safe, including a
    ``read_scattered`` batch: a rejection happens at admission, before
    the archiver plans or reads anything, and a transient read fault
    leaves no partial device state, so a retried request re-plans from
    untouched cache and disk-head state.

    Raises
    ------
    DeliveryError
        On a non-positive ``attempts``, a negative ``backoff_s``, or a
        ``backoff_factor`` below 1 (which would make the schedule
        non-monotone).
    """
    if attempts < 1:
        raise DeliveryError(f"attempts must be positive: {attempts}")
    if backoff_s < 0:
        raise DeliveryError(f"backoff must be non-negative: {backoff_s}")
    if backoff_factor < 1.0:
        raise DeliveryError(
            f"backoff factor must be at least 1: {backoff_factor}"
        )
    if not 0.0 <= jitter_fraction <= 1.0:
        raise DeliveryError(
            f"jitter fraction must be within [0, 1]: {jitter_fraction}"
        )
    if rng is None and jitter_fraction > 0:
        rng = random.Random(stable_hash(station))
    if sleep is None:
        import time as _time

        sleep = _time.sleep
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            future = frontend.submit(op, *params, station=station)
            return future.result(timeout=timeout_s)
        except RETRYABLE_ERRORS as exc:
            last = exc
            if attempt + 1 >= attempts:
                break
            delay = backoff_s * (backoff_factor ** attempt)
            if jitter_fraction > 0:
                delay *= 1.0 + jitter_fraction * rng.random()
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0:
                sleep(delay)
    raise last
