"""Chunk requests and link arbitration disciplines.

A delivery is a sequence of *chunks*: byte ranges of one stored data
piece, each small enough that the shared medium frees frequently and
arbitration can react.  Voice chunks carry playout deadlines derived
from the codec rate; page chunks are bulk.  The scheduler decides which
ready chunk transmits when the medium frees:

``FIFO``
    First ready, first sent — the naive fetch-on-demand baseline.  A
    voice chunk due in 40 ms waits behind every image page already
    queued.

``EDF``
    Earliest-deadline-first: any deadline-bearing (audio) chunk
    preempts bulk at chunk boundaries; among audio, the tightest
    deadline wins; among bulk, stations are served *fair* — the station
    with the fewest bulk bytes granted so far goes next, so one
    station's miniature sweep cannot starve everyone else's page turns.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import DeliveryError


class TrafficClass(enum.Enum):
    """What a chunk carries, hence how it may be scheduled."""

    AUDIO = "audio"  # continuous playout, deadline-bearing
    BULK = "bulk"    # pages, images, miniatures, prefetches


class LinkDiscipline(enum.Enum):
    """Arbitration rule applied when the shared medium frees."""

    FIFO = "fifo"
    EDF = "edf"


@dataclass
class ChunkRequest:
    """One byte-range transfer wanting the shared medium.

    Attributes
    ----------
    seq:
        Global issue order; the deterministic tie-breaker everywhere.
    deadline_s:
        Playout deadline for AUDIO chunks; ``math.inf`` for bulk.
    ready_s:
        When the bytes are available server-side (fetch complete);
        set by the pipeline before the chunk is offered to the link.
    meta:
        Pipeline bookkeeping (stream/page identity, prefetch
        generation); opaque to the scheduler.
    """

    seq: int
    station: str
    nbytes: int
    traffic_class: TrafficClass
    deadline_s: float = math.inf
    ready_s: float = 0.0
    issued_s: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise DeliveryError(f"chunk must carry bytes: {self.nbytes}")
        if self.traffic_class is TrafficClass.BULK and self.deadline_s != math.inf:
            raise DeliveryError("bulk chunks do not carry deadlines")


class ChunkScheduler:
    """Arbitration queue for the shared medium.

    Holds chunks whose server fetch has completed and picks the next
    one to transmit under the configured discipline.  Pure policy: no
    clock, no medium — the pipeline drives it with the current
    simulated time.
    """

    def __init__(self, discipline: LinkDiscipline = LinkDiscipline.FIFO) -> None:
        self._discipline = discipline
        self._queue: list[ChunkRequest] = []
        self._bulk_granted: dict[str, int] = {}

    @property
    def discipline(self) -> LinkDiscipline:
        """The configured arbitration rule."""
        return self._discipline

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, chunk: ChunkRequest) -> None:
        """Offer a fetched chunk to the medium."""
        self._queue.append(chunk)

    def next_ready_s(self) -> float:
        """Earliest time any queued chunk becomes ready (inf if empty)."""
        if not self._queue:
            return math.inf
        return min(chunk.ready_s for chunk in self._queue)

    def cancel_where(
        self, predicate: Callable[[ChunkRequest], bool]
    ) -> list[ChunkRequest]:
        """Remove and return every queued chunk matching ``predicate``.

        This is how a browse jump revokes queued prefetches that have
        not yet touched the medium.
        """
        cancelled = [chunk for chunk in self._queue if predicate(chunk)]
        if cancelled:
            self._queue = [c for c in self._queue if not predicate(c)]
        return cancelled

    def pop_next(self, now_s: float) -> ChunkRequest | None:
        """The chunk to transmit at ``now_s``, or None if none is ready."""
        ready = [c for c in self._queue if c.ready_s <= now_s]
        if not ready:
            return None
        if self._discipline is LinkDiscipline.FIFO:
            choice = min(ready, key=lambda c: (c.ready_s, c.seq))
        else:
            choice = self._pick_edf(ready)
        self._queue.remove(choice)
        if choice.traffic_class is TrafficClass.BULK:
            self._bulk_granted[choice.station] = (
                self._bulk_granted.get(choice.station, 0) + choice.nbytes
            )
        return choice

    def _pick_edf(self, ready: list[ChunkRequest]) -> ChunkRequest:
        audio = [c for c in ready if c.traffic_class is TrafficClass.AUDIO]
        if audio:
            return min(audio, key=lambda c: (c.deadline_s, c.seq))
        # Fair bulk: least-granted station first, then issue order.
        return min(
            ready,
            key=lambda c: (self._bulk_granted.get(c.station, 0), c.seq),
        )
