"""Read-ahead of the next visual/audio pages, with cancellation.

"While the next visual/audio pages are prefetched in the background"
— the presentation manager knows which way the user is browsing, so
the next pages in that direction are very likely to be requested.  The
:class:`Prefetcher` watches page views per station, infers the browse
direction from consecutive page numbers, and plans read-ahead of the
next ``depth`` pages through the *shared* staging cache: a prefetched
page costs the device once and every later on-demand read — this
station's or anyone else's — is a cache hit.

Cancellation.  When the user jumps (a non-adjacent page, another
object, a search hit), queued predictions are wrong.  Each station
carries a *generation*; a jump bumps it, and a prefetch task only
publishes into the cache if its generation is still current.  A
cancelled prefetch therefore never publishes a stale entry, no matter
when its device read would have completed — the invariant pinned by
``tests/test_property_cache.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeliveryError
from repro.ids import ObjectId
from repro.server.archiver import Archiver, CachingArchiver
from repro.storage.blockdev import Extent
from repro.storage.cache import LRUCache


def piece_range_key(object_id: ObjectId, tag: str, start: int, length: int) -> str:
    """The shared-cache key of a byte range within a data piece.

    Must match :meth:`CachingArchiver.read_piece_range`'s key format
    exactly: a prefetched range is useful *because* the later on-demand
    read looks up the same key.
    """
    return f"piece/{object_id}/{tag}/{start}/{length}"


@dataclass(frozen=True)
class PrefetchTask:
    """One planned read-ahead of a byte range of a page."""

    station: str
    generation: int
    object_id: ObjectId
    tag: str
    start: int
    length: int
    page: int

    def cache_key(self) -> str:
        """Shared-cache key this task publishes under."""
        return piece_range_key(self.object_id, self.tag, self.start, self.length)


@dataclass
class PrefetchStats:
    """Read-ahead effectiveness counters."""

    issued: int = 0
    executed: int = 0
    cancelled: int = 0
    already_cached: int = 0
    jumps: int = 0
    directions: dict[str, int] = field(default_factory=dict)


class Prefetcher:
    """Predicts and stages the next pages of each station's browse.

    Parameters
    ----------
    archiver:
        Where the bytes live.  A :class:`CachingArchiver` is unwrapped
        to its inner archiver — prefetch reads go to the raw device and
        publish *explicitly*, so cancellation can intervene between
        read and publish.
    cache:
        The shared staging cache read-ahead publishes into.
    depth:
        How many pages ahead of the current view to stage.
    """

    def __init__(
        self,
        archiver: Archiver | CachingArchiver,
        cache: LRUCache,
        *,
        depth: int = 2,
    ) -> None:
        if depth < 1:
            raise DeliveryError(f"prefetch depth must be positive: {depth}")
        self._archiver = (
            archiver.archiver if isinstance(archiver, CachingArchiver) else archiver
        )
        self._cache = cache
        self._depth = depth
        self._last_page: dict[tuple[str, str], int] = {}
        self._generation: dict[str, int] = {}
        self.stats = PrefetchStats()

    @property
    def depth(self) -> int:
        """Configured read-ahead depth, in pages."""
        return self._depth

    def generation(self, station: str) -> int:
        """Current prefetch generation of a station."""
        return self._generation.get(station, 0)

    def is_current(self, task: PrefetchTask) -> bool:
        """Whether ``task`` survived every jump since it was planned."""
        return task.generation == self.generation(task.station)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def observe_view(
        self,
        station: str,
        object_id: ObjectId,
        page: int,
        page_extents: list[tuple[str, int, int]],
    ) -> list[PrefetchTask]:
        """Record a page view; plan read-ahead in the browse direction.

        ``page_extents`` maps every page of the object (0-based) to its
        ``(tag, start, length)`` byte range; the returned tasks cover
        the next ``depth`` pages in the inferred direction that exist
        and are not already staged.  The first view of an object
        defaults to forward browsing (the overwhelmingly common case).
        """
        if not 0 <= page < len(page_extents):
            raise DeliveryError(
                f"page {page} out of range for {len(page_extents)}-page object"
            )
        key = (station, str(object_id))
        previous = self._last_page.get(key)
        direction = 1
        if previous is not None and page < previous:
            direction = -1
        self._last_page[key] = page
        label = "forward" if direction > 0 else "backward"
        self.stats.directions[label] = self.stats.directions.get(label, 0) + 1
        generation = self.generation(station)
        tasks: list[PrefetchTask] = []
        for step in range(1, self._depth + 1):
            target = page + step * direction
            if not 0 <= target < len(page_extents):
                break
            tag, start, length = page_extents[target]
            task = PrefetchTask(
                station=station, generation=generation, object_id=object_id,
                tag=tag, start=start, length=length, page=target,
            )
            tasks.append(task)
            self.stats.issued += 1
        return tasks

    def jump(self, station: str) -> int:
        """The user went somewhere unpredicted: revoke planned read-ahead.

        Returns the new generation; every outstanding task of an older
        generation is now cancelled and will refuse to publish.
        """
        new = self.generation(station) + 1
        self._generation[station] = new
        self.stats.jumps += 1
        return new

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, task: PrefetchTask) -> tuple[bytes | None, float]:
        """Run one read-ahead: device read, then gated cache publish.

        Returns ``(data, device_service_s)``; ``data`` is None — and
        nothing is published — when the task was cancelled by a jump,
        either before the read (no device work at all) or between the
        read and the publish (the race the generation gate closes).
        A range someone else already staged is served from the cache
        with zero device service (the read-ahead still matters: the
        caller ships the bytes on to the station).
        """
        if not self.is_current(task):
            self.stats.cancelled += 1
            return None, 0.0
        cached = self._cache.get(task.cache_key())
        if cached is not None:
            self.stats.already_cached += 1
            self.stats.executed += 1
            return cached, 0.0
        extent = self._archiver.data_extent(task.object_id, task.tag)
        if task.start < 0 or task.start + task.length > extent.length:
            raise DeliveryError(
                f"prefetch range [{task.start}, {task.start + task.length}) "
                f"exceeds piece {task.tag!r} of length {extent.length}"
            )
        data, service = self._archiver.read_raw(
            Extent(extent.offset + task.start, task.length)
        )
        # The gate: a jump may have landed while the device was busy.
        if not self.is_current(task):
            self.stats.cancelled += 1
            return None, service
        self._cache.put(task.cache_key(), data)
        self.stats.executed += 1
        return data, service

    def execute_batch(
        self, tasks: list[PrefetchTask]
    ) -> tuple[list[bytes | None], float]:
        """Run a whole read-ahead plan as one scatter-gather device sweep.

        The cancellation contract of :meth:`execute` holds per task:
        tasks stale before the sweep contribute no device work; a jump
        landing *during* the sweep is caught by a per-task re-gate
        before publish, so no stale entry ever reaches the cache (the
        bytes are simply dropped).  Already-staged ranges are served
        from the cache without touching the device.  Returns per-task
        payloads (None for cancelled tasks, position-matched to
        ``tasks``) and the total device service time of the sweep.
        """
        results: list[bytes | None] = [None] * len(tasks)
        pending: list[int] = []
        for index, task in enumerate(tasks):
            if not self.is_current(task):
                self.stats.cancelled += 1
                continue
            cached = self._cache.get(task.cache_key())
            if cached is not None:
                self.stats.already_cached += 1
                self.stats.executed += 1
                results[index] = cached
                continue
            pending.append(index)
        if not pending:
            return results, 0.0
        ranges: list[tuple[int, int]] = []
        for index in pending:
            task = tasks[index]
            extent = self._archiver.data_extent(task.object_id, task.tag)
            if task.start < 0 or task.start + task.length > extent.length:
                raise DeliveryError(
                    f"prefetch range [{task.start}, {task.start + task.length}) "
                    f"exceeds piece {task.tag!r} of length {extent.length}"
                )
            ranges.append((extent.offset + task.start, task.length))
        payloads, service = self._archiver.read_scattered_raw(ranges)
        for index, data in zip(pending, payloads):
            task = tasks[index]
            # Same per-task gate as execute(): publish only if no jump
            # landed while the sweep was on the device.
            if not self.is_current(task):
                self.stats.cancelled += 1
                continue
            self._cache.put(task.cache_key(), data)
            self.stats.executed += 1
            results[index] = data
        return results, service
