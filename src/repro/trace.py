"""Observable event trace of a presentation session.

The paper's presentation manager has no API-level output other than
what appears on the screen and what comes out of the speaker.  The
:class:`Trace` is our stand-in for that observable surface: every
display, playback, navigation and menu action is recorded as a
:class:`TraceEvent` stamped with simulated time.  Tests assert on the
trace ("the x-ray stayed on screen while the related voice played");
benchmarks derive timing series from it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator


class EventKind(enum.Enum):
    """Classification of observable workstation events."""

    DISPLAY_PAGE = "display_page"
    CLEAR_SCREEN = "clear_screen"
    PIN_MESSAGE = "pin_message"
    UNPIN_MESSAGE = "unpin_message"
    SUPERIMPOSE = "superimpose"
    OVERWRITE = "overwrite"
    PLAY_VOICE = "play_voice"
    DECODE_VOICE = "decode_voice"
    INTERRUPT_VOICE = "interrupt_voice"
    RESUME_VOICE = "resume_voice"
    SEEK_VOICE = "seek_voice"
    PLAY_MESSAGE = "play_message"
    PLAY_LABEL = "play_label"
    DISPLAY_LABEL = "display_label"
    HIGHLIGHT = "highlight"
    MENU_SHOWN = "menu_shown"
    COMMAND = "command"
    ENTER_RELEVANT = "enter_relevant"
    RETURN_RELEVANT = "return_relevant"
    SHOW_INDICATOR = "show_indicator"
    VIEW_MOVED = "view_moved"
    VIEW_RESIZED = "view_resized"
    TOUR_STOP = "tour_stop"
    SIM_PAGE = "sim_page"
    MINIATURE_SHOWN = "miniature_shown"
    SEARCH_HIT = "search_hit"
    TRANSFER = "transfer"
    SERVER_ADMIT = "server_admit"
    SERVER_COMPLETE = "server_complete"
    SERVER_REJECT = "server_reject"
    DELIVERY_START = "delivery_start"
    DELIVERY_CHUNK = "delivery_chunk"
    DELIVERY_UNDERRUN = "delivery_underrun"
    DELIVERY_PAGE = "delivery_page"
    DELIVERY_PREFETCH = "delivery_prefetch"
    DELIVERY_CANCEL = "delivery_cancel"
    FAULT_INJECTED = "fault_injected"
    FAULT_CRASH = "fault_crash"
    RECOVER_REPLAY = "recover_replay"
    RECOVER_ROLLFORWARD = "recover_rollforward"
    RECOVER_ROLLBACK = "recover_rollback"
    RECOVER_COMPLETE = "recover_complete"
    CLUSTER_READ = "cluster_read"
    CLUSTER_WRITE = "cluster_write"
    CLUSTER_FAILOVER = "cluster_failover"
    CLUSTER_HEDGE = "cluster_hedge"
    CLUSTER_MIGRATE = "cluster_migrate"
    CLUSTER_NODE_STATUS = "cluster_node_status"
    INDEX_INSERT = "index_insert"
    INDEX_FLUSH = "index_flush"
    INDEX_COMPACT = "index_compact"
    SEARCH_QUERY = "search_query"
    SEARCH_SHARD = "search_shard"
    COMPRESS_ENCODE = "compress_encode"
    COMPRESS_DECODE = "compress_decode"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable event.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred.
    kind:
        Event classification.
    detail:
        Event-specific payload (page numbers, segment ids, byte counts
        and so on).  Values are plain data so traces print cleanly.
    """

    time: float
    kind: EventKind
    detail: dict[str, Any]

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:9.3f}] {self.kind.value}: {payload}"


class Trace:
    """Append-only log of :class:`TraceEvent` records.

    ``record`` is thread-safe: frontend workers, cluster nodes and the
    workstation all append to shared traces concurrently, and readers
    (``of_kind``, ``last``, iteration) always see a coherent snapshot.
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._snapshot())

    def __getitem__(self, index: int) -> TraceEvent:
        with self._lock:
            return self._events[index]

    def _snapshot(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def record(self, time: float, kind: EventKind, **detail: Any) -> TraceEvent:
        """Append an event and return it."""
        event = TraceEvent(time=time, kind=kind, detail=detail)
        with self._lock:
            self._events.append(event)
        return event

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Return all events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self._snapshot() if e.kind in wanted]

    def last(self, kind: EventKind | None = None) -> TraceEvent | None:
        """Return the most recent event, optionally of a given kind."""
        events = self._snapshot()
        if kind is None:
            return events[-1] if events else None
        for event in reversed(events):
            if event.kind is kind:
                return event
        return None

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Return all events satisfying ``predicate``, in order."""
        return [e for e in self._snapshot() if predicate(e)]

    def since(self, time: float) -> list[TraceEvent]:
        """Return all events at or after simulated ``time``."""
        return [e for e in self._snapshot() if e.time >= time]

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()

    def dump(self) -> str:
        """Render the whole trace as one string, one event per line."""
        return "\n".join(str(e) for e in self._snapshot())
