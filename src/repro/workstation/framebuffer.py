"""A character framebuffer: the screen's text layout made observable.

The virtual screen stores page content symbolically; this module
renders it into a fixed character grid the way the SUN-3 display laid
out a MINOS page: an optional pinned region at the top (visual logical
message), the flowing page content below, and the menu options down the
right-hand side — "In the right hand side of the screen some menu
options displayed are shown" (Figures 1-2).

Tests assert on grid rows; humans can ``print(frame.render())`` to see
the page as the user did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.pagination import PageElementKind, VisualPage
from repro.workstation.menus import Menu

#: Marker row drawn between the pinned region and the flowing content.
_RULE = "-"


@dataclass
class FrameLayout:
    """Geometry of the rendered frame."""

    width: int = 100
    height: int = 42
    menu_width: int = 24
    pinned_rows: int = 14

    @property
    def content_width(self) -> int:
        """Columns available to page content (left of the menu)."""
        return self.width - self.menu_width - 1


class CharacterFrame:
    """One rendered screenful."""

    def __init__(self, layout: FrameLayout) -> None:
        self._layout = layout
        self._rows = [
            [" "] * layout.width for _ in range(layout.height)
        ]

    @property
    def layout(self) -> FrameLayout:
        """Frame geometry."""
        return self._layout

    def row(self, index: int) -> str:
        """One row of the grid as a string."""
        return "".join(self._rows[index])

    def render(self) -> str:
        """The whole frame, newline-joined."""
        return "\n".join(self.row(i) for i in range(self._layout.height))

    def put(self, row: int, column: int, text: str) -> None:
        """Write ``text`` at (row, column), clipped to the frame."""
        if not 0 <= row < self._layout.height:
            return
        for offset, char in enumerate(text):
            col = column + offset
            if 0 <= col < self._layout.width:
                self._rows[row][col] = char

    def fill_row(self, row: int, char: str) -> None:
        """Fill an entire row with one character."""
        if 0 <= row < self._layout.height:
            self._rows[row] = [char] * self._layout.width


def render_frame(
    page: VisualPage | None,
    menu: Menu,
    pinned_text: str = "",
    pinned_image: bool = False,
    layout: FrameLayout | None = None,
) -> CharacterFrame:
    """Render a visual page, its menu, and any pinned message.

    Layout: the pinned region (if present) occupies the top rows with
    its text/image marker; a rule separates it from the flowing page
    content; menu options run down the right-hand column.
    """
    layout = layout or FrameLayout()
    frame = CharacterFrame(layout)

    # Right-hand menu, one option per row (Figures 1-2 style).
    menu_col = layout.content_width + 1
    for row in range(layout.height):
        frame.put(row, layout.content_width, "|")
    for index, option in enumerate(menu):
        frame.put(index, menu_col, f"[{option.label[: layout.menu_width - 2]}]")

    content_top = 0
    if pinned_text or pinned_image:
        marker = "[IMAGE]" if pinned_image else ""
        frame.put(0, 0, (marker + " " + pinned_text)[: layout.content_width])
        for row in range(1, layout.pinned_rows - 1):
            if pinned_image:
                frame.put(row, 0, "#" * min(20, layout.content_width))
        rule_row = layout.pinned_rows - 1
        for col in range(layout.content_width):
            frame.put(rule_row, col, _RULE)
        content_top = layout.pinned_rows

    if page is not None:
        row = content_top
        for element in page.elements:
            if row >= layout.height:
                break
            if element.kind is PageElementKind.IMAGE:
                for image_row in range(element.height_lines):
                    if row >= layout.height:
                        break
                    frame.put(
                        row,
                        0,
                        f"%% image {element.image_tag} %%"[: layout.content_width],
                    )
                    row += 1
            else:
                frame.put(row, 0, element.line.text[: layout.content_width])
                row += 1
    return frame
