"""Virtual workstation: the observable surface of the presentation manager.

The 1986 MINOS implementation ran on a SUN-3 workstation with voice
input/output hardware.  This package substitutes a fully simulated
workstation: a :class:`~repro.workstation.clock.SimClock` models elapsed
time, a :class:`~repro.workstation.screen.Screen` models the display
(page regions, pinned logical messages, transparency compositing), an
:class:`~repro.workstation.audio_out.AudioOutput` models the speaker,
and every observable action is appended to a
:class:`~repro.workstation.events.Trace`.  Tests and benchmarks assert
against the trace, which plays the role of "what the user saw and
heard".
"""

from repro.clock import SimClock
from repro.trace import EventKind, Trace, TraceEvent
from repro.workstation.menus import Menu, MenuOption
from repro.workstation.screen import Screen, ScreenRegion
from repro.workstation.audio_out import AudioOutput
from repro.workstation.station import Workstation
from repro.workstation.stats import SessionStats, summarize
from repro.workstation.editing_store import EditingStore

__all__ = [
    "AudioOutput",
    "EditingStore",
    "SessionStats",
    "summarize",
    "EventKind",
    "Menu",
    "MenuOption",
    "Screen",
    "ScreenRegion",
    "SimClock",
    "Trace",
    "TraceEvent",
    "Workstation",
]
