"""Compatibility re-export; the trace lives at :mod:`repro.trace`.

The trace is foundational (the audio substrate records onto it too),
so its implementation sits outside the workstation package to keep the
import graph acyclic.
"""

from repro.trace import EventKind, Trace, TraceEvent

__all__ = ["EventKind", "Trace", "TraceEvent"]
