"""Workstation-side storage for editing-state objects.

Section 5: "The workstations may have some disk devices associated with
them.  Some of the disks may be shared among workstations.  Multimedia
objects in an editing state are stored in those disks.  Retrieval is
done by name.  The user edits only a number of these objects at any
point in time and he can easily recall their names."

The store serializes through the same formatter machinery the archiver
uses (no duplicated software), onto a rewritable magnetic disk — saving
the same name again simply rewrites.
"""

from __future__ import annotations

from repro.errors import FormationError, ObjectNotFoundError
from repro.formatter.archive import pack_archived, unpack_archived
from repro.formatter.builder import ObjectFormatter, rebuild_object
from repro.objects.model import MultimediaObject, ObjectState
from repro.storage.blockdev import Extent
from repro.storage.magnetic import MagneticDisk


class EditingStore:
    """Named storage of editing-state objects on a workstation disk."""

    def __init__(self, disk: MagneticDisk | None = None) -> None:
        self._disk = disk or MagneticDisk()
        self._extents: dict[str, Extent] = {}
        self._formatter = ObjectFormatter()

    def __contains__(self, name: str) -> bool:
        return name in self._extents

    def names(self) -> list[str]:
        """All stored object names, sorted (easy to recall)."""
        return sorted(self._extents)

    def save(self, name: str, obj: MultimediaObject) -> float:
        """Store an editing-state object under ``name``.

        Returns the simulated disk service time.  Saving an existing
        name replaces the previous copy (magnetic disks rewrite).

        Raises
        ------
        FormationError
            If the object is already archived — archived objects belong
            to the server, not the workstation disk.
        """
        if obj.state is ObjectState.ARCHIVED:
            raise FormationError(
                f"object {obj.object_id} is archived; it lives in the "
                "archiver, not the workstation editing store"
            )
        formed = self._formatter.form(obj)
        packed = pack_archived(formed.descriptor, formed.composition)
        extent, service = self._disk.append(packed.data)
        self._extents[name] = extent
        return service

    def load(self, name: str) -> tuple[MultimediaObject, float]:
        """Retrieve an editing-state object by name.

        Returns the object (in the EDITING state, ready for further
        editing) and the simulated service time.

        Raises
        ------
        ObjectNotFoundError
            If the name is unknown.
        """
        extent = self._extents.get(name)
        if extent is None:
            raise ObjectNotFoundError(f"no editing object named {name!r}")
        data, service = self._disk.read(extent)
        descriptor, composition = unpack_archived(data)
        obj = rebuild_object(descriptor, composition)
        obj.state = ObjectState.EDITING  # back on the workbench
        return obj, service

    def discard(self, name: str) -> None:
        """Forget a stored object (space is reclaimed lazily)."""
        if name not in self._extents:
            raise ObjectNotFoundError(f"no editing object named {name!r}")
        del self._extents[name]
