"""Menus.

"The presentation and browsing functions which are available for each
multimedia object depend on the object itself and they are presented in
the form of menu options."  A menu is therefore *data*: the set of
commands the current object and session state afford.  The browsing
session rejects any command not on the menu, which is exactly the
behaviour of a menu-driven UI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class MenuOption:
    """One selectable operation."""

    command: str
    label: str


class Menu:
    """An ordered set of menu options keyed by command name."""

    def __init__(self, options: list[MenuOption]) -> None:
        self._options = list(options)
        self._by_command = {option.command: option for option in self._options}

    def __len__(self) -> int:
        return len(self._options)

    def __iter__(self) -> Iterator[MenuOption]:
        return iter(self._options)

    def __contains__(self, command: str) -> bool:
        return command in self._by_command

    @property
    def commands(self) -> list[str]:
        """Command names in display order."""
        return [option.command for option in self._options]

    def option(self, command: str) -> MenuOption | None:
        """Look up an option by command name."""
        return self._by_command.get(command)
