"""Compatibility re-export; the clock lives at :mod:`repro.clock`.

The clock is foundational (the audio substrate uses it too), so its
implementation sits outside the workstation package to keep the import
graph acyclic.
"""

from repro.clock import SimClock

__all__ = ["SimClock"]
