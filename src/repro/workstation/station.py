"""The workstation bundle: clock + trace + screen + speaker."""

from __future__ import annotations

from repro.workstation.audio_out import AudioOutput
from repro.clock import SimClock
from repro.trace import Trace
from repro.workstation.screen import Screen


class Workstation:
    """One user's workstation.

    Creating a workstation wires a fresh clock, trace, screen and audio
    output together.  The presentation manager presents objects *onto*
    a workstation; multiple workstations can share one object server.
    """

    def __init__(
        self,
        text_lines: int = 40,
        pixel_width: int = 1024,
        pixel_height: int = 800,
        *,
        name: str = "ws-0",
    ) -> None:
        #: Station identity; rides as span baggage so multi-station
        #: traces stay attributable (docs/OBSERVABILITY.md).
        self.name = name
        self.clock = SimClock()
        self.trace = Trace()
        self.screen = Screen(
            self.clock,
            self.trace,
            text_lines=text_lines,
            pixel_width=pixel_width,
            pixel_height=pixel_height,
        )
        self.audio = AudioOutput(self.clock, self.trace)
