"""The virtual screen.

The screen shows one visual page at a time.  It models the structures
the paper's primitives need:

* a **pinned top region** for visual logical messages ("they are always
  displayed in the same page of the presentation form (top part)")
  while the lower region pages through related content;
* a **compositing surface** for transparencies and overwrites, so a
  stack of superimposed transparencies over a base bitmap is an actual
  raster whose pixels tests can check;
* **relevant-object indicators** displayed alongside the page;
* the current **menu** of available operations.

Every state change is recorded on the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.images.bitmap import Bitmap
from repro.images.canvas import Canvas
from repro.clock import SimClock
from repro.trace import EventKind, Trace


@dataclass
class ScreenRegion:
    """A named region of the display with text or image content."""

    name: str
    text: str = ""
    bitmap: Bitmap | None = None


class Screen:
    """Display state of the workstation.

    Parameters
    ----------
    clock, trace:
        Shared simulated clock and event trace.
    text_lines:
        Height of the text display in lines (the paginator's page
        height should match).
    pixel_width, pixel_height:
        Size of the image compositing surface.
    """

    def __init__(
        self,
        clock: SimClock,
        trace: Trace,
        text_lines: int = 40,
        pixel_width: int = 1024,
        pixel_height: int = 800,
    ) -> None:
        self._clock = clock
        self._trace = trace
        self.text_lines = text_lines
        self.pixel_width = pixel_width
        self.pixel_height = pixel_height
        self._page_number: int | None = None
        self._page_text: str = ""
        self._pinned: ScreenRegion | None = None
        self._canvas: Canvas | None = None
        self._transparency_depth = 0
        self._indicators: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # introspection (what tests assert on)
    # ------------------------------------------------------------------

    @property
    def page_number(self) -> int | None:
        """Number of the currently displayed page, if any."""
        return self._page_number

    @property
    def page_text(self) -> str:
        """Rendered text of the lower (flowing) region."""
        return self._page_text

    @property
    def pinned(self) -> ScreenRegion | None:
        """The pinned top region, when a visual message is displayed."""
        return self._pinned

    @property
    def composite(self) -> Bitmap | None:
        """Snapshot of the image compositing surface."""
        return self._canvas.snapshot() if self._canvas is not None else None

    @property
    def transparency_depth(self) -> int:
        """How many transparencies are currently superimposed."""
        return self._transparency_depth

    @property
    def indicators(self) -> list[dict[str, Any]]:
        """Relevant-object indicators currently on display."""
        return list(self._indicators)

    # ------------------------------------------------------------------
    # page display
    # ------------------------------------------------------------------

    def show_page(self, number: int, text: str, **detail: Any) -> None:
        """Display a visual page's text in the flowing region."""
        self._page_number = number
        self._page_text = text
        self._trace.record(
            self._clock.now, EventKind.DISPLAY_PAGE, page=number, **detail
        )

    def show_image_page(self, number: int, bitmap: Bitmap, **detail: Any) -> None:
        """Display a page devoted to an image; resets the compositing
        surface to that image."""
        self._page_number = number
        self._canvas = Canvas.from_bitmap(bitmap)
        self._transparency_depth = 0
        self._trace.record(
            self._clock.now,
            EventKind.DISPLAY_PAGE,
            page=number,
            image=True,
            **detail,
        )

    def clear(self) -> None:
        """Clear all display state."""
        self._page_number = None
        self._page_text = ""
        self._pinned = None
        self._canvas = None
        self._transparency_depth = 0
        self._indicators.clear()
        self._trace.record(self._clock.now, EventKind.CLEAR_SCREEN)

    # ------------------------------------------------------------------
    # pinned visual messages
    # ------------------------------------------------------------------

    def pin(self, name: str, text: str = "", bitmap: Bitmap | None = None) -> None:
        """Pin a visual logical message to the top region."""
        self._pinned = ScreenRegion(name=name, text=text, bitmap=bitmap)
        self._trace.record(self._clock.now, EventKind.PIN_MESSAGE, message=name)

    def unpin(self) -> None:
        """Remove the pinned region, if any."""
        if self._pinned is not None:
            name = self._pinned.name
            self._pinned = None
            self._trace.record(self._clock.now, EventKind.UNPIN_MESSAGE, message=name)

    # ------------------------------------------------------------------
    # compositing
    # ------------------------------------------------------------------

    def ensure_canvas(self, width: int, height: int) -> None:
        """Make sure a compositing surface of at least this size exists."""
        if (
            self._canvas is None
            or self._canvas.width < width
            or self._canvas.height < height
        ):
            self._canvas = Canvas(width, height)
            self._transparency_depth = 0

    def superimpose(self, overlay: Bitmap, name: str) -> None:
        """Superimpose a transparency on the compositing surface."""
        self.ensure_canvas(overlay.width, overlay.height)
        assert self._canvas is not None
        self._canvas.superimpose(overlay)
        self._transparency_depth += 1
        self._trace.record(self._clock.now, EventKind.SUPERIMPOSE, transparency=name)

    def overwrite(self, overlay: Bitmap, name: str) -> None:
        """Apply an overwrite page to the compositing surface."""
        self.ensure_canvas(overlay.width, overlay.height)
        assert self._canvas is not None
        self._canvas.overwrite(overlay)
        self._trace.record(self._clock.now, EventKind.OVERWRITE, page=name)

    def reset_composite(self, base: Bitmap | None) -> None:
        """Reset the compositing surface to a base bitmap (or blank)."""
        if base is not None:
            self._canvas = Canvas.from_bitmap(base)
        else:
            self._canvas = None
        self._transparency_depth = 0

    # ------------------------------------------------------------------
    # indicators
    # ------------------------------------------------------------------

    def show_indicators(self, indicators: list[dict[str, Any]]) -> None:
        """Display the set of relevant-object indicators."""
        self._indicators = list(indicators)
        for indicator in self._indicators:
            self._trace.record(self._clock.now, EventKind.SHOW_INDICATOR, **indicator)
