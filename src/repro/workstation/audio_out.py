"""The virtual speaker: voice output bound to clock and trace."""

from __future__ import annotations

from repro.audio.player import AudioPlayer
from repro.audio.signal import Recording
from repro.clock import SimClock
from repro.trace import EventKind, Trace


class AudioOutput:
    """Creates players and plays short recordings to completion.

    The main object voice part is driven interactively through an
    :class:`~repro.audio.player.AudioPlayer` the browsing session owns;
    this class additionally serves the fire-and-forget playback needed
    by logical messages, voice labels and tour stops.
    """

    def __init__(self, clock: SimClock, trace: Trace) -> None:
        self._clock = clock
        self._trace = trace

    def player(self, recording: Recording, label: str) -> AudioPlayer:
        """Create an interactive player for a recording."""
        return AudioPlayer(recording, self._clock, self._trace, label=label)

    def play_to_end(self, recording: Recording, label: str) -> float:
        """Play a whole recording, advancing the clock by its duration.

        Returns the recording duration.
        """
        player = AudioPlayer(recording, self._clock, self._trace, label=label)
        player.play_through()
        return recording.duration

    def play_message(self, recording: Recording, message_id: str) -> float:
        """Play a voice logical message (traced distinctly)."""
        self._trace.record(
            self._clock.now,
            EventKind.PLAY_MESSAGE,
            message=message_id,
            duration_s=round(recording.duration, 3),
        )
        self._clock.advance(recording.duration)
        return recording.duration

    def play_label(self, recording: Recording, label_text: str) -> float:
        """Play a voice label (traced distinctly)."""
        self._trace.record(
            self._clock.now,
            EventKind.PLAY_LABEL,
            label=label_text,
            duration_s=round(recording.duration, 3),
        )
        self._clock.advance(recording.duration)
        return recording.duration
