"""Session statistics derived from the trace.

The paper's motivation is "to increase the man-machine communication
bandwidth".  This module turns a workstation trace into the numbers
that make such comparisons possible: how much was shown and heard, how
much time the presentation occupied, how many bytes moved from the
server.  Benchmarks use it to compare presentation styles (e.g. a
transparency walkthrough vs sequential text).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace import EventKind, Trace


@dataclass
class SessionStats:
    """Aggregate measures of one browsing session."""

    pages_displayed: int = 0
    distinct_pages: int = 0
    voice_plays: int = 0
    voice_seconds: float = 0.0
    messages_played: int = 0
    labels_played: int = 0
    transparencies: int = 0
    overwrites: int = 0
    sim_pages: int = 0
    search_hits: int = 0
    commands: int = 0
    bytes_transferred: int = 0
    elapsed_s: float = 0.0

    @property
    def media_events(self) -> int:
        """All distinct show/play actions the user experienced."""
        return (
            self.pages_displayed
            + self.voice_plays
            + self.messages_played
            + self.labels_played
            + self.transparencies
            + self.overwrites
        )

    @property
    def bandwidth_events_per_minute(self) -> float:
        """Media events per simulated minute — the paper's
        "communication bandwidth" proxy."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.media_events / (self.elapsed_s / 60.0)


def summarize(trace: Trace) -> SessionStats:
    """Compute session statistics from a trace."""
    stats = SessionStats()
    pages: set[int] = set()
    last_time = 0.0
    for event in trace:
        last_time = max(last_time, event.time)
        kind = event.kind
        if kind is EventKind.DISPLAY_PAGE:
            stats.pages_displayed += 1
            pages.add(event.detail.get("page", -1))
        elif kind is EventKind.PLAY_VOICE or kind is EventKind.RESUME_VOICE:
            stats.voice_plays += 1
        elif kind is EventKind.PLAY_MESSAGE:
            stats.messages_played += 1
            stats.voice_seconds += float(event.detail.get("duration_s", 0.0))
        elif kind is EventKind.PLAY_LABEL:
            stats.labels_played += 1
            stats.voice_seconds += float(event.detail.get("duration_s", 0.0))
        elif kind is EventKind.SUPERIMPOSE:
            stats.transparencies += 1
        elif kind is EventKind.OVERWRITE:
            stats.overwrites += 1
        elif kind is EventKind.SIM_PAGE:
            stats.sim_pages += 1
        elif kind is EventKind.SEARCH_HIT:
            stats.search_hits += 1
        elif kind is EventKind.COMMAND:
            stats.commands += 1
        elif kind is EventKind.TRANSFER:
            stats.bytes_transferred += int(event.detail.get("bytes", 0))
    # Interrupt events carry the position actually heard; approximate
    # listened time from interrupts and explicit durations.
    for event in trace.of_kind(EventKind.INTERRUPT_VOICE):
        stats.voice_seconds = max(
            stats.voice_seconds, float(event.detail.get("at_s", 0.0))
        )
    stats.distinct_pages = len(pages)
    stats.elapsed_s = last_time
    return stats
