"""Registry of named fault-injection sites.

A *fault site* is a named point in the storage/server stack where a
:class:`~repro.faults.plan.FaultPlan` may inject a transient
:class:`~repro.errors.TransientIOError`, a torn (partial) write, or a
hard :class:`~repro.errors.SimulatedCrash`.  Sites are registered here
centrally so that

* :meth:`FaultPlan.arm` can reject typos at plan-construction time, and
* CI can enforce that every registered site has a covering test
  (``tools/check_coverage.py``).

The production code paths fire sites by string name and pay nothing
when no plan is attached.
"""

from __future__ import annotations

from repro.errors import FaultConfigError

#: site name -> human description.  Ordered; the crash-point sweep
#: iterates this mapping.
FAULT_SITES: dict[str, str] = {}

#: Sites that are device *writes*: the only places a torn write is
#: meaningful (a prefix of the payload reaches the medium).
WRITE_SITES: set[str] = set()


def register_site(name: str, description: str, *, write: bool = False) -> str:
    """Register a fault site (idempotent); returns the name."""
    FAULT_SITES[name] = description
    if write:
        WRITE_SITES.add(name)
    return name


def require_site(name: str) -> str:
    """Validate that ``name`` is a registered site.

    Raises
    ------
    FaultConfigError
        If the site was never registered.
    """
    if name not in FAULT_SITES:
        known = ", ".join(sorted(FAULT_SITES))
        raise FaultConfigError(f"unknown fault site {name!r} (known: {known})")
    return name


def registered_sites() -> list[str]:
    """All registered site names, in registration order."""
    return list(FAULT_SITES)


# ----------------------------------------------------------------------
# The canonical site registry.  Each name corresponds to exactly one
# ``fire()`` call threaded through the production code.
# ----------------------------------------------------------------------

#: Any read from a device behind a :class:`~repro.faults.FaultyDevice`.
DEVICE_READ = register_site(
    "device.read", "any block-device read behind a FaultyDevice"
)
#: Any write/append to a device behind a :class:`FaultyDevice`.
DEVICE_WRITE = register_site(
    "device.write",
    "any block-device write or append behind a FaultyDevice",
    write=True,
)
STORE_JOURNAL = register_site(
    "archiver.store.journal", "before the store intent record is journaled"
)
STORE_DATA = register_site(
    "archiver.store.data", "before the packed object is appended to the platter"
)
STORE_DESCRIPTOR = register_site(
    "archiver.store.descriptor",
    "before the descriptor/record tables and indexes are published",
)
STORE_SEAL = register_site(
    "archiver.store.seal", "before the store journal record is sealed"
)
RECOGNIZE_JOURNAL = register_site(
    "archiver.recognize.journal",
    "before the recognition side table is journaled",
)
RECOGNIZE_APPLY = register_site(
    "archiver.recognize.apply",
    "before the side table, version bump and index updates are applied",
)
RECOGNIZE_SEAL = register_site(
    "archiver.recognize.seal",
    "before the recognition journal record is sealed",
)
LSM_FLUSH = register_site(
    "lsm.flush.segment",
    "between writing an LSM segment run and registering it in the manifest",
)
LSM_COMPACT_SWAP = register_site(
    "lsm.compact.swap",
    "before a compacted LSM shard swaps in its merged segment",
)
CACHE_PUT = register_site(
    "cache.put", "before an entry is inserted into the staging cache"
)
IDLE_COMPACT = register_site(
    "idle.compact", "before the idle sweep's end-of-run index compaction"
)
CLUSTER_NODE_CRASH = register_site(
    "cluster.node_crash",
    "at a cluster node's serve entry; an armed CRASH kills that node "
    "(router fails reads over to the next replica)",
)
CLUSTER_REPLICA_WRITE = register_site(
    "cluster.replica_write",
    "before one replica accepts its copy of a fanned-out store "
    "(the write-quorum decides whether the store succeeds)",
)
CLUSTER_MIGRATE = register_site(
    "cluster.migrate",
    "before a rebalance migration stores an object copy on its target "
    "node (a failed move is retried on the next idle pass)",
)
COMPRESS_DECODE = register_site(
    "compress.decode",
    "before the archiver decodes a compressed piece frame on the open "
    "path (genuine corruption raises a hard MediaCodecError instead)",
)
