"""A fault-injecting proxy around a simulated block device.

:class:`FaultyDevice` exposes the :class:`~repro.storage.blockdev.
SimulatedDisk` surface and delegates to a wrapped device, consulting a
:class:`~repro.faults.plan.FaultPlan` at the ``device.read`` and
``device.write`` sites:

* transient faults fail the operation cleanly (no state change);
* crash faults kill the process before the operation starts;
* torn writes put a *prefix* of the payload on the medium — the extent
  is allocated at full length and the tail is filled with a garbage
  pattern — then raise, modelling power loss mid-transfer.  The commit
  protocol detects the damage by checksum at recovery time.

The proxy is transparent for timing: service times, head movement and
statistics all come from the wrapped device.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.faults.registry import DEVICE_READ, DEVICE_WRITE
from repro.storage.blockdev import DiskGeometry, DiskStats, Extent, SimulatedDisk

#: Byte used to fill the unwritten tail of a torn write.  Chosen to be
#: unlikely in real payloads so torn data never checksums clean.
TORN_FILL = b"\xde"


class FaultyDevice:
    """Wraps a :class:`SimulatedDisk`, injecting faults from a plan."""

    def __init__(self, inner: SimulatedDisk, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan

    # ------------------------------------------------------------------
    # transparent surface
    # ------------------------------------------------------------------

    @property
    def inner(self) -> SimulatedDisk:
        """The wrapped device (recovery re-opens from its bytes)."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        """The fault schedule consulted on every read and write."""
        return self._plan

    @property
    def name(self) -> str:
        """Device name, for traces."""
        return self._inner.name

    @property
    def geometry(self) -> DiskGeometry:
        """Timing/capacity parameters of the wrapped device."""
        return self._inner.geometry

    @property
    def stats(self) -> DiskStats:
        """Accumulated statistics of the wrapped device."""
        return self._inner.stats

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated on the wrapped device."""
        return self._inner.used_bytes

    @property
    def head_position(self) -> int:
        """Current head byte offset of the wrapped device."""
        return self._inner.head_position

    def service_time(self, extent: Extent) -> float:
        """Service time a read of ``extent`` would take now (no I/O)."""
        return self._inner.service_time(extent)

    def allocate(self, length: int) -> Extent:
        """Reserve bytes on the wrapped device (never faulted: pure
        book-keeping, no media transfer)."""
        return self._inner.allocate(length)

    # ------------------------------------------------------------------
    # faulted I/O
    # ------------------------------------------------------------------

    def read(self, extent: Extent) -> tuple[bytes, float]:
        """Read through the ``device.read`` fault site."""
        self._plan.fire(DEVICE_READ)
        return self._inner.read(extent)

    def append(self, data: bytes) -> tuple[Extent, float]:
        """Allocate-and-write through the ``device.write`` fault site."""
        spec = self._plan.torn_spec(DEVICE_WRITE)
        if spec is None or not data:
            return self._inner.append(data)
        cut = self._cut(spec.tear_fraction, len(data))
        extent = self._inner.allocate(len(data))
        self._inner.write(extent, self._torn(data, cut))
        self._plan.raise_torn(spec, DEVICE_WRITE, cut)
        raise AssertionError("unreachable")  # pragma: no cover

    def write(self, extent: Extent, data: bytes) -> float:
        """Write through the ``device.write`` fault site."""
        spec = self._plan.torn_spec(DEVICE_WRITE)
        if spec is None or not data:
            return self._inner.write(extent, data)
        cut = self._cut(spec.tear_fraction, len(data))
        self._inner.write(extent, self._torn(data, cut))
        self._plan.raise_torn(spec, DEVICE_WRITE, cut)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _cut(fraction: float, length: int) -> int:
        """Bytes that reach the medium: always at least one short."""
        return max(0, min(int(length * fraction), length - 1))

    @staticmethod
    def _torn(data: bytes, cut: int) -> bytes:
        return data[:cut] + TORN_FILL * (len(data) - cut)
