"""Deterministic fault schedules.

A :class:`FaultPlan` is a seeded schedule of faults to inject at named
sites (see :mod:`repro.faults.registry`).  Production code calls
:meth:`FaultPlan.fire` at each site; the plan counts arrivals and, when
an armed :class:`FaultSpec` matches the current arrival, raises the
corresponding typed error:

* ``TRANSIENT`` — :class:`~repro.errors.TransientIOError`; the
  operation did not happen and may be retried.
* ``TORN_WRITE`` — only meaningful at device-write sites, where the
  :class:`~repro.faults.device.FaultyDevice` writes a prefix of the
  payload before raising :class:`~repro.errors.TornWriteError` (or
  :class:`~repro.errors.SimulatedCrash` when ``then_crash`` is set).
* ``CRASH`` — :class:`~repro.errors.SimulatedCrash`; the process is
  considered dead.  Tests then re-open the archive from device bytes
  alone and call ``recover()``.

Every injected fault is recorded in :attr:`FaultPlan.events` and
mirrored into an optional trace/metrics sink as ``FAULT_*`` events, so
a recovered archive can report exactly which fault it survived.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field

from repro.errors import (
    FaultConfigError,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
)
from repro.faults.registry import (
    FAULT_SITES,
    WRITE_SITES,
    require_site,
)


class FaultKind(enum.Enum):
    """What kind of failure to inject at a site."""

    TRANSIENT = "transient"
    TORN_WRITE = "torn_write"
    CRASH = "crash"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire ``kind`` at the ``hit``-th arrival at ``site``.

    Attributes
    ----------
    site:
        Registered fault-site name.
    kind:
        Failure mode to inject.
    hit:
        1-based arrival index at the site that triggers the fault.
    count:
        For ``TRANSIENT``: how many consecutive arrivals (starting at
        ``hit``) fail before the site heals — the shape retry loops
        must survive.
    tear_fraction:
        For ``TORN_WRITE``: fraction of the payload that reaches the
        medium (always at least one byte short of complete).
    then_crash:
        For ``TORN_WRITE``: raise :class:`SimulatedCrash` instead of
        :class:`TornWriteError` after the partial write — a crash in
        the middle of a device write.
    """

    site: str
    kind: FaultKind
    hit: int = 1
    count: int = 1
    tear_fraction: float = 0.5
    then_crash: bool = False

    def __post_init__(self) -> None:
        require_site(self.site)
        if self.hit < 1:
            raise FaultConfigError(f"hit index must be >= 1: {self.hit}")
        if self.count < 1:
            raise FaultConfigError(f"fault count must be >= 1: {self.count}")
        if not 0.0 <= self.tear_fraction < 1.0:
            raise FaultConfigError(
                f"tear fraction must be in [0, 1): {self.tear_fraction}"
            )
        if self.kind is FaultKind.TORN_WRITE and self.site not in WRITE_SITES:
            raise FaultConfigError(
                f"torn writes only make sense at write sites, not {self.site!r}"
            )
        if self.then_crash and self.kind is not FaultKind.TORN_WRITE:
            raise FaultConfigError("then_crash is only valid for torn writes")

    def matches(self, arrival: int) -> bool:
        """Whether this spec fires at the given 1-based arrival index."""
        return self.hit <= arrival < self.hit + self.count


@dataclass(frozen=True)
class FaultEvent:
    """One fault the plan actually injected."""

    seq: int
    site: str
    kind: FaultKind
    arrival: int


class FaultPlan:
    """A deterministic, thread-safe schedule of fault injections.

    Parameters
    ----------
    specs:
        Faults to arm up front (more can be armed via :meth:`arm`).
    metrics:
        Optional :class:`repro.server.metrics.ServerMetrics`; injected
        faults are counted and mirrored as ``FAULT_*`` trace events.
    """

    def __init__(self, specs=(), *, metrics=None) -> None:
        self._specs: list[FaultSpec] = list(specs)
        self._arrivals: dict[str, int] = {}
        self._metrics = metrics
        self._lock = threading.Lock()
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def arm(
        self,
        site: str,
        kind: FaultKind | str,
        *,
        hit: int = 1,
        count: int = 1,
        tear_fraction: float = 0.5,
        then_crash: bool = False,
    ) -> "FaultPlan":
        """Arm one fault; returns self for chaining.

        Raises
        ------
        FaultConfigError
            On an unknown site or invalid spec.
        """
        if isinstance(kind, str):
            kind = FaultKind(kind)
        self._specs.append(
            FaultSpec(
                site=site,
                kind=kind,
                hit=hit,
                count=count,
                tear_fraction=tear_fraction,
                then_crash=then_crash,
            )
        )
        return self

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        n_faults: int = 1,
        sites: list[str] | None = None,
        kinds: list[FaultKind] | None = None,
        max_hit: int = 3,
        metrics=None,
    ) -> "FaultPlan":
        """A seeded random plan drawn from the site registry.

        The same seed always yields the same schedule, so a failing
        sweep case is reproducible from its seed alone.
        """
        rng = random.Random(seed)
        pool = list(sites) if sites is not None else list(FAULT_SITES)
        plan = cls(metrics=metrics)
        for _ in range(n_faults):
            site = rng.choice(pool)
            allowed = kinds or [FaultKind.TRANSIENT, FaultKind.CRASH] + (
                [FaultKind.TORN_WRITE] if site in WRITE_SITES else []
            )
            candidates = [
                k
                for k in allowed
                if k is not FaultKind.TORN_WRITE or site in WRITE_SITES
            ]
            plan.arm(
                site,
                rng.choice(candidates),
                hit=rng.randint(1, max_hit),
                tear_fraction=rng.uniform(0.0, 0.95),
            )
        return plan

    @property
    def specs(self) -> list[FaultSpec]:
        """The armed faults (a copy)."""
        return list(self._specs)

    def disarm(self, site: str | None = None) -> int:
        """Remove armed specs (all of them, or just one site's).

        Arrival counters and the event log are kept — only *future*
        injections are cancelled.  Returns the number of specs removed.
        The simulation harness uses this at quiescent points: chaos
        stops, outstanding faults are disarmed, and the invariant
        checker then observes the system without new injections firing
        mid-check.
        """
        with self._lock:
            if site is None:
                removed = len(self._specs)
                self._specs = []
            else:
                kept = [spec for spec in self._specs if spec.site != site]
                removed = len(self._specs) - len(kept)
                self._specs = kept
        return removed

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------

    def _arrive(self, site: str) -> tuple[FaultSpec | None, int]:
        """Count one arrival at ``site``; return the matching spec, if any."""
        require_site(site)
        with self._lock:
            arrival = self._arrivals.get(site, 0) + 1
            self._arrivals[site] = arrival
            for spec in self._specs:
                if spec.site == site and spec.matches(arrival):
                    return spec, arrival
        return None, arrival

    def _record(self, spec: FaultSpec, arrival: int) -> None:
        with self._lock:
            event = FaultEvent(
                seq=len(self.events),
                site=spec.site,
                kind=spec.kind,
                arrival=arrival,
            )
            self.events.append(event)
        if self._metrics is not None:
            self._metrics.on_fault(spec.site, spec.kind.value)

    def fire(self, site: str) -> None:
        """Count an arrival at ``site``, raising if a fault is due.

        Raises
        ------
        TransientIOError
            For an armed ``TRANSIENT`` fault.
        SimulatedCrash
            For an armed ``CRASH`` fault.
        FaultConfigError
            If a ``TORN_WRITE`` is armed here — torn writes need the
            payload-aware :meth:`torn_spec` path of the FaultyDevice.
        """
        spec, arrival = self._arrive(site)
        if spec is None:
            return
        if spec.kind is FaultKind.TORN_WRITE:
            raise FaultConfigError(
                f"torn write at {site!r} must be injected through a "
                "FaultyDevice, not fire()"
            )
        self._record(spec, arrival)
        if spec.kind is FaultKind.TRANSIENT:
            raise TransientIOError(
                f"injected transient fault at {site!r} (arrival {arrival})"
            )
        raise SimulatedCrash(f"injected crash at {site!r} (arrival {arrival})")

    def torn_spec(self, site: str) -> FaultSpec | None:
        """Device-write arrival: return a due ``TORN_WRITE`` spec, if any.

        Used by :class:`~repro.faults.device.FaultyDevice`, which must
        write the partial payload itself before raising.  Non-torn
        faults due at the site are raised here exactly as by
        :meth:`fire`.

        Raises
        ------
        TransientIOError, SimulatedCrash
            When a non-torn fault is due at this arrival.
        """
        spec, arrival = self._arrive(site)
        if spec is None:
            return None
        self._record(spec, arrival)
        if spec.kind is FaultKind.TRANSIENT:
            raise TransientIOError(
                f"injected transient fault at {site!r} (arrival {arrival})"
            )
        if spec.kind is FaultKind.CRASH:
            raise SimulatedCrash(
                f"injected crash at {site!r} (arrival {arrival})"
            )
        return spec

    def raise_torn(self, spec: FaultSpec, site: str, written: int) -> None:
        """Raise the error terminating a torn write of ``written`` bytes."""
        if spec.then_crash:
            raise SimulatedCrash(
                f"injected crash mid-write at {site!r} "
                f"({written} bytes reached the device)"
            )
        raise TornWriteError(
            f"injected torn write at {site!r} "
            f"({written} bytes reached the device)"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def arrivals(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        with self._lock:
            return self._arrivals.get(site, 0)

    def fired(self, site: str | None = None) -> int:
        """Number of faults injected (optionally at one site)."""
        with self._lock:
            if site is None:
                return len(self.events)
            return sum(1 for event in self.events if event.site == site)


def fire(plan: FaultPlan | None, site: str) -> None:
    """Fire ``site`` on ``plan`` if a plan is attached (module helper).

    The common pattern ``fire(self._fault_plan, SITE)`` keeps the
    production code one line per site and free when no plan is wired.
    """
    if plan is not None:
        plan.fire(site)
