"""Deterministic fault injection for the storage and server stack.

The paper's server must stay consistent across partial failure: a
crash mid-archive must never leave a half-written descriptor, a stale
cache entry, or an index that disagrees with the scan oracle.  This
package provides the machinery that *proves* it:

* :class:`FaultPlan` — a seeded schedule of faults at named sites;
* :class:`FaultyDevice` — a block-device proxy injecting transient
  ``IOError``\\ s, torn writes, and hard crash points;
* the site registry (:data:`FAULT_SITES`) that CI holds tests to.

See ``docs/FAULTS.md`` for the commit protocol and recovery
invariants the injection verifies.
"""

from repro.errors import (
    FaultConfigError,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
)
from repro.faults.device import TORN_FILL, FaultyDevice
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultSpec, fire
from repro.faults.registry import (
    FAULT_SITES,
    WRITE_SITES,
    register_site,
    registered_sites,
    require_site,
)

__all__ = [
    "FAULT_SITES",
    "WRITE_SITES",
    "FaultConfigError",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyDevice",
    "SimulatedCrash",
    "TORN_FILL",
    "TornWriteError",
    "TransientIOError",
    "fire",
    "register_site",
    "registered_sites",
    "require_site",
]
