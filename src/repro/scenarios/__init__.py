"""Reusable scenario builders for the paper's figures and claims.

Each builder constructs the multimedia objects of one figure (or one
Section-5 performance claim) exactly as the paper describes them, so
examples, tests and benchmarks all exercise the same workloads:

* :mod:`repro.scenarios.office`   — Figures 1-2 (visual pages mixing
  text, graphics, bitmaps).
* :mod:`repro.scenarios.medical`  — Figures 3-6 (x-ray as pinned visual
  message; transparencies over the x-ray; the audio-mode twin).
* :mod:`repro.scenarios.city`     — Figures 7-10 (subway map with
  relevant transparency objects; city-walk process simulation; tour).
* :mod:`repro.scenarios.speech`   — C-PAUSE / C-SYMM speech material.
* :mod:`repro.scenarios.bigmap`   — C-VIEW large labelled image with a
  representation.
* :mod:`repro.scenarios.library`  — C-MINI / C-QUEUE object corpus.
"""

from repro.scenarios.office import build_office_document
from repro.scenarios.medical import (
    build_audio_mode_report,
    build_visual_report_with_xray,
    build_xray_transparency_object,
)
from repro.scenarios.city import (
    build_city_walk_simulation,
    build_map_tour_object,
    build_subway_map_with_relevants,
)
from repro.scenarios.speech import LECTURE_SCRIPT, build_lecture_recording
from repro.scenarios.bigmap import build_big_map_object
from repro.scenarios.engineering import build_engineering_design
from repro.scenarios.library import build_object_library

__all__ = [
    "LECTURE_SCRIPT",
    "build_audio_mode_report",
    "build_big_map_object",
    "build_city_walk_simulation",
    "build_engineering_design",
    "build_lecture_recording",
    "build_map_tour_object",
    "build_object_library",
    "build_office_document",
    "build_subway_map_with_relevants",
    "build_visual_report_with_xray",
    "build_xray_transparency_object",
]
