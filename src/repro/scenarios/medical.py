"""Figures 3-6: the medical information system scenarios.

* Figures 3-4 — "A visual logical message (image) on a visual mode
  object.  By pressing a mouse button various parts of the text
  associated with the image are displayed in the same page with the
  image.  The image is only stored once."
* Figures 5-6 — "Transparencies may be superimposed on the top of a
  bitmap as the user presses the next page button.  Each transparency
  contains some graphics information (circle) to identify a section on
  the x-ray, and some text information related to it."
* The symmetric audio-mode twin: the doctor dictates; the x-ray is a
  visual logical message displayed during the related speech.
"""

from __future__ import annotations

from repro.audio.recognition import VocabularyRecognizer
from repro.audio.signal import SpeakerProfile, synthesize_speech
from repro.ids import IdGenerator
from repro.images.bitmap import Bitmap
from repro.images.geometry import Circle, Point
from repro.images.graphics import GraphicsObject, Label, LabelKind
from repro.images.image import Image
from repro.objects.anchors import TextAnchor, VoiceAnchor
from repro.objects.attributes import AttributeSet
from repro.objects.messages import VisualMessage, VisualMessageContent
from repro.objects.model import DrivingMode, MultimediaObject
from repro.objects.parts import TextSegment, VoiceSegment
from repro.objects.presentation import (
    ImagePage,
    PresentationSpec,
    TextFlow,
    TransparencyMode,
    TransparencySet,
)
from repro.scenarios._textgen import paragraphs

#: The doctor's dictated observations (three paragraphs; the middle
#: paragraph block is "related to the x-ray").
DICTATION = """The patient arrived complaining of persistent pain in the wrist.

Observe the radiograph closely. There is a hairline fracture visible in
the distal radius. The fracture line extends toward the joint surface
but does not displace the articular fragments. Surrounding soft tissue
shows mild swelling consistent with the reported trauma. Comparison
with the earlier radiograph shows no significant healing yet.

Recommend immobilization for six weeks and a follow up radiograph."""


def make_xray(generator: IdGenerator, width: int = 512, height: int = 400) -> Image:
    """A procedural x-ray bitmap: a bright bone band with a dark crack."""

    def intensity(x, y):
        bone = 170 * ((y > height * 0.35) & (y < height * 0.65))
        crack = ((abs(x - width * 0.55 - (y - height / 2) * 0.3) < 2)
                 & (y > height * 0.40) & (y < height * 0.60))
        return 30 + bone - 140 * crack

    return Image(
        image_id=generator.image_id(),
        width=width,
        height=height,
        bitmap=Bitmap.from_function(width, height, intensity),
    )


def build_visual_report_with_xray(
    generator: IdGenerator | None = None,
    related_paragraphs: int = 9,
) -> MultimediaObject:
    """Figures 3-4: visual mode report with the x-ray pinned over the
    related text, which needs several pages of the lower region."""
    generator = generator or IdGenerator("medfig34")
    xray = make_xray(generator)

    intro = paragraphs(2, sentences_each=3, seed=34)
    related = paragraphs(related_paragraphs, sentences_each=4, seed=35)
    outro = paragraphs(2, sentences_each=3, seed=36)

    pieces: list[str] = ["@title{Radiology Report}", "@chapter{History}"]
    for text in intro:
        pieces.extend([text, ""])
    pieces.append("@chapter{Findings}")
    related_start_marker = "\n".join(pieces)
    for text in related:
        pieces.extend([text, ""])
    related_end_marker = "\n".join(pieces)
    pieces.append("@chapter{Recommendation}")
    for text in outro:
        pieces.extend([text, ""])
    markup = "\n".join(pieces)

    obj = MultimediaObject(
        object_id=generator.object_id(),
        driving_mode=DrivingMode.VISUAL,
        attributes=AttributeSet.of(kind="radiology_report", patient="p-1042"),
    )
    segment = TextSegment(segment_id=generator.segment_id(), markup=markup)
    obj.add_text_segment(segment)
    obj.add_image(xray)

    # Anchor the x-ray message to the plain-text span of the related
    # ("Findings") paragraphs.
    plain = segment.plain_text
    first_related = related[0].split()[0]
    last_related_word = related[-1].split()[-1].rstrip(".")
    start = plain.index(related[0][:40])
    end = plain.index(related[-1][-40:]) + 40
    __ = (related_start_marker, related_end_marker, first_related, last_related_word)

    message = VisualMessage(
        message_id=generator.message_id(),
        content=VisualMessageContent(text="[x-ray]", image_ids=[xray.image_id]),
        anchors=[TextAnchor(segment.segment_id, start, end)],
    )
    obj.attach_visual_message(message)
    obj.presentation = PresentationSpec(items=[TextFlow(segment.segment_id)])
    return obj.archive()


def build_xray_transparency_object(
    generator: IdGenerator | None = None,
    overlays: int = 3,
    mode: TransparencyMode = TransparencyMode.STACKED,
) -> MultimediaObject:
    """Figures 5-6: an x-ray page followed by a transparency set.

    Each transparency carries a circle pinpointing a region of the
    x-ray plus a text label with the related observation.
    """
    generator = generator or IdGenerator("medfig56")
    xray = make_xray(generator)

    obj = MultimediaObject(
        object_id=generator.object_id(),
        driving_mode=DrivingMode.VISUAL,
        attributes=AttributeSet.of(kind="radiology_report", patient="p-2205"),
    )
    obj.add_image(xray)

    members = []
    for index in range(overlays):
        cx = 120 + index * 120
        cy = 160 + (index % 2) * 60
        overlay = Image(
            image_id=generator.image_id(),
            width=xray.width,
            height=xray.height,
            graphics=[
                GraphicsObject(
                    name=f"finding-{index}",
                    shape=Circle(Point(cx, cy), 28),
                    intensity=255,
                    label=Label(
                        LabelKind.TEXT,
                        f"Observation {index + 1}: density change",
                        Point(cx, cy - 40),
                    ),
                )
            ],
        )
        obj.add_image(overlay)
        members.append(overlay.image_id)

    obj.presentation = PresentationSpec(
        items=[ImagePage(xray.image_id), TransparencySet(members, mode=mode)]
    )
    return obj.archive()


def build_audio_mode_report(
    generator: IdGenerator | None = None,
    vocabulary: tuple[str, ...] = ("fracture", "radius", "joint", "swelling"),
    seed: int = 7,
) -> MultimediaObject:
    """The audio-mode twin of Figures 3-4.

    The doctor dictates :data:`DICTATION`; the x-ray attaches as a
    visual logical message to the span of speech describing it, so it
    appears on screen only during that part of the dictation — and
    whenever the user branches into it.
    """
    generator = generator or IdGenerator("medaudio")
    xray = make_xray(generator)

    profile = SpeakerProfile(name="doctor", word_gap=0.11, paragraph_gap=1.2)
    recording = synthesize_speech(DICTATION, profile=profile, seed=seed)
    recognizer = VocabularyRecognizer(list(vocabulary), seed=seed)
    utterances = recognizer.recognize(recording)

    obj = MultimediaObject(
        object_id=generator.object_id(),
        driving_mode=DrivingMode.AUDIO,
        attributes=AttributeSet.of(kind="dictated_report", patient="p-1042"),
    )
    segment = VoiceSegment(
        segment_id=generator.segment_id(),
        recording=recording,
        utterances=utterances,
    )
    obj.add_voice_segment(segment)
    obj.add_image(xray)

    # The related span of speech is the middle paragraph.
    para_ends = recording.paragraph_ends
    related_start = para_ends[0] + 0.01
    related_end = para_ends[1]
    message = VisualMessage(
        message_id=generator.message_id(),
        content=VisualMessageContent(text="[x-ray]", image_ids=[xray.image_id]),
        anchors=[VoiceAnchor(segment.segment_id, related_start, related_end)],
    )
    obj.attach_visual_message(message)
    obj.presentation = PresentationSpec(
        audio_order=[segment.segment_id], audio_page_seconds=8.0
    )
    return obj.archive()
